//! # deepmapping
//!
//! A Rust implementation of **DeepMapping: Learned Data Mapping for Lossless
//! Compression and Efficient Lookup** (Zhou, Candan, Zou — ICDE 2024).
//!
//! DeepMapping stores a relational table as a *hybrid learned structure*: a compact
//! multi-task neural network that memorizes the key → value mapping, an auxiliary
//! table holding the (compressed) tuples the model gets wrong, an existence bit vector
//! that prevents hallucinated answers for non-existing keys, and a decode map back to
//! the original categorical values.  The result is lossless compression *and* fast
//! random lookups at the same time, with insert/delete/update absorbed by the
//! auxiliary structures instead of retraining.
//!
//! ## The store API
//!
//! Every backend in the workspace — DeepMapping and all baselines — is swept through
//! two traits from [`dm_storage`]:
//!
//! * [`TupleStore`](dm_storage::TupleStore) — the **read** interface.  All methods
//!   take `&self` and implementors are `Send + Sync`, so one store (e.g. an
//!   `Arc<DeepMapping>`) serves lookups from many threads concurrently.  The primary
//!   entry point is `lookup_batch_into(&self, keys, &mut LookupBuffer)`: results land
//!   in a caller-owned, reusable flat arena ([`dm_storage::LookupBuffer`], viewed
//!   through [`dm_storage::TupleRef`]), so steady-state batches make **zero per-key
//!   heap allocations**.  `lookup_batch` materializes the owned
//!   `Vec<Option<Vec<u32>>>` shape when convenience beats allocation discipline, and
//!   `scan_range` serves range workloads on every key-ordered backend.
//! * [`MutableStore`](dm_storage::MutableStore) — the **write** interface
//!   (`insert`/`delete`/`update` plus the off-peak `maintenance` hook DeepMapping
//!   retrains under).  Writes keep `&mut self`: exclusive access is the point at
//!   which the read structures may be rebuilt.
//!
//! This crate is a facade over the workspace:
//!
//! * [`dm_core`] (re-exported as [`core`]) — the hybrid structure, the
//!   [`DeepMappingBuilder`](dm_core::DeepMappingBuilder) fluent constructor, the
//!   batched [`QueryPipeline`](dm_core::pipeline) every lookup routes through
//!   (Algorithm 1 as a staged dataflow), modification workflows and the MHAS
//!   architecture search,
//! * [`dm_nn`] — the from-scratch neural-network substrate,
//! * [`dm_compress`] — the compression codecs (Z-Standard / LZMA / gzip / dictionary
//!   stand-ins),
//! * [`dm_storage`] — the store traits and lookup buffer, partitions, simulated
//!   disk, LRU buffer pool, existence bit vector, latency metrics,
//! * [`dm_data`] — TPC-H-like / TPC-DS-like / synthetic / crop dataset generators and
//!   workloads (with [`LookupWorkload::drive`](dm_data::LookupWorkload::drive) running
//!   a workload against any `TupleStore`),
//! * [`dm_baselines`] — the array-based, hash-based and DeepSqueeze-like baselines the
//!   paper compares against,
//! * [`dm_obs`] (re-exported as [`obs`]) — the std-only observability substrate:
//!   lock-free counters and log2-bucketed histograms (plus windowed "last-60s"
//!   variants), per-batch stage traces with slow-op capture, partition-heat
//!   tracking, drift signals with a typed maintenance advisor
//!   ([`HealthReport`](dm_obs::HealthReport)), and Prometheus/JSON exposition
//!   (`DM_OBS=off` disables the tracing paths; see `examples/obs_quickstart.rs`
//!   and `examples/health_quickstart.rs`).
//!
//! ## Workspace map
//!
//! ```text
//! Cargo.toml                 workspace root + this facade package
//! ├── crates/obs             dm-obs       std-only observability substrate: sharded
//! │                                       atomic counters/gauges, log2-bucketed
//! │                                       mergeable histograms + windowed
//! │                                       last-60s slices, per-batch stage
//! │                                       traces + slow-op capture ring,
//! │                                       partition-heat map, drift signals +
//! │                                       maintenance advisor (HealthReport),
//! │                                       Prometheus/JSON exposition, DM_OBS
//! │                                       kill switch (depends on nothing below)
//! ├── crates/exec            dm-exec      vendored work-stealing runtime: fixed
//! │                                       ThreadPool (per-worker deques + injector
//! │                                       + parking), scope/join/parallel_chunks,
//! │                                       panic propagation, ExecStats
//! ├── crates/nn              dm-nn        matrices, dense layers, multi-task model,
//! │                                       forward_batch / forward_batch_flat
//! │                                       (vectorized, row-chunked on the pool);
//! │                                       kernel: packed-panel micro-kernels —
//! │                                       16-lane AVX-512 / AVX2+FMA f32 forms,
//! │                                       an int8 widening (vpmaddwd) quantized
//! │                                       path, and bit-identical scalar
//! │                                       fallbacks (DM_NN_KERNEL=scalar)
//! ├── crates/compress        dm-compress  lz / lz+huffman / deflate-like / dictionary,
//! │                                       varint, rle, bitpack, framed format
//! ├── crates/storage         dm-storage   Row, TupleStore/MutableStore + LookupBuffer,
//! │                                       BitVec (Vexist), partition layouts,
//! │                                       simulated disk, sharded single-flight
//! │                                       LRU BufferPool with bounded retry +
//! │                                       backoff on transient cold-load
//! │                                       failures, Figure-7 Metrics
//! ├── crates/faults          dm-faults    deterministic fault injection: seeded
//! │                                       FaultPlan (transient read errors,
//! │                                       latency spikes, bit-flips, torn WAL
//! │                                       appends, failed fsyncs; DM_FAULTS env
//! │                                       or programmatic), FaultyPartitionSource
//! │                                       wrapper, crash-site observer for
//! │                                       kill-point torture tests
//! ├── crates/core            dm-core      DeepMapping hybrid + DeepMappingBuilder,
//! │                                       QueryPipeline (parallel stage 3), AuxTable,
//! │                                       schema/encoders, MHAS
//! ├── crates/persist         dm-persist   single-file snapshots (lazy partition
//! │                                       serving via FilePartitionSource), delta
//! │                                       WAL, PersistentStore wrapper
//! ├── crates/server          dm-server    batched in-process QueryServer: request
//! │                                       coalescing under a deadline, bounded
//! │                                       queue + load-shedding watermarks,
//! │                                       per-tenant lazy snapshot open,
//! │                                       ServerStats + per-tenant tail
//! │                                       attribution (queue delay, coalesce
//! │                                       wait, batch shares) via dm-obs,
//! │                                       windowed recent tails + SLO-aware
//! │                                       tenant_health() advisor view
//! ├── crates/data            dm-data      TPC-H / TPC-DS / synthetic / crop
//! │                                       generators, lookup & modification workloads
//! ├── crates/baselines       dm-baselines array/hash partitioned stores, DeepSqueeze
//! ├── crates/bench           dm-bench     harness + fig*/table* bench binaries,
//! │                                       BENCH_lookup.json throughput report
//! │                                       (p50/p95/p99, per-op vs aggregate MT
//! │                                       fields, inference-kernel ns/row,
//! │                                       health overhead + drift episode),
//! │                                       warn-only regression gate vs the
//! │                                       committed baseline
//! └── crates/shims           offline stand-ins for rand / parking_lot / criterion
//!                            (no registry access in the build environment; each
//!                            implements only the API subset the workspace uses)
//! ```
//!
//! Lookups flow facade → `TupleStore::lookup_batch_into` →
//! `dm_core::pipeline::QueryPipeline::execute_into` (existence split → one vectorized
//! flat forward pass → partition-grouped auxiliary probes through the shared buffer
//! pool, each partition loaded at most once per batch → order-preserving merge into
//! the caller's `LookupBuffer` arena), with every stage charged to a
//! `dm_storage::Metrics` phase.  Because the pipeline only reads, batches from
//! different threads interleave freely over one store instance.
//!
//! ## The parallel read path
//!
//! The read path runs on [`dm-exec`](dm_exec), the workspace's vendored
//! work-stealing runtime:
//!
//! * **Stage 2** splits large inference batches into row chunks executed as pool
//!   tasks (`MultiTaskModel::forward_batch_flat`, serial below
//!   `dm_nn::PARALLEL_ROW_CROSSOVER` rows), each chunk running the packed-panel
//!   SIMD kernels of [`dm_nn::kernel`].
//! * **Stages 2 and 3 overlap**: the probe plan is computed before inference
//!   starts, and on a parallel pool the plan's cold partitions load+decompress
//!   as pool tasks *while* the model infers — observable via
//!   `LatencyBreakdown::prefetch_{tasks,hits,overlap_nanos}`.
//! * **Stage 3** probes independent auxiliary partition groups as parallel pool
//!   tasks; the order-preserving merge is unchanged.
//! * **`dm_storage::BufferPool`** is mutex-sharded with *single-flight* cold
//!   loads: racing readers (pipeline tasks or external threads) trigger exactly
//!   one load + decompress per partition, the losers wait on a per-entry latch
//!   (observable via `LatencyBreakdown::pool_single_flight_waits`).
//!
//! **Sizing:** the shared process-wide pool is sized once from the
//! `DM_EXEC_THREADS` environment variable (default: available parallelism;
//! `1` = fully serial for debugging).  Per-store override:
//! `DeepMappingBuilder::exec_threads(n)` pins that store to a dedicated
//! n-thread pool.  Runtime activity per batch (tasks, steals, park time) lands
//! in `LatencyBreakdown::exec_*` alongside the buffer-pool counters.
//!
//! ## Persistence: the snapshot file + delta WAL
//!
//! [`dm_persist`] turns the hybrid structure into a deployable on-disk format.
//! `dm.write_snapshot(path)` (or [`dm_persist::Snapshot::write`]) emits one
//! versioned file; `DeepMapping::open(path)` (via
//! [`SnapshotExt`](dm_persist::SnapshotExt)) restores it without retraining.
//!
//! ```text
//! offset 0   header (28 B): magic "DMSS" | version u16 | reserved u16
//!                           | file_len u64 | manifest_len u64 | manifest_crc u32
//! then       manifest   — CRC-32-protected: config, schema (key encoder +
//!                         cardinalities), decode labels, counters, aux delta
//!                         overlay + tombstones, section table (model/existence
//!                         lengths + CRCs), partition directory (key range,
//!                         rows, frame length, frame CRC per partition)
//! then       model      — dm_nn::serialize bytes          (eager, CRC-checked)
//! then       existence  — BitVec RLE bytes                (eager, CRC-checked)
//! then       partitions — dm_compress frames, verbatim    (LAZY, CRC on touch)
//! ```
//!
//! Opening reads only header + manifest + model + existence; the partition
//! frames — typically most of the file — stay on disk and are served on demand
//! by a `dm_storage::FilePartitionSource` behind the sharded single-flight
//! buffer pool (one `pread` + one decompression per cold partition, parallel
//! under `dm-exec`).  Versioning is strict: an unknown header version or any
//! failed CRC is a typed [`dm_persist::PersistError`], never a guess.  The
//! compatibility policy is bump-on-any-layout-change; the manifest decoder
//! rejects trailing bytes so mixed-version files cannot half-parse.  Within
//! that rule, older versions stay openable only when their contents are still
//! servable bit-for-bit: v1 files are rejected (the v2 kernels changed the f32
//! arithmetic recipe the v1 aux table was memorized against), while v2 files —
//! always f32 — still open and serve unchanged under v3, which merely added
//! the per-store quantization descriptor
//! ([`DeepMappingBuilder::quantization`](dm_core::DeepMappingBuilder::quantization))
//! and int8 model layers.  New snapshots are always written as v3.
//!
//! Mutations persist through [`dm_persist::PersistentStore`]: each
//! insert/delete/update batch is applied and then appended + fsynced to
//! `<snapshot>.wal` (CRC per record, torn tails tolerated and truncated)
//! before the call returns — apply-first, so a batch the store rejects never
//! enters the log.  Reopening replays the log into the auxiliary delta
//! overlay, and `maintenance()` retrains, rewrites the snapshot atomically
//! (temp file + rename + directory fsync) and resets the WAL.
//!
//! ## Failure taxonomy: what fails, how it surfaces, what degrades
//!
//! The serving stack classifies every storage failure into one of four shapes
//! and answers each with a different, *typed* response — never a silently
//! wrong tuple (the hybrid contract: a key whose auxiliary partition cannot be
//! read gets an error, not a bare model prediction that might be a
//! misprediction):
//!
//! * **Transient read faults** (`StorageError::Io` with
//!   [`is_transient`](dm_storage::StorageError::is_transient) true — EINTR,
//!   EAGAIN, timeouts): absorbed inside [`dm_storage::BufferPool`] by a
//!   bounded retry loop with exponential backoff + deterministic jitter.
//!   Callers see nothing but latency; `LatencyBreakdown::load_retries` and the
//!   `dm_pool_load_retries_total` counter see everything.
//! * **Persistent read faults** (corruption, CRC mismatches, exhausted
//!   retries): degrade *per key, not per batch*.  The query pipeline marks
//!   only the spans owned by the unreadable partition as failed in the
//!   [`LookupBuffer`](dm_storage::LookupBuffer); every other key in the batch
//!   is answered byte-identically to a fault-free run.  `dm-server`'s
//!   coalescing demux then fails only the *requests* whose keys touch a
//!   failed span ([`ServerError::PartialFailure`](dm_server::ServerError)).
//! * **Write-side faults** (failed WAL append/fsync, torn record):
//!   [`dm_persist::PersistentStore`] poisons itself — memory is ahead of
//!   disk, so reads and writes are refused until a `checkpoint()`
//!   re-synchronizes them.  Loudly unavailable beats silently lossy.
//! * **Sustained tenant failure**: `dm-server`'s per-tenant circuit breaker
//!   opens after N consecutive batch failures
//!   ([`ServerError::TenantUnavailable`](dm_server::ServerError) with a
//!   `retry_after`), admits a half-open probe after a cooldown, and closes on
//!   the first success.  Queued requests that outwait the configured deadline
//!   fail with [`ServerError::Timeout`](dm_server::ServerError) instead of
//!   being served an answer their caller gave up on.
//!
//! All of it is rehearsable offline: [`dm_faults`] injects seeded,
//! reproducible fault plans (`DM_FAULTS` env or programmatic) at the partition
//! source and WAL layers, its crash-site observer drives kill-point torture
//! tests over the checkpoint window (`tests/crash_matrix.rs`), and the fault
//! counters feed the maintenance advisor
//! ([`dm_obs::FaultSignals`] → `Advice::InvestigateStorage`).  See
//! `examples/chaos_quickstart.rs` for the full degraded-serving episode.
//!
//! ## Quickstart
//!
//! ```
//! use deepmapping::prelude::*;
//!
//! // A small, strongly key-correlated table (order_id -> status, priority).
//! let rows: Vec<Row> = (0..2_000u64)
//!     .map(|k| Row::new(k, vec![((k / 32) % 3) as u32, ((k / 8) % 5) as u32]))
//!     .collect();
//!
//! // Fluent construction (DM-Z preset: LZ-compressed auxiliary table).
//! let mut dm = DeepMappingBuilder::dm_z()
//!     .training(TrainingConfig::quick())
//!     .partition_bytes(16 * 1024)
//!     .build(&rows)
//!     .expect("build");
//!
//! // Exact lookups — including rejection of keys that do not exist.
//! assert_eq!(dm.get(40).unwrap(), Some(vec![1, 0]));
//! assert_eq!(dm.get(1_000_000).unwrap(), None);
//!
//! // The allocation-aware batch path: results land in a reusable arena.
//! let mut buffer = LookupBuffer::new();
//! dm.lookup_batch_into(&[40, 41, 1_000_000], &mut buffer).unwrap();
//! assert_eq!(buffer.hit_count(), 2);
//! assert_eq!(buffer.get(0), Some(&[1u32, 0][..]));
//! assert!(buffer.get(2).is_none());
//!
//! // Range scans through the shared trait (served by the existence index).
//! assert_eq!(dm.scan_range(10, 13).unwrap().len(), 4);
//!
//! // Modifications without retraining (Algorithms 3-5), via MutableStore.
//! dm.insert(&[Row::new(2_000, vec![2, 4])]).unwrap();
//! dm.delete(&[0]).unwrap();
//! assert_eq!(dm.get(2_000).unwrap(), Some(vec![2, 4]));
//! assert_eq!(dm.get(0).unwrap(), None);
//!
//! // Storage breakdown (Figure 6 of the paper).  On real table sizes the hybrid
//! // structure compresses well below 1.0; this toy example just demonstrates the API
//! // (the model is intentionally under-trained to keep the doctest fast).
//! let breakdown = dm.storage_breakdown();
//! assert_eq!(breakdown.tuple_count, 2_000);
//! assert!(breakdown.total_bytes() > 0);
//! ```

pub use dm_baselines as baselines;
pub use dm_compress as compress;
pub use dm_core as core;
pub use dm_data as data;
pub use dm_exec as exec;
pub use dm_faults as faults;
pub use dm_nn as nn;
pub use dm_obs as obs;
pub use dm_persist as persist;
pub use dm_server as server;
pub use dm_storage as storage;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use dm_baselines::{DeepSqueezeConfig, DeepSqueezeStore, PartitionedStore, PartitionedStoreConfig};
    pub use dm_compress::Codec;
    pub use dm_core::{
        DeepMapping, DeepMappingBuilder, DeepMappingConfig, MhasConfig, MhasSearch,
        Quantization, SearchStrategy, StorageBreakdown, TrainingConfig,
    };
    pub use dm_data::{
        Column, Correlation, CropConfig, Dataset, LookupWorkload, ModificationWorkload,
        SyntheticConfig, TpcdsGenerator, TpchGenerator,
    };
    pub use dm_data::tpcds::TpcdsConfig;
    pub use dm_data::tpch::TpchConfig;
    pub use dm_persist::{
        PersistError, PersistentStore, Snapshot, SnapshotExt, WalOp,
    };
    pub use dm_server::{
        QueryServer, RequestReport, ServerClient, ServerConfig, ServerError, ServerStats,
        TenantId, Ticket,
    };
    pub use dm_storage::{
        BitVec, DiskProfile, LatencyBreakdown, LookupBuffer, Metrics, MutableStore, Phase,
        ReferenceStore, Row, StoreStats, TupleRef, TupleStore,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_types() {
        let _ = DeepMappingConfig::dm_z();
        let _ = DeepMappingBuilder::dm_z();
        let _ = PartitionedStoreConfig::array(Codec::Lz);
        let _ = TpchConfig::tiny();
        let _ = Row::new(1, vec![2]);
        let _ = LookupBuffer::new();
        let _ = ReferenceStore::new();
        let _ = ServerConfig::default();
    }

    #[test]
    fn prelude_serves_lookups_through_the_query_server() {
        let store = ReferenceStore::from_rows(&[Row::new(1, vec![10])]);
        let server = QueryServer::new(ServerConfig::inline());
        let tenant = server
            .register_store("t", std::sync::Arc::new(store))
            .unwrap();
        let mut client = server.client();
        assert_eq!(client.get(tenant, 1).unwrap(), Some(vec![10]));
        assert!(server.stats().requests_completed == 1);
    }
}
