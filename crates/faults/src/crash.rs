//! Crash-point instrumentation for the persistence write paths.
//!
//! A *crash site* is a named point between two filesystem effects — before a
//! WAL record is written, after a snapshot rename, and so on.  `dm-persist`
//! calls [`site`] at every such point; in production the call is one
//! thread-local read and nothing else.  A torture test installs an observer
//! with [`with_observer`] and receives a callback *at the moment the files on
//! disk are in exactly the state a crash at that point would leave* — the
//! canonical observer copies the store directory aside, and the test then
//! reopens every captured state and asserts the recovery invariants
//! (store opens, contents are a prefix of the applied operations, never a
//! hybrid of old and new).
//!
//! The observer is **thread-local** on purpose: the persistence write paths
//! (`append`, `sync`, `checkpoint`, `maintenance`) all run on the calling
//! thread, and thread-locality means two torture tests in the same process
//! cannot see each other's sites — no global mutable state, no test
//! serialization.
//!
//! This instrument captures *ordering* crashes (everything before the site
//! durable, nothing after).  Mid-write torn records are a different fault —
//! inject those with [`WalFaultPlan::torn_nth`](crate::plan::WalFaultPlan).

use std::cell::RefCell;

type Observer = Box<dyn FnMut(&str)>;

thread_local! {
    static OBSERVER: RefCell<Option<Observer>> = const { RefCell::new(None) };
}

/// Announces a crash site to the observer installed on this thread, if any.
/// Costs one thread-local read when no observer is installed.
pub fn site(name: &str) {
    OBSERVER.with(|slot| {
        // A site reached *from inside* an observer callback (the observer
        // itself doing I/O through instrumented code) is ignored: borrow_mut
        // would panic, and reentrant capture is never what a test means.
        if let Ok(mut slot) = slot.try_borrow_mut() {
            if let Some(observer) = slot.as_mut() {
                observer(name);
            }
        }
    });
}

/// Runs `body` with `observer` installed as this thread's crash-site
/// observer, restoring the previous observer afterwards (panic-safe).
/// Returns `body`'s result.
pub fn with_observer<R>(observer: impl FnMut(&str) + 'static, body: impl FnOnce() -> R) -> R {
    struct Restore(Option<Observer>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OBSERVER.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let previous = OBSERVER.with(|slot| slot.borrow_mut().replace(Box::new(observer)));
    let _restore = Restore(previous);
    body()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn sites_are_invisible_without_an_observer() {
        site("wal.append.before_write"); // must be a no-op, not a panic
    }

    #[test]
    fn observer_sees_sites_in_order_and_is_removed_after() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let result = with_observer(
            move |name| sink.borrow_mut().push(name.to_string()),
            || {
                site("a");
                site("b");
                42
            },
        );
        assert_eq!(result, 42);
        assert_eq!(*seen.borrow(), vec!["a", "b"]);
        site("c");
        assert_eq!(seen.borrow().len(), 2, "observer must be uninstalled");
    }

    #[test]
    fn observers_nest_and_restore() {
        let outer = Rc::new(RefCell::new(0u32));
        let inner = Rc::new(RefCell::new(0u32));
        let o = Rc::clone(&outer);
        with_observer(
            move |_| *o.borrow_mut() += 1,
            || {
                site("x");
                let i = Rc::clone(&inner);
                with_observer(move |_| *i.borrow_mut() += 1, || site("y"));
                site("z");
            },
        );
        assert_eq!(*outer.borrow(), 2, "outer sees x and z");
        assert_eq!(*inner.borrow(), 1, "inner sees only y");
    }

    #[test]
    fn observer_is_restored_on_panic() {
        let seen = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&seen);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_observer(
                move |_| *sink.borrow_mut() += 1,
                || {
                    site("pre");
                    panic!("boom");
                },
            )
        }));
        assert!(result.is_err());
        site("post-panic");
        assert_eq!(*seen.borrow(), 1, "panicked observer must be uninstalled");
    }

    #[test]
    fn reentrant_sites_inside_an_observer_are_ignored() {
        let seen = Rc::new(RefCell::new(0u32));
        let sink = Rc::clone(&seen);
        with_observer(
            move |_| {
                *sink.borrow_mut() += 1;
                site("reentrant"); // must not deadlock, panic or recurse
            },
            || site("outer"),
        );
        assert_eq!(*seen.borrow(), 1);
    }
}
