//! # dm-faults — deterministic fault injection for the DeepMapping stack
//!
//! The hybrid store's contract — *never serve a wrong tuple* — is easy to
//! uphold on a healthy disk.  This crate exists to prove it holds on an
//! unhealthy one: it injects the failures real storage produces (transient
//! read errors, latency spikes, bit rot, torn writes, failed fsyncs,
//! crashes between syscalls) **deterministically**, so every chaos run is a
//! reproducible test case rather than a flaky coin toss.
//!
//! ## Operating guide
//!
//! ### Activation
//!
//! * **Environment** — set `DM_FAULTS` to a plan string (grammar below) and
//!   every store opened or built in the process wraps its partition sources
//!   in a [`FaultyPartitionSource`] and hands its WAL a write-side injector.
//!   The variable is read once per process; each activated component gets an
//!   *independent* injector instance, so per-store fault schedules do not
//!   depend on how many stores the process opens.
//! * **Programmatic** — build a [`FaultPlan`] (builder methods or
//!   [`FaultPlan::parse`]), wrap it in [`Faults::new`], and hand it to the
//!   component under test ([`FaultyPartitionSource::new`], the persist
//!   layer's `with_faults`, etc.).  [`Faults::set_enabled`] is the runtime
//!   kill switch — "repair the disk" mid-test without rebuilding the store.
//! * **Off** — with no plan installed nothing is wrapped and the only cost
//!   anywhere is an `Option` check at build time; the lookup hot path is
//!   untouched (the acceptance gate for this is the regression guard's
//!   noise band).
//!
//! ### Plan grammar (`DM_FAULTS`)
//!
//! `;`-separated directives, e.g.
//! `DM_FAULTS="seed=7;read.transient=0.05;read.latency_ms=2:0.01"`:
//!
//! | directive | effect |
//! |---|---|
//! | `seed=N` | seed every probabilistic decision |
//! | `read.transient=P` | cold read fails (retryable `Io`) with probability `P` |
//! | `read.transient_nth=N` | the `N`-th read of each partition fails once |
//! | `read.latency_ms=M[:P]` | add `M` ms to a read with probability `P` (default 1) |
//! | `read.bitflip=P` | flip one bit in the frame (caught by checksums) |
//! | `read.partitions=A,B,..` | restrict read faults to these partitions |
//! | `wal.append_fail_nth=N` | `N`-th WAL append fails before writing |
//! | `wal.torn_nth=N` | `N`-th WAL append writes half a record, then fails |
//! | `wal.fsync_fail_nth=N` | `N`-th WAL fsync reports failure |
//!
//! See [`plan`] for the full grammar reference.
//!
//! ### Determinism guarantees
//!
//! Every decision is a pure function of `(seed, site, partition id,
//! per-partition call number)`.  Thread interleaving cannot change which
//! faults fire: two partitions probed from different threads draw from
//! independent counter streams, and a retry *is* the next call number, so
//! "fails on attempt 1, succeeds on attempt 2" is expressible exactly
//! ([`FaultPlan::with_read_transient_nth`]).  Injected-fault counts are
//! readable per injector ([`Faults::stats`]) and aggregated into the
//! `dm-obs` global registry (`dm_faults_injected_total` + per-kind
//! counters) for the Prometheus render.
//!
//! ### Fault → error taxonomy
//!
//! | injected fault | surfaces as | retried? |
//! |---|---|---|
//! | transient read | `StorageError::Io` (`is_transient()`) | yes, bounded backoff |
//! | latency spike | slow read (tail latency) | n/a |
//! | bit flip | checksum failure → `Corrupt`/`Compression` | never — fail-fast |
//! | torn/failed WAL write | `PersistError` → store poison | no; recovery at reopen |
//! | failed fsync | `PersistError` → store poison | no; recovery at reopen |
//! | crash between syscalls | [`crash`] observer captures state | reopen must recover |
//!
//! ### Crash-point torture
//!
//! [`crash::site`] instruments every append/fsync/rename boundary in
//! `dm-persist`.  A torture test installs [`crash::with_observer`] and
//! copies the store directory at each site — the on-disk state a kill at
//! that exact point would leave — then reopens every captured state and
//! asserts the recovery invariants.  See `tests/persistence.rs` in the
//! workspace root for the matrix.

pub mod crash;
pub mod inject;
pub mod plan;
pub mod source;

pub use inject::{env_plan, from_env, FaultStats, Faults, ReadDecision, ReadOutcome, WalAppendFault};
pub use plan::{FaultPlan, PlanParseError, ReadFaultPlan, WalFaultPlan, DEFAULT_SEED};
pub use source::{wrap_from_env, FaultyPartitionSource};
