//! [`FaultyPartitionSource`] — the read-side injection seam.
//!
//! Wraps any [`PartitionSource`] and consults a shared [`Faults`] injector on
//! every frame read.  Injected outcomes map onto the storage error taxonomy
//! exactly as real hardware would produce them:
//!
//! * **transient** → [`StorageError::Io`] (retryable; the buffer pool's
//!   retry policy re-reads, which advances the per-partition call counter and
//!   re-rolls the deterministic coin),
//! * **latency spike** → the read simply takes longer (tail-latency chaos),
//! * **bit flip** → the returned frame has one bit flipped, so the next
//!   integrity check (the dm-compress frame checksum) fails with a typed
//!   corruption error — proving corruption is *served to nobody* and is
//!   never retried.
//!
//! Injected faults are also counted into the `dm-obs` global registry
//! (`dm_faults_injected_total` and per-kind counters) so a chaos run's
//! Prometheus scrape shows exactly what the plan did.

use crate::inject::{Faults, ReadOutcome};
use dm_storage::{Metrics, PartitionSource, StorageError};
use std::sync::{Arc, OnceLock};

fn obs_counter(name: &'static str) -> Arc<dm_obs::Counter> {
    dm_obs::registry::global().register_counter(name)
}

fn count_injected(kind: &'static str) {
    static TOTAL: OnceLock<Arc<dm_obs::Counter>> = OnceLock::new();
    TOTAL
        .get_or_init(|| obs_counter("dm_faults_injected_total"))
        .incr();
    obs_counter(kind).incr();
}

/// A [`PartitionSource`] decorator that injects the read-side faults of a
/// [`FaultPlan`](crate::FaultPlan).  See the [module docs](self).
#[derive(Debug)]
pub struct FaultyPartitionSource {
    inner: Arc<dyn PartitionSource>,
    faults: Arc<Faults>,
}

impl FaultyPartitionSource {
    /// Wraps `inner`, consulting `faults` on every frame read.
    pub fn new(inner: Arc<dyn PartitionSource>, faults: Arc<Faults>) -> Self {
        FaultyPartitionSource { inner, faults }
    }

    /// The injector this wrapper consults (e.g. to disable it mid-test or
    /// read its [`stats`](Faults::stats)).
    pub fn faults(&self) -> &Arc<Faults> {
        &self.faults
    }

    /// The wrapped source.
    pub fn inner(&self) -> &Arc<dyn PartitionSource> {
        &self.inner
    }
}

/// Wraps `inner` with the `DM_FAULTS` environment plan when one is active;
/// returns `inner` unchanged (and pays nothing at read time) otherwise.
/// The build seams in `dm-core` and `dm-persist` route every partition
/// source through this, which is what makes `DM_FAULTS=...` reach a whole
/// process without code changes.
pub fn wrap_from_env(inner: Arc<dyn PartitionSource>) -> Arc<dyn PartitionSource> {
    match crate::inject::from_env() {
        Some(faults) => Arc::new(FaultyPartitionSource::new(inner, faults)),
        None => inner,
    }
}

impl PartitionSource for FaultyPartitionSource {
    fn read_frame(&self, id: u64, metrics: &Metrics) -> dm_storage::Result<Arc<Vec<u8>>> {
        let decision = self.faults.on_partition_read(id);
        if let Some(spike) = decision.latency {
            count_injected("dm_faults_injected_latency");
            std::thread::sleep(spike);
        }
        match decision.outcome {
            ReadOutcome::Pass => self.inner.read_frame(id, metrics),
            ReadOutcome::Transient => {
                count_injected("dm_faults_injected_transient");
                Err(StorageError::Io(format!(
                    "injected transient fault reading partition {id}"
                )))
            }
            ReadOutcome::BitFlip { bit } => {
                let frame = self.inner.read_frame(id, metrics)?;
                let mut flipped = (*frame).clone();
                if !flipped.is_empty() {
                    count_injected("dm_faults_injected_bitflip");
                    let at = (bit / 8) as usize % flipped.len();
                    flipped[at] ^= 1 << (bit % 8);
                }
                Ok(Arc::new(flipped))
            }
        }
    }

    fn partition_bytes(&self, id: u64) -> dm_storage::Result<usize> {
        self.inner.partition_bytes(id)
    }

    fn partition_count(&self) -> usize {
        self.inner.partition_count()
    }

    fn total_bytes(&self) -> usize {
        self.inner.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use dm_compress::Codec;
    use dm_storage::{DiskProfile, SimulatedDisk};

    fn disk_with_partitions(n: u64) -> Arc<SimulatedDisk> {
        let disk = SimulatedDisk::new(DiskProfile::free());
        let metrics = Metrics::new();
        for i in 0..n {
            disk.write_partition(&Codec::Lz, &vec![i as u8; 4096], &metrics);
        }
        Arc::new(disk)
    }

    #[test]
    fn pass_through_is_byte_identical_and_delegates_shape_queries() {
        let disk = disk_with_partitions(3);
        let faults = Faults::new(FaultPlan::default());
        let faulty = FaultyPartitionSource::new(disk.clone(), faults);
        let metrics = Metrics::new();
        for id in 0..3 {
            assert_eq!(
                faulty.read_partition(id, &metrics).unwrap(),
                disk.read_partition(id, &metrics).unwrap()
            );
        }
        assert_eq!(faulty.partition_count(), 3);
        assert_eq!(faulty.total_bytes(), disk.total_bytes());
        assert_eq!(faulty.partition_bytes(1).unwrap(), disk.partition_bytes(1).unwrap());
    }

    #[test]
    fn injected_transients_are_typed_io_errors_and_resolve_on_retry() {
        let disk = disk_with_partitions(1);
        let faults = Faults::new(FaultPlan::seeded(1).with_read_transient_nth(1));
        let faulty = FaultyPartitionSource::new(disk, faults.clone());
        let metrics = Metrics::new();
        let err = faulty.read_frame(0, &metrics).unwrap_err();
        assert!(err.is_transient(), "injected transient must classify transient: {err}");
        // The "retry" is just the next read: deterministic once-then-ok.
        assert!(faulty.read_frame(0, &metrics).is_ok());
        assert_eq!(faults.stats().read_transient, 1);
    }

    #[test]
    fn bit_flips_surface_as_corruption_never_as_data() {
        let disk = disk_with_partitions(1);
        let faults = Faults::new(FaultPlan::seeded(3).with_read_bitflip(1.0));
        let faulty = FaultyPartitionSource::new(disk.clone(), faults.clone());
        let metrics = Metrics::new();
        let err = faulty.read_partition(0, &metrics).unwrap_err();
        assert!(
            !err.is_transient(),
            "a flipped frame must fail its checksum as non-retryable corruption: {err}"
        );
        assert!(faults.stats().read_bitflips >= 1);
        // Disabling the injector restores byte-identical service.
        faults.set_enabled(false);
        assert_eq!(
            faulty.read_partition(0, &metrics).unwrap(),
            disk.read_partition(0, &metrics).unwrap()
        );
    }

    #[test]
    fn latency_spikes_delay_but_do_not_corrupt() {
        let disk = disk_with_partitions(1);
        let faults = Faults::new(
            FaultPlan::seeded(1).with_read_latency(std::time::Duration::from_millis(5), 1.0),
        );
        let faulty = FaultyPartitionSource::new(disk.clone(), faults.clone());
        let metrics = Metrics::new();
        let begin = std::time::Instant::now();
        let frame = faulty.read_partition(0, &metrics).unwrap();
        assert!(begin.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(frame, disk.read_partition(0, &metrics).unwrap());
        assert!(faults.stats().read_latency >= 1);
    }
}
