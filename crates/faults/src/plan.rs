//! The declarative fault plan and its `DM_FAULTS` grammar.
//!
//! A [`FaultPlan`] is pure configuration: *what* can go wrong, *where* and
//! *how often*.  It contains no mutable state — the runtime side (call
//! counters, seeded coin flips, injected-fault accounting) lives in
//! [`Faults`](crate::Faults).  Plans are built programmatically with the
//! setter methods or parsed from the compact `key=value;key=value` grammar
//! the `DM_FAULTS` environment variable uses; both construct the same struct,
//! so an env-activated chaos run is exactly reproducible in a unit test.
//!
//! # Grammar
//!
//! Directives are `;`-separated, whitespace around tokens is ignored, keys
//! are case-sensitive:
//!
//! | directive | meaning |
//! |---|---|
//! | `seed=N` | seed for every probabilistic decision (default `0xD1CE`) |
//! | `read.transient=P` | each cold partition read fails with a transient [`StorageError::Io`](dm_storage::StorageError::Io) with probability `P` |
//! | `read.transient_nth=N` | the `N`-th read of **each** partition fails transient (1-based; a retry is the next read, so `1` means once-then-ok) |
//! | `read.latency_ms=M` or `M:P` | add an `M` ms latency spike to each read (with probability `P`, default 1.0) |
//! | `read.bitflip=P` | flip one deterministic bit in the returned frame with probability `P` (surfaces as a CRC/checksum failure — proves corruption stays fail-fast) |
//! | `read.partitions=A,B,C` | restrict all read faults to these partition ids (default: all) |
//! | `wal.append_fail_nth=N` | the `N`-th WAL append fails with an I/O error before writing |
//! | `wal.torn_nth=N` | the `N`-th WAL append writes only half its record, then fails (a torn write) |
//! | `wal.fsync_fail_nth=N` | the `N`-th WAL fsync reports failure |
//!
//! Example: `DM_FAULTS="seed=7;read.transient=0.05;read.latency_ms=2:0.01"`.
//!
//! # Determinism
//!
//! Every probabilistic decision is a pure function of
//! `(seed, site, partition id, per-partition call number)` — never of wall
//! clock, thread identity or global call interleaving.  Two runs with the
//! same plan and the same per-partition access sequence inject exactly the
//! same faults, even when partitions are probed from different threads in a
//! different global order.

use std::time::Duration;

/// Default seed when a plan (or the `DM_FAULTS` string) does not name one.
pub const DEFAULT_SEED: u64 = 0xD1CE;

/// Read-side fault configuration (applies to cold partition reads routed
/// through [`FaultyPartitionSource`](crate::FaultyPartitionSource)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadFaultPlan {
    /// Probability each read fails with a transient I/O error.
    pub transient_p: f64,
    /// 1-based per-partition call number that fails transient (exactly once
    /// per partition).  Composes with `transient_p`.
    pub transient_nth: Option<u64>,
    /// Latency spike added to a read: `(duration, probability)`.
    pub latency: Option<(Duration, f64)>,
    /// Probability a read's frame gets one bit flipped (fails its checksum
    /// downstream — injected corruption, never served).
    pub bitflip_p: f64,
    /// When set, only these partition ids are eligible for read faults.
    pub partitions: Option<Vec<u64>>,
}

impl ReadFaultPlan {
    /// Whether this partition is in the fault-eligible set.
    pub fn targets(&self, partition: u64) -> bool {
        match &self.partitions {
            Some(ids) => ids.contains(&partition),
            None => true,
        }
    }

    /// Whether any read fault is configured at all.
    pub fn is_active(&self) -> bool {
        self.transient_p > 0.0
            || self.transient_nth.is_some()
            || self.latency.is_some()
            || self.bitflip_p > 0.0
    }
}

/// Write-side fault configuration for the WAL (consumed by `dm-persist`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalFaultPlan {
    /// 1-based global append number that fails before writing anything.
    pub append_fail_nth: Option<u64>,
    /// 1-based global append number that writes a *partial* record and then
    /// fails — a torn write the next replay must tolerate or roll back.
    pub torn_nth: Option<u64>,
    /// 1-based global fsync number that reports failure.
    pub fsync_fail_nth: Option<u64>,
}

impl WalFaultPlan {
    /// Whether any WAL fault is configured.
    pub fn is_active(&self) -> bool {
        self.append_fail_nth.is_some() || self.torn_nth.is_some() || self.fsync_fail_nth.is_some()
    }
}

/// A complete, declarative fault plan.  See the [module docs](self) for the
/// grammar and determinism guarantees.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Read-side faults.
    pub read: ReadFaultPlan,
    /// WAL write-side faults.
    pub wal: WalFaultPlan,
}

impl FaultPlan {
    /// An empty plan with the given seed (inject nothing until configured).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Sets the transient-read-failure probability.
    pub fn with_read_transient(mut self, p: f64) -> Self {
        self.read.transient_p = p.clamp(0.0, 1.0);
        self
    }

    /// Fails the `nth` read of each partition (1-based), once per partition.
    pub fn with_read_transient_nth(mut self, nth: u64) -> Self {
        self.read.transient_nth = Some(nth.max(1));
        self
    }

    /// Adds a latency spike of `spike` to each read with probability `p`.
    pub fn with_read_latency(mut self, spike: Duration, p: f64) -> Self {
        self.read.latency = Some((spike, p.clamp(0.0, 1.0)));
        self
    }

    /// Sets the bit-flip probability per read.
    pub fn with_read_bitflip(mut self, p: f64) -> Self {
        self.read.bitflip_p = p.clamp(0.0, 1.0);
        self
    }

    /// Restricts read faults to the given partition ids.
    pub fn with_read_partitions(mut self, partitions: Vec<u64>) -> Self {
        self.read.partitions = Some(partitions);
        self
    }

    /// Fails the `nth` WAL append (1-based) before it writes.
    pub fn with_wal_append_fail_nth(mut self, nth: u64) -> Self {
        self.wal.append_fail_nth = Some(nth.max(1));
        self
    }

    /// Tears the `nth` WAL append (1-based): half the record lands, then error.
    pub fn with_wal_torn_nth(mut self, nth: u64) -> Self {
        self.wal.torn_nth = Some(nth.max(1));
        self
    }

    /// Fails the `nth` WAL fsync (1-based).
    pub fn with_wal_fsync_fail_nth(mut self, nth: u64) -> Self {
        self.wal.fsync_fail_nth = Some(nth.max(1));
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.read.is_active() || self.wal.is_active()
    }

    /// Parses the `DM_FAULTS` grammar (see the [module docs](self)).
    pub fn parse(spec: &str) -> Result<Self, PlanParseError> {
        let mut plan = FaultPlan::seeded(DEFAULT_SEED);
        for directive in spec.split(';') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            let (key, value) = directive
                .split_once('=')
                .ok_or_else(|| PlanParseError::bad(directive, "expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => plan.seed = parse_u64(directive, value)?,
                "read.transient" => plan.read.transient_p = parse_prob(directive, value)?,
                "read.transient_nth" => {
                    plan.read.transient_nth = Some(parse_u64(directive, value)?.max(1))
                }
                "read.latency_ms" => {
                    let (ms, p) = match value.split_once(':') {
                        Some((ms, p)) => (
                            parse_u64(directive, ms.trim())?,
                            parse_prob(directive, p.trim())?,
                        ),
                        None => (parse_u64(directive, value)?, 1.0),
                    };
                    plan.read.latency = Some((Duration::from_millis(ms), p));
                }
                "read.bitflip" => plan.read.bitflip_p = parse_prob(directive, value)?,
                "read.partitions" => {
                    let ids = value
                        .split(',')
                        .map(|id| parse_u64(directive, id.trim()))
                        .collect::<Result<Vec<_>, _>>()?;
                    plan.read.partitions = Some(ids);
                }
                "wal.append_fail_nth" => {
                    plan.wal.append_fail_nth = Some(parse_u64(directive, value)?.max(1))
                }
                "wal.torn_nth" => plan.wal.torn_nth = Some(parse_u64(directive, value)?.max(1)),
                "wal.fsync_fail_nth" => {
                    plan.wal.fsync_fail_nth = Some(parse_u64(directive, value)?.max(1))
                }
                _ => return Err(PlanParseError::bad(directive, "unknown directive")),
            }
        }
        Ok(plan)
    }
}

/// A directive in a `DM_FAULTS` string that would not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending directive, verbatim.
    pub directive: String,
    /// What was wrong with it.
    pub reason: String,
}

impl PlanParseError {
    fn bad(directive: &str, reason: &str) -> Self {
        PlanParseError {
            directive: directive.to_string(),
            reason: reason.to_string(),
        }
    }
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad DM_FAULTS directive {:?}: {}",
            self.directive, self.reason
        )
    }
}

impl std::error::Error for PlanParseError {}

fn parse_u64(directive: &str, value: &str) -> Result<u64, PlanParseError> {
    value
        .parse::<u64>()
        .map_err(|_| PlanParseError::bad(directive, "expected an unsigned integer"))
}

fn parse_prob(directive: &str, value: &str) -> Result<f64, PlanParseError> {
    let p = value
        .parse::<f64>()
        .map_err(|_| PlanParseError::bad(directive, "expected a probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanParseError::bad(directive, "probability outside [0, 1]"));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_default_plans_inject_nothing() {
        assert!(!FaultPlan::default().is_active());
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.is_active());
        assert_eq!(plan.seed, DEFAULT_SEED);
    }

    #[test]
    fn full_grammar_round_trip() {
        let plan = FaultPlan::parse(
            "seed=42; read.transient=0.05; read.transient_nth=3; read.latency_ms=5:0.25; \
             read.bitflip=0.001; read.partitions=1, 2,9; wal.append_fail_nth=5; \
             wal.torn_nth=2; wal.fsync_fail_nth=1",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.read.transient_p, 0.05);
        assert_eq!(plan.read.transient_nth, Some(3));
        assert_eq!(plan.read.latency, Some((Duration::from_millis(5), 0.25)));
        assert_eq!(plan.read.bitflip_p, 0.001);
        assert_eq!(plan.read.partitions, Some(vec![1, 2, 9]));
        assert_eq!(plan.wal.append_fail_nth, Some(5));
        assert_eq!(plan.wal.torn_nth, Some(2));
        assert_eq!(plan.wal.fsync_fail_nth, Some(1));
        assert!(plan.is_active());
        assert!(plan.read.targets(2) && !plan.read.targets(3));
    }

    #[test]
    fn latency_without_probability_defaults_to_always() {
        let plan = FaultPlan::parse("read.latency_ms=7").unwrap();
        assert_eq!(plan.read.latency, Some((Duration::from_millis(7), 1.0)));
    }

    #[test]
    fn builder_matches_parser() {
        let built = FaultPlan::seeded(42)
            .with_read_transient(0.05)
            .with_read_latency(Duration::from_millis(5), 0.25);
        let parsed = FaultPlan::parse("seed=42;read.transient=0.05;read.latency_ms=5:0.25").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn bad_directives_are_rejected_with_context() {
        for spec in [
            "read.transient",       // no value
            "read.transient=nope",  // not a number
            "read.transient=1.5",   // out of range
            "lies.everywhere=1",    // unknown key
            "read.partitions=1,x",  // bad id
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(!err.directive.is_empty(), "{spec} should name the directive");
            assert!(!err.to_string().is_empty());
        }
    }
}
