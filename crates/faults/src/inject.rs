//! The seeded fault-decision runtime behind a [`FaultPlan`].
//!
//! A [`Faults`] instance owns the plan plus all mutable state: per-partition
//! read counters, global WAL call counters, an enable switch and
//! injected-fault accounting.  Decisions are pure functions of
//! `(seed, site, partition, call number)` — see the determinism notes on
//! [`plan`](crate::plan) — so a retry (which is simply the next read of the
//! same partition) re-rolls the coin deterministically, and an `nth`-style
//! trigger fires exactly once regardless of thread interleaving.

use crate::plan::FaultPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Site identifiers mixed into the decision hash so the same call number at
/// different sites rolls independent coins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadSite {
    Transient = 1,
    Latency = 2,
    BitFlip = 3,
}

/// The decision for one cold partition read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadDecision {
    /// Latency spike to apply before the read proceeds (or fails).
    pub latency: Option<Duration>,
    /// What happens to the read itself.
    pub outcome: ReadOutcome,
}

/// Outcome component of a [`ReadDecision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Read proceeds untouched.
    Pass,
    /// Read fails with a transient `StorageError::Io`.
    Transient,
    /// Read succeeds but one bit of the frame is flipped (which the frame's
    /// checksum must catch downstream).
    BitFlip {
        /// Bit index to flip, reduced modulo the frame length at apply time.
        bit: u64,
    },
}

/// The decision for one WAL append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalAppendFault {
    /// Append proceeds untouched.
    Pass,
    /// Append fails before writing anything.
    Fail,
    /// Append writes only `keep` bytes of its record, then fails.
    Torn {
        /// Fraction numerator out of 2: records are torn at the halfway point.
        keep_half: bool,
    },
}

/// Counts of injected faults, readable via [`Faults::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read errors injected.
    pub read_transient: u64,
    /// Latency spikes injected.
    pub read_latency: u64,
    /// Bit flips injected.
    pub read_bitflips: u64,
    /// WAL appends failed outright.
    pub wal_append_fails: u64,
    /// WAL appends torn.
    pub wal_torn: u64,
    /// WAL fsyncs failed.
    pub wal_fsync_fails: u64,
}

impl FaultStats {
    /// Total injected faults across all kinds.
    pub fn total(&self) -> u64 {
        self.read_transient
            + self.read_latency
            + self.read_bitflips
            + self.wal_append_fails
            + self.wal_torn
            + self.wal_fsync_fails
    }
}

/// A live fault injector: one [`FaultPlan`] plus deterministic call counters
/// and injected-fault accounting.  Cheap to share (`Arc`), safe to consult
/// from any thread.  Disabled injectors pass everything through.
#[derive(Debug)]
pub struct Faults {
    plan: FaultPlan,
    enabled: AtomicBool,
    /// Per-partition read counters; cold reads are rare and slow, so a mutex
    /// is fine here (never on a pool-hit path).
    read_counts: Mutex<HashMap<u64, u64>>,
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    read_transient: AtomicU64,
    read_latency: AtomicU64,
    read_bitflips: AtomicU64,
    wal_append_fails: AtomicU64,
    wal_torn: AtomicU64,
    wal_fsync_fails: AtomicU64,
}

impl Faults {
    /// Wraps a plan in a fresh injector (enabled, zeroed counters).
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(Faults {
            plan,
            enabled: AtomicBool::new(true),
            read_counts: Mutex::new(HashMap::new()),
            wal_appends: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            read_transient: AtomicU64::new(0),
            read_latency: AtomicU64::new(0),
            read_bitflips: AtomicU64::new(0),
            wal_append_fails: AtomicU64::new(0),
            wal_torn: AtomicU64::new(0),
            wal_fsync_fails: AtomicU64::new(0),
        })
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Runtime kill switch: a disabled injector passes everything through
    /// (used by recovery tests to "repair the disk" mid-run).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether the injector is currently injecting.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Snapshot of the injected-fault counts.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            read_transient: self.read_transient.load(Ordering::Relaxed),
            read_latency: self.read_latency.load(Ordering::Relaxed),
            read_bitflips: self.read_bitflips.load(Ordering::Relaxed),
            wal_append_fails: self.wal_append_fails.load(Ordering::Relaxed),
            wal_torn: self.wal_torn.load(Ordering::Relaxed),
            wal_fsync_fails: self.wal_fsync_fails.load(Ordering::Relaxed),
        }
    }

    /// Decides the fate of the next read of `partition`, advancing its
    /// per-partition call counter.  Latency composes with the other
    /// outcomes; transient takes precedence over bit flips.
    pub fn on_partition_read(&self, partition: u64) -> ReadDecision {
        let pass = ReadDecision {
            latency: None,
            outcome: ReadOutcome::Pass,
        };
        if !self.enabled() {
            return pass;
        }
        let read = &self.plan.read;
        if !read.is_active() || !read.targets(partition) {
            return pass;
        }
        let call = {
            let mut counts = self.read_counts.lock().unwrap_or_else(|e| e.into_inner());
            let slot = counts.entry(partition).or_insert(0);
            *slot += 1;
            *slot
        };
        let latency = read.latency.and_then(|(spike, p)| {
            let hit = self.roll(ReadSite::Latency, partition, call) < p;
            if hit {
                self.read_latency.fetch_add(1, Ordering::Relaxed);
                Some(spike)
            } else {
                None
            }
        });
        let transient = read.transient_nth.is_some_and(|nth| call == nth)
            || (read.transient_p > 0.0
                && self.roll(ReadSite::Transient, partition, call) < read.transient_p);
        if transient {
            self.read_transient.fetch_add(1, Ordering::Relaxed);
            return ReadDecision {
                latency,
                outcome: ReadOutcome::Transient,
            };
        }
        if read.bitflip_p > 0.0 && self.roll(ReadSite::BitFlip, partition, call) < read.bitflip_p {
            self.read_bitflips.fetch_add(1, Ordering::Relaxed);
            let bit = mix(self.plan.seed ^ 0xB17_F11F, partition, call);
            return ReadDecision {
                latency,
                outcome: ReadOutcome::BitFlip { bit },
            };
        }
        ReadDecision {
            latency,
            outcome: ReadOutcome::Pass,
        }
    }

    /// Decides the fate of the next WAL append (global 1-based counter).
    pub fn on_wal_append(&self) -> WalAppendFault {
        if !self.enabled() || !self.plan.wal.is_active() {
            return WalAppendFault::Pass;
        }
        let call = self.wal_appends.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.wal.append_fail_nth == Some(call) {
            self.wal_append_fails.fetch_add(1, Ordering::Relaxed);
            return WalAppendFault::Fail;
        }
        if self.plan.wal.torn_nth == Some(call) {
            self.wal_torn.fetch_add(1, Ordering::Relaxed);
            return WalAppendFault::Torn { keep_half: true };
        }
        WalAppendFault::Pass
    }

    /// Whether the next WAL fsync (global 1-based counter) should fail.
    pub fn on_wal_fsync(&self) -> bool {
        if !self.enabled() || self.plan.wal.fsync_fail_nth.is_none() {
            return false;
        }
        let call = self.wal_fsyncs.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = self.plan.wal.fsync_fail_nth == Some(call);
        if fail {
            self.wal_fsync_fails.fetch_add(1, Ordering::Relaxed);
        }
        fail
    }

    /// Uniform draw in `[0, 1)` for `(site, partition, call)` under the
    /// plan's seed.  Pure and thread-order independent.
    fn roll(&self, site: ReadSite, partition: u64, call: u64) -> f64 {
        let z = mix(self.plan.seed ^ (site as u64), partition, call);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// splitmix64-style finalizer over three words.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `DM_FAULTS` plan, parsed once per process.  `None` when the variable
/// is unset, empty, or does not parse (a malformed plan is reported to
/// stderr once rather than silently dropping chaos coverage).
pub fn env_plan() -> Option<&'static FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let spec = std::env::var("DM_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => plan.is_active().then_some(plan),
            Err(err) => {
                eprintln!("dm-faults: ignoring DM_FAULTS: {err}");
                None
            }
        }
    })
    .as_ref()
}

/// A fresh injector for the `DM_FAULTS` plan, or `None` when the env is
/// inert.  Each call returns an independent instance (own counters), so
/// every store activated from the environment replays the same per-partition
/// fault schedule — determinism per store, not per process.
pub fn from_env() -> Option<Arc<Faults>> {
    env_plan().map(|plan| Faults::new(plan.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_passes_everything_through() {
        let faults = Faults::new(FaultPlan::default());
        for partition in 0..64 {
            let d = faults.on_partition_read(partition);
            assert_eq!(d.outcome, ReadOutcome::Pass);
            assert_eq!(d.latency, None);
        }
        assert_eq!(faults.on_wal_append(), WalAppendFault::Pass);
        assert!(!faults.on_wal_fsync());
        assert_eq!(faults.stats().total(), 0);
    }

    #[test]
    fn transient_nth_fires_exactly_once_per_partition() {
        let faults = Faults::new(FaultPlan::seeded(1).with_read_transient_nth(2));
        for partition in [3u64, 9] {
            assert_eq!(faults.on_partition_read(partition).outcome, ReadOutcome::Pass);
            assert_eq!(
                faults.on_partition_read(partition).outcome,
                ReadOutcome::Transient,
                "second read of partition {partition} must fail"
            );
            for _ in 0..5 {
                assert_eq!(faults.on_partition_read(partition).outcome, ReadOutcome::Pass);
            }
        }
        assert_eq!(faults.stats().read_transient, 2);
    }

    #[test]
    fn probabilistic_decisions_are_deterministic_across_instances() {
        let plan = FaultPlan::seeded(99)
            .with_read_transient(0.3)
            .with_read_bitflip(0.1)
            .with_read_latency(Duration::from_millis(1), 0.2);
        let a = Faults::new(plan.clone());
        let b = Faults::new(plan);
        let mut decisions = 0usize;
        for partition in 0..16u64 {
            for _ in 0..16 {
                assert_eq!(
                    a.on_partition_read(partition),
                    b.on_partition_read(partition)
                );
                decisions += 1;
            }
        }
        assert_eq!(decisions, 256);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().read_transient > 0, "0.3 over 256 draws must fire");
    }

    #[test]
    fn decisions_do_not_depend_on_cross_partition_interleaving() {
        let plan = FaultPlan::seeded(7).with_read_transient(0.5);
        let a = Faults::new(plan.clone());
        let b = Faults::new(plan);
        // a: partition-major order; b: interleaved.
        let mut a_decisions = Vec::new();
        for partition in 0..4u64 {
            for _ in 0..8 {
                a_decisions.push((partition, a.on_partition_read(partition).outcome));
            }
        }
        let mut b_decisions = Vec::new();
        for round in 0..8 {
            for partition in 0..4u64 {
                let _ = round;
                b_decisions.push((partition, b.on_partition_read(partition).outcome));
            }
        }
        let key = |d: &Vec<(u64, ReadOutcome)>| {
            let mut sorted = d.clone();
            sorted.sort_by_key(|(p, o)| (*p, matches!(o, ReadOutcome::Transient)));
            sorted
        };
        // Per-partition sequences are identical regardless of global order.
        for partition in 0..4u64 {
            let of = |d: &Vec<(u64, ReadOutcome)>| {
                d.iter()
                    .filter(|(p, _)| *p == partition)
                    .map(|(_, o)| *o)
                    .collect::<Vec<_>>()
            };
            assert_eq!(of(&a_decisions), of(&b_decisions));
        }
        let _ = key;
    }

    #[test]
    fn partition_restriction_shields_other_partitions() {
        let faults = Faults::new(
            FaultPlan::seeded(1)
                .with_read_transient(1.0)
                .with_read_partitions(vec![5]),
        );
        assert_eq!(faults.on_partition_read(5).outcome, ReadOutcome::Transient);
        assert_eq!(faults.on_partition_read(6).outcome, ReadOutcome::Pass);
    }

    #[test]
    fn wal_nth_triggers_fire_in_order() {
        let faults = Faults::new(
            FaultPlan::seeded(1)
                .with_wal_append_fail_nth(2)
                .with_wal_torn_nth(3)
                .with_wal_fsync_fail_nth(1),
        );
        assert_eq!(faults.on_wal_append(), WalAppendFault::Pass);
        assert_eq!(faults.on_wal_append(), WalAppendFault::Fail);
        assert_eq!(faults.on_wal_append(), WalAppendFault::Torn { keep_half: true });
        assert_eq!(faults.on_wal_append(), WalAppendFault::Pass);
        assert!(faults.on_wal_fsync());
        assert!(!faults.on_wal_fsync());
        let stats = faults.stats();
        assert_eq!(stats.wal_append_fails, 1);
        assert_eq!(stats.wal_torn, 1);
        assert_eq!(stats.wal_fsync_fails, 1);
    }

    #[test]
    fn disabling_mid_run_stops_injection() {
        let faults = Faults::new(FaultPlan::seeded(1).with_read_transient(1.0));
        assert_eq!(faults.on_partition_read(0).outcome, ReadOutcome::Transient);
        faults.set_enabled(false);
        assert!(!faults.enabled());
        assert_eq!(faults.on_partition_read(0).outcome, ReadOutcome::Pass);
        faults.set_enabled(true);
        assert_eq!(faults.on_partition_read(0).outcome, ReadOutcome::Transient);
    }
}
