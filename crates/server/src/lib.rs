//! # dm-server — batched in-process query serving for DeepMapping stores
//!
//! DeepMapping's lookup path amortizes its fixed costs — pipeline dispatch,
//! model inference setup, partition touch-up — over the keys in a batch: the
//! committed benches serve large batches at ~1 µs/key while a single-key call
//! pays the full fixed cost alone. Real serving workloads, however, arrive as
//! many *small* requests from concurrent callers. This crate closes that gap
//! with a [`QueryServer`] that:
//!
//! * **coalesces** concurrent small `get` / `lookup_batch` requests into
//!   inference-sized merged batches under a deadline — flush at
//!   [`max_batch_keys`](ServerConfig::max_batch_keys) pending keys or when the
//!   oldest request has waited [`max_delay`](ServerConfig::max_delay),
//!   whichever comes first;
//! * **demuxes** the merged result back to each waiter by copying spans out of
//!   one flat [`LookupBuffer`](dm_storage::LookupBuffer) arena — no
//!   per-request allocation on the steady-state path, the same discipline the
//!   buffer itself uses;
//! * applies **admission control**: a bounded pending-key queue with a typed
//!   [`Overloaded`](ServerError::Overloaded) rejection and high/low
//!   load-shedding watermarks (hysteresis, so the server sheds decisively
//!   instead of flapping at the threshold);
//! * serves **multiple tenants**, each an
//!   [`Arc<dyn TupleStore>`](dm_storage::TupleStore) registered up front or a
//!   snapshot path opened lazily (and exactly once) on first request;
//! * exposes **observability** via [`QueryServer::stats`]: queue delay,
//!   coalesce width, batches formed, shed count, per-request wall time — the
//!   counters an open-loop load generator needs to find the throughput knee.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dm_server::{QueryServer, ServerConfig};
//! use dm_storage::{ReferenceStore, Row};
//!
//! let reference = ReferenceStore::from_rows(&[Row::new(7, vec![70])]);
//!
//! let server = QueryServer::new(ServerConfig::default());
//! let tenant = server.register_store("orders", Arc::new(reference)).unwrap();
//!
//! let mut client = server.client();
//! assert_eq!(client.get(tenant, 7).unwrap(), Some(vec![70]));
//! assert_eq!(client.get(tenant, 8).unwrap(), None);
//! ```
//!
//! # Threading model
//!
//! One plain OS dispatcher thread per server, deliberately outside the
//! dm-exec pool: under `DM_EXEC_THREADS=1` the merged batch simply executes
//! serially inside the store while the dispatcher keeps coalescing — the
//! server degrades to inline serial execution instead of deadlocking.
//! [`ServerConfig::inline`] removes the dispatcher entirely (requests run
//! synchronously on caller threads), which is both the uncoalesced baseline
//! for benches and the simplest mode for single-threaded tests.

pub mod client;
pub mod error;
pub mod server;
pub mod stats;

pub use client::{RequestReport, ServerClient, Ticket};
pub use error::{Result, ServerError};
pub use server::{QueryServer, ServerConfig, TenantId, DEFAULT_PIPELINE_DEPTH};
pub use stats::{ServerStats, TenantTail};

#[cfg(test)]
mod tests {
    use super::*;
    use dm_storage::{LookupBuffer, ReferenceStore, Row, TupleStore};
    use std::sync::Arc;
    use std::time::Duration;

    fn seeded_store(keys: std::ops::Range<u64>) -> Arc<dyn TupleStore> {
        let rows: Vec<Row> = keys
            .map(|k| Row::new(k, vec![k as u32, (k * 2) as u32]))
            .collect();
        Arc::new(ReferenceStore::from_rows(&rows))
    }

    #[test]
    fn coalesced_server_answers_like_the_store() {
        let server = QueryServer::new(ServerConfig::coalescing(Duration::from_micros(200), 64));
        let tenant = server
            .register_store("t", seeded_store(0..100))
            .unwrap();
        let mut client = server.client();
        let mut out = LookupBuffer::new();
        for round in 0..20u64 {
            let keys = [round, round + 50, round + 1000];
            let report = client.lookup_batch_into(tenant, &keys, &mut out).unwrap();
            assert_eq!(out.len(), 3);
            assert_eq!(out.get(0), Some(&[round as u32, (round * 2) as u32][..]));
            let second = round + 50;
            if second < 100 {
                assert_eq!(out.get(1), Some(&[second as u32, (second * 2) as u32][..]));
            } else {
                assert_eq!(out.get(1), None);
            }
            assert_eq!(out.get(2), None, "key {} should miss", round + 1000);
            assert!(report.wall >= report.queue_delay);
        }
        let stats = server.stats();
        assert_eq!(stats.requests_completed, 20);
        assert_eq!(stats.keys_served, 60);
        assert!(stats.batches_formed >= 1);
    }

    #[test]
    fn inline_mode_runs_on_the_caller_thread() {
        let server = QueryServer::new(ServerConfig::inline());
        let tenant = server.register_store("t", seeded_store(0..10)).unwrap();
        let mut client = server.client();
        assert_eq!(client.get(tenant, 3).unwrap(), Some(vec![3, 6]));
        assert_eq!(client.get(tenant, 99).unwrap(), None);
        let stats = server.stats();
        assert_eq!(stats.inline_requests, 2);
        assert_eq!(stats.batches_formed, 0);
        assert_eq!(stats.requests_completed, 2);
    }

    #[test]
    fn unknown_and_duplicate_tenants_are_typed_errors() {
        let server = QueryServer::with_defaults();
        assert_eq!(
            server.tenant("nope"),
            Err(ServerError::UnknownTenant("nope".into()))
        );
        server.register_store("t", seeded_store(0..4)).unwrap();
        assert_eq!(
            server
                .register_store("t", seeded_store(0..4))
                .unwrap_err(),
            ServerError::DuplicateTenant("t".into())
        );
    }

    #[test]
    fn oversized_requests_are_rejected_without_consuming_a_slot() {
        let config = ServerConfig {
            max_request_keys: 4,
            ..ServerConfig::default()
        };
        let server = QueryServer::new(config);
        let tenant = server.register_store("t", seeded_store(0..4)).unwrap();
        let mut client = server.client();
        let keys: Vec<u64> = (0..10).collect();
        assert_eq!(
            client.submit(tenant, &keys).unwrap_err(),
            ServerError::RequestTooLarge {
                keys: 10,
                max_request_keys: 4
            }
        );
        assert_eq!(client.in_flight(), 0);
        // The slot is still usable for an in-range request.
        assert_eq!(client.get(tenant, 1).unwrap(), Some(vec![1, 2]));
    }

    #[test]
    fn pipeline_full_is_reported_and_slots_recycle() {
        let server = QueryServer::new(ServerConfig::coalescing(Duration::from_micros(50), 8));
        let tenant = server.register_store("t", seeded_store(0..32)).unwrap();
        let mut client = server.client_with_depth(2);
        let t0 = client.submit(tenant, &[1]).unwrap();
        let t1 = client.submit(tenant, &[2]).unwrap();
        assert_eq!(client.submit(tenant, &[3]).unwrap_err(), ServerError::PipelineFull);
        let mut out = LookupBuffer::new();
        client.wait_into(t0, &mut out).unwrap();
        assert_eq!(out.get(0), Some(&[1u32, 2][..]));
        let t2 = client.submit(tenant, &[3]).unwrap();
        client.wait_into(t1, &mut out).unwrap();
        assert_eq!(out.get(0), Some(&[2u32, 4][..]));
        client.wait_into(t2, &mut out).unwrap();
        assert_eq!(out.get(0), Some(&[3u32, 6][..]));
    }

    /// A store whose lookups block until the gate opens — lets tests hold the
    /// dispatcher mid-batch so queue buildup is deterministic.
    struct GateStore {
        inner: ReferenceStore,
        open: std::sync::Mutex<bool>,
        cv: std::sync::Condvar,
        entered: std::sync::atomic::AtomicUsize,
    }

    impl GateStore {
        fn new(keys: std::ops::Range<u64>) -> Self {
            let rows: Vec<Row> = keys
                .map(|k| Row::new(k, vec![k as u32, (k * 2) as u32]))
                .collect();
            GateStore {
                inner: ReferenceStore::from_rows(&rows),
                open: std::sync::Mutex::new(false),
                cv: std::sync::Condvar::new(),
                entered: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        fn entered(&self) -> usize {
            self.entered.load(std::sync::atomic::Ordering::Acquire)
        }

        fn open_gate(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    impl TupleStore for GateStore {
        fn name(&self) -> &str {
            "GATE"
        }

        fn lookup_batch_into(
            &self,
            keys: &[u64],
            out: &mut LookupBuffer,
        ) -> dm_storage::Result<()> {
            self.entered
                .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.lookup_batch_into(keys, out)
        }

        fn stats(&self) -> dm_storage::StoreStats {
            self.inner.stats()
        }
    }

    #[test]
    fn admission_control_sheds_past_capacity_and_recovers_after_drain() {
        let config = ServerConfig {
            max_batch_keys: 4,
            max_delay: Duration::from_micros(100),
            queue_capacity_keys: 8,
            shed_high_watermark_keys: 8,
            shed_low_watermark_keys: 4,
            max_request_keys: 8,
            ..ServerConfig::default()
        };
        let server = QueryServer::new(config);
        let gate = Arc::new(GateStore::new(0..64));
        let tenant = server
            .register_store("t", Arc::clone(&gate) as Arc<dyn TupleStore>)
            .unwrap();
        let mut client = server.client_with_depth(16);

        // A 4-key request trips the size trigger; the dispatcher takes it and
        // blocks inside the gated store, leaving the queue to build up.
        let stuck = client.submit(tenant, &[0, 1, 2, 3]).unwrap();
        while gate.entered() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }

        // 8 single-key submissions fill the queue to capacity (the 8th
        // crosses the high watermark and latches shedding).
        let tickets: Vec<_> = (0..8)
            .map(|k| client.submit(tenant, &[k]).unwrap())
            .collect();
        let err = client.submit(tenant, &[9]).unwrap_err();
        assert!(
            matches!(err, ServerError::Overloaded { queued_keys: 8, capacity: 8 }),
            "expected Overloaded at capacity, got {err:?}"
        );
        assert_eq!(server.stats().requests_shed, 1);

        // Open the gate: the stuck batch completes, the queue drains (falling
        // through the low watermark clears shedding), and all waiters finish.
        gate.open_gate();
        let mut out = LookupBuffer::new();
        client.wait_into(stuck, &mut out).unwrap();
        assert_eq!(out.get(3), Some(&[3u32, 6][..]));
        for (k, t) in tickets.into_iter().enumerate() {
            client.wait_into(t, &mut out).unwrap();
            assert_eq!(out.get(0), Some(&[k as u32, (k * 2) as u32][..]));
        }
        // After the drain the server accepts again.
        assert_eq!(client.get(tenant, 1).unwrap(), Some(vec![1, 2]));
        assert_eq!(server.stats().requests_shed, 1);

        drop(client);
        server.shutdown();

        let config = ServerConfig {
            max_batch_keys: 4,
            max_delay: Duration::from_micros(50),
            queue_capacity_keys: 8,
            shed_high_watermark_keys: 8,
            shed_low_watermark_keys: 4,
            max_request_keys: 8,
            ..ServerConfig::default()
        };
        let server = QueryServer::new(config);
        let tenant = server.register_store("t", seeded_store(0..64)).unwrap();
        let mut client = server.client_with_depth(16);
        let mut out = LookupBuffer::new();
        // Saturate, shed or complete, then verify the server still serves.
        let mut pending = Vec::new();
        let mut shed = 0u64;
        for k in 0..32u64 {
            match client.submit(tenant, &[k % 16]) {
                Ok(t) => pending.push(t),
                Err(ServerError::Overloaded { .. }) => shed += 1,
                Err(ServerError::PipelineFull) => {
                    let t = pending.remove(0);
                    client.wait_into(t, &mut out).unwrap();
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        for t in pending {
            client.wait_into(t, &mut out).unwrap();
        }
        // After the storm the server must accept again.
        assert_eq!(client.get(tenant, 1).unwrap(), Some(vec![1, 2]));
        assert_eq!(server.stats().requests_shed, shed);
    }

    #[test]
    fn shutdown_fails_queued_waiters_with_a_typed_error() {
        // Long deadline so queued requests are still pending at shutdown.
        let config = ServerConfig {
            max_batch_keys: 1024,
            max_delay: Duration::from_secs(30),
            ..ServerConfig::default()
        };
        let server = Arc::new(QueryServer::new(config));
        let tenant = server.register_store("t", seeded_store(0..8)).unwrap();

        let (tx, rx) = std::sync::mpsc::channel();
        let for_thread = Arc::clone(&server);
        let waiter = std::thread::spawn(move || {
            let mut client = for_thread.client();
            let ticket = client.submit(tenant, &[1, 2]).unwrap();
            let mut out = LookupBuffer::new();
            let outcome = client.wait_into(ticket, &mut out);
            tx.send(outcome).unwrap();
        });

        // Give the waiter time to park, then shut down.
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        let outcome = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("waiter must be released by shutdown, not hang");
        assert_eq!(outcome.unwrap_err(), ServerError::ShuttingDown);
        waiter.join().unwrap();

        // Post-shutdown submissions fail fast with the same typed error.
        let mut client = server.client();
        assert_eq!(
            client.submit(tenant, &[1]).unwrap_err(),
            ServerError::ShuttingDown
        );
        // Shutdown is idempotent.
        server.shutdown();
    }

    #[test]
    fn lazy_snapshot_tenant_with_a_bad_path_reports_tenant_open() {
        let server = QueryServer::new(ServerConfig::inline());
        let tenant = server
            .register_snapshot("ghost", "/nonexistent/dm-server-test.snap")
            .unwrap();
        assert_eq!(server.tenants(), vec![("ghost".to_string(), false)]);
        let mut client = server.client();
        match client.get(tenant, 1) {
            Err(ServerError::TenantOpen(msg)) => assert!(msg.contains("ghost"), "{msg}"),
            other => panic!("expected TenantOpen, got {other:?}"),
        }
        // Registration stays; the open is retried on the next request.
        assert_eq!(server.tenants(), vec![("ghost".to_string(), false)]);
    }

    #[test]
    fn multi_tenant_requests_route_to_the_right_store() {
        let server = QueryServer::new(ServerConfig::coalescing(Duration::from_micros(100), 32));
        let a = server.register_store("a", seeded_store(0..10)).unwrap();
        let b = server.register_store("b", seeded_store(100..110)).unwrap();
        assert_eq!(server.tenant("a").unwrap(), a);
        assert_eq!(server.tenant("b").unwrap(), b);
        let mut client = server.client();
        assert_eq!(client.get(a, 5).unwrap(), Some(vec![5, 10]));
        assert_eq!(client.get(b, 5).unwrap(), None);
        assert_eq!(client.get(b, 105).unwrap(), Some(vec![105, 210]));
        assert_eq!(client.get(a, 105).unwrap(), None);
    }

    #[test]
    fn tenant_tail_and_slow_requests_observe_served_traffic() {
        // Threshold zero: every request's wall time crosses it, so the slow
        // ring deterministically captures each one.
        let config = ServerConfig {
            slow_request: Some(Duration::ZERO),
            ..ServerConfig::coalescing(Duration::from_micros(100), 64)
        };
        let server = QueryServer::new(config);
        let tenant = server.register_store("t", seeded_store(0..100)).unwrap();
        let mut client = server.client();
        for k in 0..10 {
            assert!(client.get(tenant, k).unwrap().is_some());
        }

        let tail = server.tenant_tail("t").unwrap();
        assert_eq!(tail.request_wall.count(), 10);
        assert_eq!(tail.queue_delay.count(), 10);
        assert_eq!(tail.coalesce_wait.count(), 10);
        assert_eq!(tail.exec_share.count(), 10);
        assert_eq!(tail.result_copy.count(), 10);
        assert!(tail.request_wall.max() > 0);

        let slow = server.slow_requests();
        assert_eq!(slow.len(), 10);
        assert!(slow.iter().all(|c| c.label == "server_request"));
        assert!(slow.iter().all(|c| c.detail.contains("tenant=t")));
        assert!(slow.iter().all(|c| !c.events.is_empty()));

        let stats = server.stats();
        assert!(stats.request_wall_p50 > Duration::ZERO);
        assert!(stats.request_wall_max >= stats.request_wall_p99);
        assert!(stats.request_wall_p99 >= stats.request_wall_p50);

        assert!(server.tenant_tail("nope").is_err());
    }

    #[test]
    fn health_reports_cover_open_tenants_and_carry_slo_evidence() {
        let config = ServerConfig {
            tenant_p99_target: Some(Duration::from_millis(5)),
            ..ServerConfig::inline()
        };
        let server = QueryServer::new(config);
        let tenant = server.register_store("t", seeded_store(0..10)).unwrap();
        server
            .register_snapshot("lazy", "/nonexistent/dm-health-test.snap")
            .unwrap();
        let mut client = server.client();
        for k in 0..5 {
            client.get(tenant, k).unwrap();
        }

        let reports = server.health();
        assert_eq!(reports.len(), 1, "unopened snapshot tenants are skipped");
        let (name, report) = &reports[0];
        assert_eq!(name, "t");
        // A baseline store exposes no drift/pool signals, so the advisor sees
        // defaults and must conclude Healthy.
        assert!(report.is_healthy(), "{report:?}");
        let slo = report.slo.expect("a target is configured");
        assert_eq!(slo.target_p99_nanos, 5_000_000);
        assert!(slo.windowed_requests >= 5, "served requests feed the window");

        let direct = server.tenant_health("t").unwrap();
        assert!(direct.is_healthy());
        assert!(server.tenant_health("nope").is_err());

        // publish_health lands the report in the global registry, where the
        // Prometheus/JSON renderers pick it up on the next scrape.
        assert_eq!(server.publish_health(), 1);
        let text = dm_obs::render_prometheus();
        assert!(text.contains("dm_health_t_advice_healthy 1"), "{text}");
        assert!(text.contains("dm_health_t_slo_target_p99_nanos 5000000"));
    }

    /// A store that can be switched between serving normally, failing every
    /// batch outright, and degrading a chosen key range with per-span marks.
    struct FlakyStore {
        inner: ReferenceStore,
        mode: std::sync::atomic::AtomicU8, // 0 = ok, 1 = fail, 2 = degrade
        degraded_from: u64,
    }

    impl FlakyStore {
        fn new(keys: std::ops::Range<u64>, degraded_from: u64) -> Self {
            let rows: Vec<Row> = keys
                .map(|k| Row::new(k, vec![k as u32, (k * 2) as u32]))
                .collect();
            FlakyStore {
                inner: ReferenceStore::from_rows(&rows),
                mode: std::sync::atomic::AtomicU8::new(0),
                degraded_from,
            }
        }

        fn set_mode(&self, mode: u8) {
            self.mode.store(mode, std::sync::atomic::Ordering::Release);
        }
    }

    impl TupleStore for FlakyStore {
        fn name(&self) -> &str {
            "FLAKY"
        }

        fn lookup_batch_into(
            &self,
            keys: &[u64],
            out: &mut LookupBuffer,
        ) -> dm_storage::Result<()> {
            match self.mode.load(std::sync::atomic::Ordering::Acquire) {
                1 => Err(dm_storage::StorageError::Io("injected batch failure".into())),
                2 => {
                    self.inner.lookup_batch_into(keys, out)?;
                    for (i, key) in keys.iter().enumerate() {
                        if *key >= self.degraded_from {
                            out.set_failed(
                                i,
                                dm_storage::StorageError::Io("partition unreadable".into()),
                            );
                        }
                    }
                    Ok(())
                }
                _ => self.inner.lookup_batch_into(keys, out),
            }
        }

        fn stats(&self) -> dm_storage::StoreStats {
            self.inner.stats()
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_probes_and_recovers() {
        let config = ServerConfig {
            breaker_failure_threshold: 3,
            breaker_cooldown: Duration::from_millis(30),
            ..ServerConfig::inline()
        };
        let server = QueryServer::new(config);
        let flaky = Arc::new(FlakyStore::new(0..32, u64::MAX));
        let tenant = server
            .register_store("t", Arc::clone(&flaky) as Arc<dyn TupleStore>)
            .unwrap();
        let mut client = server.client();

        // Three consecutive store failures trip the breaker...
        flaky.set_mode(1);
        for _ in 0..3 {
            assert!(matches!(
                client.get(tenant, 1).unwrap_err(),
                ServerError::Store(_)
            ));
        }
        assert_eq!(server.stats().breaker_trips, 1);
        // ...and the next request is fast-failed at admission with a typed
        // retry hint, without ever reaching the store.
        match client.get(tenant, 1).unwrap_err() {
            ServerError::TenantUnavailable { tenant: name, retry_after } => {
                assert_eq!(name, "t");
                assert!(retry_after <= Duration::from_millis(30));
            }
            other => panic!("expected TenantUnavailable, got {other:?}"),
        }
        assert_eq!(server.stats().breaker_rejections, 1);

        // Past the cooldown, one half-open probe is admitted; it still fails,
        // so the breaker re-opens for another cooldown.
        std::thread::sleep(Duration::from_millis(40));
        assert!(matches!(
            client.get(tenant, 1).unwrap_err(),
            ServerError::Store(_)
        ));
        assert_eq!(server.stats().breaker_trips, 2);
        assert!(matches!(
            client.get(tenant, 1).unwrap_err(),
            ServerError::TenantUnavailable { .. }
        ));

        // Heal the store: the next probe succeeds, the breaker closes, and
        // service resumes exactly as before the incident.
        flaky.set_mode(0);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(client.get(tenant, 1).unwrap(), Some(vec![1, 2]));
        assert_eq!(server.stats().breaker_recoveries, 1);
        for k in 0..8 {
            assert_eq!(client.get(tenant, k).unwrap(), Some(vec![k as u32, (k * 2) as u32]));
        }
    }

    #[test]
    fn partial_failures_fail_only_requests_touching_failed_keys() {
        // Keys >= 100 degrade with a per-span failure mark; the rest serve.
        let config = ServerConfig {
            breaker_failure_threshold: 0,
            ..ServerConfig::coalescing(Duration::from_micros(300), 64)
        };
        let server = QueryServer::new(config);
        let flaky = Arc::new(FlakyStore::new(0..200, 100));
        let tenant = server
            .register_store("t", Arc::clone(&flaky) as Arc<dyn TupleStore>)
            .unwrap();
        flaky.set_mode(2);
        let mut client = server.client_with_depth(4);

        // Submit both before waiting so they can coalesce into one batch:
        // the merged batch succeeds overall, but only the request whose span
        // touches a degraded key fails.
        let clean = client.submit(tenant, &[1, 2, 7]).unwrap();
        let dirty = client.submit(tenant, &[3, 150]).unwrap();
        let mut out = LookupBuffer::new();
        client.wait_into(clean, &mut out).unwrap();
        assert_eq!(out.get(0), Some(&[1u32, 2][..]));
        assert_eq!(out.get(1), Some(&[2u32, 4][..]));
        assert_eq!(out.get(2), Some(&[7u32, 14][..]));
        match client.wait_into(dirty, &mut out).unwrap_err() {
            ServerError::PartialFailure { failed_keys, total_keys, cause } => {
                assert_eq!(failed_keys, 1);
                assert_eq!(total_keys, 2);
                assert!(cause.contains("partition unreadable"), "{cause}");
            }
            other => panic!("expected PartialFailure, got {other:?}"),
        }

        let stats = server.stats();
        assert_eq!(stats.partial_failures, 1);
        assert_eq!(stats.requests_failed, 1);
        // The clean request was counted served; the dirty one was not.
        assert_eq!(stats.keys_served, 3);

        // Inline mode surfaces the same typed error for single requests.
        let inline_server = QueryServer::new(ServerConfig {
            breaker_failure_threshold: 0,
            ..ServerConfig::inline()
        });
        let t2 = inline_server
            .register_store("t", Arc::clone(&flaky) as Arc<dyn TupleStore>)
            .unwrap();
        let mut inline_client = inline_server.client();
        assert_eq!(inline_client.get(t2, 5).unwrap(), Some(vec![5, 10]));
        assert!(matches!(
            inline_client.get(t2, 150).unwrap_err(),
            ServerError::PartialFailure { failed_keys: 1, total_keys: 1, .. }
        ));
    }

    #[test]
    fn stale_queued_requests_time_out_with_a_typed_error() {
        let config = ServerConfig {
            max_batch_keys: 4,
            max_delay: Duration::from_micros(100),
            request_deadline: Some(Duration::from_millis(10)),
            breaker_failure_threshold: 0,
            ..ServerConfig::default()
        };
        let server = QueryServer::new(config);
        let gate = Arc::new(GateStore::new(0..64));
        let tenant = server
            .register_store("t", Arc::clone(&gate) as Arc<dyn TupleStore>)
            .unwrap();
        let mut client = server.client_with_depth(8);

        // The first batch enters the store and blocks on the gate.
        let stuck = client.submit(tenant, &[0, 1, 2, 3]).unwrap();
        while gate.entered() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // These queue up behind the stuck batch and outwait their deadline.
        let stale_a = client.submit(tenant, &[4]).unwrap();
        let stale_b = client.submit(tenant, &[5]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        gate.open_gate();

        let mut out = LookupBuffer::new();
        client.wait_into(stuck, &mut out).unwrap();
        assert_eq!(out.get(0), Some(&[0u32, 0][..]));
        for ticket in [stale_a, stale_b] {
            match client.wait_into(ticket, &mut out).unwrap_err() {
                ServerError::Timeout { waited, deadline } => {
                    assert!(waited >= deadline, "{waited:?} < {deadline:?}");
                    assert_eq!(deadline, Duration::from_millis(10));
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
        }
        assert_eq!(server.stats().requests_timed_out, 2);
        // The server still serves promptly once the queue is healthy again.
        assert_eq!(client.get(tenant, 6).unwrap(), Some(vec![6, 12]));
    }

    #[test]
    fn config_normalization_orders_the_watermarks() {
        let config = ServerConfig {
            max_batch_keys: 0,
            max_request_keys: 0,
            queue_capacity_keys: 0,
            shed_high_watermark_keys: 10_000,
            shed_low_watermark_keys: 20_000,
            ..ServerConfig::default()
        };
        let server = QueryServer::new(config);
        let c = server.config();
        assert!(c.max_batch_keys >= 1);
        assert!(c.max_request_keys >= 1);
        assert!(c.queue_capacity_keys >= c.max_batch_keys);
        assert!(c.shed_high_watermark_keys <= c.queue_capacity_keys);
        assert!(c.shed_low_watermark_keys <= c.shed_high_watermark_keys);
    }
}
