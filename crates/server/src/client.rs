//! Client-side request slots and the submit/wait pipeline API.
//!
//! A [`ServerClient`] owns a small pool of pre-allocated request slots — a
//! key vector and a [`LookupBuffer`] each — so the steady-state path does no
//! per-request allocation: submitting copies keys into a reused vector,
//! demuxing copies spans into a reused buffer, and
//! [`wait_into`](ServerClient::wait_into) *swaps* the response buffer with
//! the caller's, ping-ponging the two allocations for the lifetime of the
//! client.
//!
//! The pipelined shape (`submit` returning a [`Ticket`], `wait_into`
//! harvesting it later) exists for open-loop load generation: a client can
//! keep several requests in flight so the dispatcher finds work already
//! queued instead of parking between every request.

use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use dm_storage::LookupBuffer;
use parking_lot::Mutex;

use crate::error::{Result, ServerError};
use crate::server::{self, Shared, TenantId};

/// Lifecycle of a request slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// Free for the owning client to submit into.
    Idle,
    /// Enqueued on the server; the dispatcher owns `keys` and `response`.
    Queued,
    /// Response is ready in `response`.
    Done,
    /// The request failed after admission; the error is for the waiter.
    Failed(ServerError),
}

/// Mutable half of a request slot, behind the slot mutex.
pub(crate) struct SlotInner {
    pub state: SlotState,
    /// Registry index of the tenant this request targets.
    pub tenant: usize,
    /// Keys for the in-flight request; reused across submissions.
    pub keys: Vec<u64>,
    /// Demuxed response for the in-flight request; reused across submissions.
    pub response: LookupBuffer,
    /// When the request passed admission control.
    pub enqueued_at: Instant,
    /// When the response became ready (one timestamp per batch, shared by
    /// every request in it).
    pub done_at: Instant,
    /// Enqueue-to-batch-formation delay, recorded by the dispatcher.
    pub queue_delay: Duration,
    /// True while a waiter is blocked on `cv`; the dispatcher only issues a
    /// wakeup when set, so pipelined clients that harvest already-`Done`
    /// tickets cost zero syscalls on the completion path.
    pub waiting: bool,
}

/// One in-flight request: shared between the submitting client and the
/// dispatcher. Completion is signalled through `cv` (only when `waiting`).
pub(crate) struct RequestSlot {
    pub inner: Mutex<SlotInner>,
    pub cv: Condvar,
}

impl RequestSlot {
    pub fn new() -> Self {
        let now = Instant::now();
        RequestSlot {
            inner: Mutex::new(SlotInner {
                state: SlotState::Idle,
                tenant: 0,
                keys: Vec::new(),
                response: LookupBuffer::new(),
                enqueued_at: now,
                done_at: now,
                queue_delay: Duration::ZERO,
                waiting: false,
            }),
            cv: Condvar::new(),
        }
    }
}

/// Handle to one in-flight request; redeem it with
/// [`ServerClient::wait_into`]. Tickets are not clonable and the borrow
/// checker cannot see through them, so the slot protocol is enforced at
/// runtime: a slot stays busy until its ticket is waited on.
#[must_use = "an unharvested ticket leaks its pipeline slot until wait_into is called"]
#[derive(Debug)]
pub struct Ticket {
    pub(crate) slot: usize,
}

/// Per-request timing returned by [`ServerClient::wait_into`], measured by
/// the server (enqueue → batch formation → response ready).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestReport {
    /// Time the request sat in the pending queue before its batch formed.
    pub queue_delay: Duration,
    /// Enqueue-to-response-ready wall time.
    pub wall: Duration,
    /// Server-side timestamp at which the response became ready. Open-loop
    /// generators subtract their *scheduled* arrival from this to measure
    /// coordinated-omission-corrected latency.
    pub completed_at: Instant,
}

/// A caller-thread handle onto a [`QueryServer`](crate::QueryServer).
///
/// Clients are cheap (a handful of slots) but not `Sync`: create one per
/// thread via [`QueryServer::client`](crate::QueryServer::client). The
/// blocking conveniences ([`lookup_batch_into`](Self::lookup_batch_into),
/// [`get`](Self::get)) submit and immediately wait; the pipelined pair
/// ([`submit`](Self::submit) / [`wait_into`](Self::wait_into)) keeps up to
/// `pipeline_depth` requests in flight.
pub struct ServerClient {
    shared: Arc<Shared>,
    slots: Vec<Arc<RequestSlot>>,
    busy: Vec<bool>,
    /// Spare buffer ping-ponged against slot responses by the owned-result
    /// conveniences.
    spare: LookupBuffer,
}

impl ServerClient {
    pub(crate) fn new(shared: Arc<Shared>, depth: usize) -> Self {
        let depth = depth.max(1);
        ServerClient {
            shared,
            slots: (0..depth).map(|_| Arc::new(RequestSlot::new())).collect(),
            busy: vec![false; depth],
            spare: LookupBuffer::new(),
        }
    }

    /// Number of requests this client can keep in flight at once.
    pub fn pipeline_depth(&self) -> usize {
        self.slots.len()
    }

    /// Number of tickets currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.busy.iter().filter(|b| **b).count()
    }

    /// Enqueues a lookup for `keys` against `tenant` without blocking on the
    /// result. Fails with [`ServerError::PipelineFull`] when every slot is in
    /// flight, and with the admission-control errors documented on
    /// [`ServerError`] when the server rejects the request (in which case the
    /// slot is *not* consumed).
    pub fn submit(&mut self, tenant: TenantId, keys: &[u64]) -> Result<Ticket> {
        let idx = self
            .busy
            .iter()
            .position(|b| !*b)
            .ok_or(ServerError::PipelineFull)?;
        server::submit_slot(&self.shared, &self.slots[idx], tenant, keys)?;
        self.busy[idx] = true;
        Ok(Ticket { slot: idx })
    }

    /// Returns true once `ticket`'s request has completed (successfully or
    /// not), i.e. [`wait_into`](Self::wait_into) will not block.
    pub fn is_done(&self, ticket: &Ticket) -> bool {
        let inner = self.slots[ticket.slot].inner.lock();
        matches!(inner.state, SlotState::Done | SlotState::Failed(_))
    }

    /// Blocks until `ticket`'s request completes, swaps the response into
    /// `out`, frees the slot, and returns the server-side timing. On failure
    /// the slot is freed and the typed error returned; `out` is untouched.
    pub fn wait_into(&mut self, ticket: Ticket, out: &mut LookupBuffer) -> Result<RequestReport> {
        let slot = Arc::clone(&self.slots[ticket.slot]);
        let mut inner = slot.inner.lock();
        loop {
            match &inner.state {
                SlotState::Done => break,
                SlotState::Failed(err) => {
                    let err = err.clone();
                    inner.state = SlotState::Idle;
                    drop(inner);
                    self.busy[ticket.slot] = false;
                    return Err(err);
                }
                SlotState::Queued => {
                    inner.waiting = true;
                    inner = slot.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                    inner.waiting = false;
                }
                SlotState::Idle => unreachable!("live ticket for an idle slot"),
            }
        }
        std::mem::swap(&mut inner.response, out);
        let report = RequestReport {
            queue_delay: inner.queue_delay,
            wall: inner.done_at.saturating_duration_since(inner.enqueued_at),
            completed_at: inner.done_at,
        };
        inner.state = SlotState::Idle;
        drop(inner);
        self.busy[ticket.slot] = false;
        Ok(report)
    }

    /// Blocking lookup: submit `keys` and wait for the demuxed response in
    /// `out`. Equivalent to `TupleStore::lookup_batch_into` on the tenant's
    /// store, routed through the coalescer.
    pub fn lookup_batch_into(
        &mut self,
        tenant: TenantId,
        keys: &[u64],
        out: &mut LookupBuffer,
    ) -> Result<RequestReport> {
        let ticket = self.submit(tenant, keys)?;
        self.wait_into(ticket, out)
    }

    /// Blocking lookup returning owned values, mirroring
    /// `TupleStore::lookup_batch`. Allocates for the returned vectors; use
    /// [`lookup_batch_into`](Self::lookup_batch_into) on hot paths.
    pub fn lookup_batch(
        &mut self,
        tenant: TenantId,
        keys: &[u64],
    ) -> Result<Vec<Option<Vec<u32>>>> {
        let mut spare = std::mem::take(&mut self.spare);
        let outcome = self.lookup_batch_into(tenant, keys, &mut spare);
        let result = outcome.map(|_| {
            (0..keys.len())
                .map(|i| spare.get(i).map(|vals| vals.to_vec()))
                .collect()
        });
        self.spare = spare;
        result
    }

    /// Blocking single-key lookup, mirroring `TupleStore::get`.
    pub fn get(&mut self, tenant: TenantId, key: u64) -> Result<Option<Vec<u32>>> {
        let mut spare = std::mem::take(&mut self.spare);
        let outcome = self.lookup_batch_into(tenant, &[key], &mut spare);
        let result = outcome.map(|_| spare.get(0).map(|vals| vals.to_vec()));
        self.spare = spare;
        result
    }
}
