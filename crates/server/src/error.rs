//! Typed error surface for the query server.
//!
//! Every rejection a caller can observe is a distinct variant so load
//! generators and tests can branch on the cause (`Overloaded` is retryable
//! back-pressure, `ShuttingDown` is terminal, `UnknownTenant` is a caller
//! bug) without string matching.

use std::fmt;
use std::time::Duration;

/// Errors returned by [`QueryServer`](crate::QueryServer) and
/// [`ServerClient`](crate::ServerClient) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Admission control rejected the request: the pending-key queue is at or
    /// above its shedding watermark. The request was *not* enqueued; the
    /// caller may retry after backing off.
    Overloaded {
        /// Keys queued at the moment of rejection.
        queued_keys: usize,
        /// Hard capacity of the pending-key queue.
        capacity: usize,
    },
    /// The server is shutting down (or already shut down). Queued waiters are
    /// failed with this variant rather than left hanging.
    ShuttingDown,
    /// No tenant is registered under the given name or id.
    UnknownTenant(String),
    /// A tenant with this name is already registered.
    DuplicateTenant(String),
    /// Lazily opening a tenant's snapshot failed (bad path, corrupt file).
    TenantOpen(String),
    /// The underlying store returned an error while serving a merged batch.
    /// Every request coalesced into that batch observes the same error.
    Store(String),
    /// The client has no free request slot: every slot in its pipeline is
    /// in flight. Harvest a ticket with
    /// [`wait_into`](crate::ServerClient::wait_into) and resubmit.
    PipelineFull,
    /// A single request exceeded
    /// [`max_request_keys`](crate::ServerConfig::max_request_keys); split it.
    RequestTooLarge {
        /// Keys in the rejected request.
        keys: usize,
        /// Per-request key limit configured on the server.
        max_request_keys: usize,
    },
    /// The request sat in the queue past
    /// [`request_deadline`](crate::ServerConfig::request_deadline) and was
    /// failed at batch formation instead of being served stale. The caller's
    /// own deadline has likely passed too; retrying immediately is only
    /// useful if the queue has drained.
    Timeout {
        /// How long the request actually waited before the server gave up.
        waited: Duration,
        /// The configured per-request deadline it exceeded.
        deadline: Duration,
    },
    /// The tenant's circuit breaker is open: enough consecutive serving
    /// failures accumulated that new requests are fast-failed at admission
    /// instead of burning queue capacity on a tenant that cannot answer.
    /// Retry after `retry_after`; the first request past the cooldown is
    /// admitted as a half-open probe and, if it succeeds, closes the breaker.
    TenantUnavailable {
        /// Registration name of the unavailable tenant.
        tenant: String,
        /// Cooldown remaining before the breaker admits a probe.
        retry_after: Duration,
    },
    /// The merged batch succeeded overall but the spans belonging to *this*
    /// request include keys whose aux partition could not be read. Keys
    /// outside the faulted partitions were served byte-identically to the
    /// healthy path — only requests touching the failed keys see this error
    /// (the hybrid contract forbids answering them from the model alone).
    PartialFailure {
        /// Keys of this request that hit a failed partition probe.
        failed_keys: usize,
        /// Total keys in this request.
        total_keys: usize,
        /// The first underlying storage error, for diagnostics.
        cause: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { queued_keys, capacity } => write!(
                f,
                "server overloaded: {queued_keys} keys queued (capacity {capacity})"
            ),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::UnknownTenant(name) => write!(f, "unknown tenant: {name}"),
            ServerError::DuplicateTenant(name) => {
                write!(f, "tenant already registered: {name}")
            }
            ServerError::TenantOpen(msg) => write!(f, "tenant snapshot open failed: {msg}"),
            ServerError::Store(msg) => write!(f, "store error: {msg}"),
            ServerError::PipelineFull => {
                write!(f, "client pipeline full: harvest a ticket before submitting")
            }
            ServerError::RequestTooLarge { keys, max_request_keys } => write!(
                f,
                "request of {keys} keys exceeds per-request limit {max_request_keys}"
            ),
            ServerError::Timeout { waited, deadline } => write!(
                f,
                "request timed out: waited {waited:?} against a {deadline:?} deadline"
            ),
            ServerError::TenantUnavailable { tenant, retry_after } => write!(
                f,
                "tenant {tenant} unavailable: circuit breaker open, retry after {retry_after:?}"
            ),
            ServerError::PartialFailure { failed_keys, total_keys, cause } => write!(
                f,
                "partial failure: {failed_keys} of {total_keys} keys hit unreadable partitions ({cause})"
            ),
        }
    }
}

impl std::error::Error for ServerError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_cause() {
        let cases: Vec<(ServerError, &str)> = vec![
            (
                ServerError::Overloaded { queued_keys: 4096, capacity: 4096 },
                "server overloaded: 4096 keys queued (capacity 4096)",
            ),
            (ServerError::ShuttingDown, "server is shutting down"),
            (
                ServerError::UnknownTenant("orders".into()),
                "unknown tenant: orders",
            ),
            (
                ServerError::DuplicateTenant("orders".into()),
                "tenant already registered: orders",
            ),
            (
                ServerError::RequestTooLarge { keys: 2048, max_request_keys: 1024 },
                "request of 2048 keys exceeds per-request limit 1024",
            ),
            (ServerError::PipelineFull, "client pipeline full: harvest a ticket before submitting"),
            (
                ServerError::Timeout {
                    waited: Duration::from_millis(7),
                    deadline: Duration::from_millis(5),
                },
                "request timed out: waited 7ms against a 5ms deadline",
            ),
            (
                ServerError::TenantUnavailable {
                    tenant: "orders".into(),
                    retry_after: Duration::from_millis(250),
                },
                "tenant orders unavailable: circuit breaker open, retry after 250ms",
            ),
            (
                ServerError::PartialFailure {
                    failed_keys: 2,
                    total_keys: 8,
                    cause: "io: injected".into(),
                },
                "partial failure: 2 of 8 keys hit unreadable partitions (io: injected)",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }
}
