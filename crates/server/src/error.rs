//! Typed error surface for the query server.
//!
//! Every rejection a caller can observe is a distinct variant so load
//! generators and tests can branch on the cause (`Overloaded` is retryable
//! back-pressure, `ShuttingDown` is terminal, `UnknownTenant` is a caller
//! bug) without string matching.

use std::fmt;

/// Errors returned by [`QueryServer`](crate::QueryServer) and
/// [`ServerClient`](crate::ServerClient) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// Admission control rejected the request: the pending-key queue is at or
    /// above its shedding watermark. The request was *not* enqueued; the
    /// caller may retry after backing off.
    Overloaded {
        /// Keys queued at the moment of rejection.
        queued_keys: usize,
        /// Hard capacity of the pending-key queue.
        capacity: usize,
    },
    /// The server is shutting down (or already shut down). Queued waiters are
    /// failed with this variant rather than left hanging.
    ShuttingDown,
    /// No tenant is registered under the given name or id.
    UnknownTenant(String),
    /// A tenant with this name is already registered.
    DuplicateTenant(String),
    /// Lazily opening a tenant's snapshot failed (bad path, corrupt file).
    TenantOpen(String),
    /// The underlying store returned an error while serving a merged batch.
    /// Every request coalesced into that batch observes the same error.
    Store(String),
    /// The client has no free request slot: every slot in its pipeline is
    /// in flight. Harvest a ticket with
    /// [`wait_into`](crate::ServerClient::wait_into) and resubmit.
    PipelineFull,
    /// A single request exceeded
    /// [`max_request_keys`](crate::ServerConfig::max_request_keys); split it.
    RequestTooLarge {
        /// Keys in the rejected request.
        keys: usize,
        /// Per-request key limit configured on the server.
        max_request_keys: usize,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded { queued_keys, capacity } => write!(
                f,
                "server overloaded: {queued_keys} keys queued (capacity {capacity})"
            ),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::UnknownTenant(name) => write!(f, "unknown tenant: {name}"),
            ServerError::DuplicateTenant(name) => {
                write!(f, "tenant already registered: {name}")
            }
            ServerError::TenantOpen(msg) => write!(f, "tenant snapshot open failed: {msg}"),
            ServerError::Store(msg) => write!(f, "store error: {msg}"),
            ServerError::PipelineFull => {
                write!(f, "client pipeline full: harvest a ticket before submitting")
            }
            ServerError::RequestTooLarge { keys, max_request_keys } => write!(
                f,
                "request of {keys} keys exceeds per-request limit {max_request_keys}"
            ),
        }
    }
}

impl std::error::Error for ServerError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_cause() {
        let cases: Vec<(ServerError, &str)> = vec![
            (
                ServerError::Overloaded { queued_keys: 4096, capacity: 4096 },
                "server overloaded: 4096 keys queued (capacity 4096)",
            ),
            (ServerError::ShuttingDown, "server is shutting down"),
            (
                ServerError::UnknownTenant("orders".into()),
                "unknown tenant: orders",
            ),
            (
                ServerError::DuplicateTenant("orders".into()),
                "tenant already registered: orders",
            ),
            (
                ServerError::RequestTooLarge { keys: 2048, max_request_keys: 1024 },
                "request of 2048 keys exceeds per-request limit 1024",
            ),
            (ServerError::PipelineFull, "client pipeline full: harvest a ticket before submitting"),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }
}
