//! Lock-free observability counters for the query server.
//!
//! The server records everything in relaxed [`AtomicU64`] cells so the hot
//! path never takes a lock to bump a counter; [`ServerStats`] is a consistent
//! *enough* snapshot for dashboards and benches (individual cells are exact,
//! cross-cell ratios can be one request stale).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal mutable counter cells. One instance lives in the server's shared
/// state; [`snapshot`](StatsCells::snapshot) turns it into a [`ServerStats`].
#[derive(Default)]
pub(crate) struct StatsCells {
    pub requests_enqueued: AtomicU64,
    pub requests_completed: AtomicU64,
    pub requests_failed: AtomicU64,
    pub requests_shed: AtomicU64,
    pub keys_enqueued: AtomicU64,
    pub keys_served: AtomicU64,
    pub batches_formed: AtomicU64,
    pub batched_requests: AtomicU64,
    pub max_coalesce_width: AtomicU64,
    pub queue_delay_nanos: AtomicU64,
    pub request_wall_nanos: AtomicU64,
    pub exec_nanos: AtomicU64,
    pub inline_requests: AtomicU64,
    pub tenants_opened: AtomicU64,
    pub tenant_open_nanos: AtomicU64,
}

impl StatsCells {
    pub fn add(cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one merged batch that completed successfully: `width` requests
    /// coalesced, `keys` total keys, plus the summed queue delay and
    /// per-request wall time and the store-execution time.
    pub fn record_batch(
        &self,
        width: u64,
        keys: u64,
        queue_delay_nanos: u64,
        wall_nanos: u64,
        exec_nanos: u64,
    ) {
        Self::add(&self.batches_formed, 1);
        Self::add(&self.batched_requests, width);
        Self::add(&self.requests_completed, width);
        Self::add(&self.keys_served, keys);
        Self::add(&self.queue_delay_nanos, queue_delay_nanos);
        Self::add(&self.request_wall_nanos, wall_nanos);
        Self::add(&self.exec_nanos, exec_nanos);
        self.max_coalesce_width.fetch_max(width, Ordering::Relaxed);
    }

    /// Records one request served inline on the caller thread (no dispatcher).
    pub fn record_inline(&self, keys: u64, wall_nanos: u64, exec_nanos: u64) {
        Self::add(&self.inline_requests, 1);
        Self::add(&self.requests_completed, 1);
        Self::add(&self.keys_served, keys);
        Self::add(&self.request_wall_nanos, wall_nanos);
        Self::add(&self.exec_nanos, exec_nanos);
    }

    pub fn record_tenant_open(&self, elapsed: Duration) {
        Self::add(&self.tenants_opened, 1);
        Self::add(&self.tenant_open_nanos, elapsed.as_nanos() as u64);
    }

    pub fn snapshot(&self) -> ServerStats {
        let load = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        ServerStats {
            requests_enqueued: load(&self.requests_enqueued),
            requests_completed: load(&self.requests_completed),
            requests_failed: load(&self.requests_failed),
            requests_shed: load(&self.requests_shed),
            keys_enqueued: load(&self.keys_enqueued),
            keys_served: load(&self.keys_served),
            batches_formed: load(&self.batches_formed),
            batched_requests: load(&self.batched_requests),
            max_coalesce_width: load(&self.max_coalesce_width),
            queue_delay_nanos: load(&self.queue_delay_nanos),
            request_wall_nanos: load(&self.request_wall_nanos),
            exec_nanos: load(&self.exec_nanos),
            inline_requests: load(&self.inline_requests),
            tenants_opened: load(&self.tenants_opened),
            tenant_open_nanos: load(&self.tenant_open_nanos),
        }
    }
}

/// Point-in-time counter snapshot returned by
/// [`QueryServer::stats`](crate::QueryServer::stats).
///
/// All durations are summed nanoseconds over the events counted so far;
/// divide by the matching count (the `mean_*` helpers do) for averages. This
/// mirrors the `LatencyBreakdown` discipline in `dm_core`: cheap relaxed
/// counters on the hot path, derived rates at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted past admission control.
    pub requests_enqueued: u64,
    /// Requests answered successfully (batched + inline).
    pub requests_completed: u64,
    /// Requests failed after admission (store error, shutdown drain).
    pub requests_failed: u64,
    /// Requests rejected by admission control with [`Overloaded`](crate::ServerError::Overloaded).
    pub requests_shed: u64,
    /// Keys across all admitted requests.
    pub keys_enqueued: u64,
    /// Keys across all successfully answered requests.
    pub keys_served: u64,
    /// Merged batches executed by the dispatcher.
    pub batches_formed: u64,
    /// Requests that travelled inside a merged batch (excludes inline).
    pub batched_requests: u64,
    /// Largest number of requests coalesced into a single batch.
    pub max_coalesce_width: u64,
    /// Summed time from enqueue to batch formation, over batched requests.
    pub queue_delay_nanos: u64,
    /// Summed time from enqueue to response ready, over completed requests.
    pub request_wall_nanos: u64,
    /// Summed time spent inside `TupleStore::lookup_batch_into`.
    pub exec_nanos: u64,
    /// Requests served synchronously on the caller thread (inline mode).
    pub inline_requests: u64,
    /// Tenant snapshots opened lazily on first request.
    pub tenants_opened: u64,
    /// Summed wall time of those lazy opens.
    pub tenant_open_nanos: u64,
}

impl ServerStats {
    /// Mean number of requests merged per dispatcher batch, or 0.0 before the
    /// first batch. Inline requests are excluded — they never coalesce.
    pub fn mean_coalesce_width(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches_formed as f64
        }
    }

    /// Mean enqueue-to-batch-formation delay over batched requests.
    pub fn mean_queue_delay(&self) -> Duration {
        self.queue_delay_nanos
            .checked_div(self.batched_requests)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }

    /// Mean enqueue-to-response wall time over completed requests.
    pub fn mean_request_wall(&self) -> Duration {
        self.request_wall_nanos
            .checked_div(self.requests_completed)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_batches_and_derived_means() {
        let cells = StatsCells::default();
        cells.record_batch(4, 400, 4_000, 8_000, 1_000);
        cells.record_batch(2, 200, 1_000, 1_600, 500);
        cells.record_inline(7, 900, 300);

        let s = cells.snapshot();
        assert_eq!(s.batches_formed, 2);
        assert_eq!(s.batched_requests, 6);
        assert_eq!(s.requests_completed, 7);
        assert_eq!(s.keys_served, 607);
        assert_eq!(s.max_coalesce_width, 4);
        assert_eq!(s.inline_requests, 1);
        assert!((s.mean_coalesce_width() - 3.0).abs() < 1e-9);
        assert_eq!(s.mean_queue_delay(), Duration::from_nanos(5_000 / 6));
        assert_eq!(s.mean_request_wall(), Duration::from_nanos(10_500 / 7));
    }

    #[test]
    fn empty_stats_report_zero_means_without_dividing_by_zero() {
        let s = ServerStats::default();
        assert_eq!(s.mean_coalesce_width(), 0.0);
        assert_eq!(s.mean_queue_delay(), Duration::ZERO);
        assert_eq!(s.mean_request_wall(), Duration::ZERO);
    }
}
