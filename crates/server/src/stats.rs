//! Lock-free observability counters and tail histograms for the query server.
//!
//! The server records everything in relaxed [`AtomicU64`] cells and
//! [`Histogram`]s so the hot path never takes a lock to bump a counter;
//! [`ServerStats`] is a consistent *enough* snapshot for dashboards and
//! benches (individual cells are exact, cross-cell ratios can be one request
//! stale).  Latency distributions (queue delay, coalesce wait, request wall)
//! live in log2-bucketed histograms, so the snapshot carries percentiles —
//! the summed-nanos fields are kept only as derived means for callers that
//! predate the histograms.

use dm_obs::{Histogram, HistogramSnapshot, WindowedHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal mutable counter cells. One instance lives in the server's shared
/// state; [`snapshot`](StatsCells::snapshot) turns it into a [`ServerStats`].
#[derive(Default)]
pub(crate) struct StatsCells {
    pub requests_enqueued: AtomicU64,
    pub requests_completed: AtomicU64,
    pub requests_failed: AtomicU64,
    pub requests_shed: AtomicU64,
    pub requests_timed_out: AtomicU64,
    pub partial_failures: AtomicU64,
    pub breaker_trips: AtomicU64,
    pub breaker_rejections: AtomicU64,
    pub breaker_recoveries: AtomicU64,
    pub keys_enqueued: AtomicU64,
    pub keys_served: AtomicU64,
    pub batches_formed: AtomicU64,
    pub batched_requests: AtomicU64,
    pub max_coalesce_width: AtomicU64,
    pub exec_nanos: AtomicU64,
    pub inline_requests: AtomicU64,
    pub tenants_opened: AtomicU64,
    pub tenant_open_nanos: AtomicU64,
    /// Enqueue → batch-formation delay, per batched request.
    pub queue_delay: Histogram,
    /// Newest-batch-member arrival → execution start, per batched request
    /// (every member of a batch records the same value).
    pub coalesce_wait: Histogram,
    /// Enqueue → response-ready wall time, per completed request (batched and
    /// inline).
    pub request_wall: Histogram,
    /// Windowed (last ~60 s) view of `request_wall` — the `recent_*`
    /// percentile fields of [`ServerStats`] and the advisor's SLO input.
    /// Recording is `DM_OBS`-gated: with observability off the recent fields
    /// read zero and the since-boot histograms remain authoritative.
    pub recent_request_wall: WindowedHistogram,
    /// Windowed view of `queue_delay`.
    pub recent_queue_delay: WindowedHistogram,
}

impl StatsCells {
    pub fn add(cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one merged batch the store executed: `width` requests
    /// coalesced, of which `completed` were fully answered (`width -
    /// completed` hit failed spans and fail with
    /// [`PartialFailure`](crate::ServerError::PartialFailure)), `keys` keys
    /// across the completed requests, and the store-execution time.  Called
    /// once per batch, *before* the per-request
    /// [`record_request`](Self::record_request) calls, so a waiter woken by
    /// the demux loop always sees its own batch counted.
    pub fn record_batch(&self, width: u64, completed: u64, keys: u64, exec_nanos: u64) {
        Self::add(&self.batches_formed, 1);
        Self::add(&self.batched_requests, width);
        Self::add(&self.requests_completed, completed);
        Self::add(&self.keys_served, keys);
        Self::add(&self.exec_nanos, exec_nanos);
        self.max_coalesce_width.fetch_max(width, Ordering::Relaxed);
    }

    /// Records one batched request's latency decomposition into the tail
    /// histograms.  Called during demux, before the request's waiter is woken.
    pub fn record_request(
        &self,
        queue_delay_nanos: u64,
        coalesce_wait_nanos: u64,
        wall_nanos: u64,
    ) {
        self.queue_delay.record_nanos(queue_delay_nanos);
        self.coalesce_wait.record_nanos(coalesce_wait_nanos);
        self.request_wall.record_nanos(wall_nanos);
        self.recent_queue_delay.record_nanos(queue_delay_nanos);
        self.recent_request_wall.record_nanos(wall_nanos);
    }

    /// Records one request served inline on the caller thread (no dispatcher,
    /// no queue — only the wall histogram is fed).
    pub fn record_inline(&self, keys: u64, wall_nanos: u64, exec_nanos: u64) {
        Self::add(&self.inline_requests, 1);
        Self::add(&self.requests_completed, 1);
        Self::add(&self.keys_served, keys);
        Self::add(&self.exec_nanos, exec_nanos);
        self.request_wall.record_nanos(wall_nanos);
        self.recent_request_wall.record_nanos(wall_nanos);
    }

    pub fn record_tenant_open(&self, elapsed: Duration) {
        Self::add(&self.tenants_opened, 1);
        Self::add(&self.tenant_open_nanos, elapsed.as_nanos() as u64);
    }

    pub fn snapshot(&self) -> ServerStats {
        let load = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        let queue_delay = self.queue_delay.snapshot();
        let coalesce_wait = self.coalesce_wait.snapshot();
        let request_wall = self.request_wall.snapshot();
        let recent_wall = self.recent_request_wall.snapshot();
        let recent_queue = self.recent_queue_delay.snapshot();
        ServerStats {
            requests_enqueued: load(&self.requests_enqueued),
            requests_completed: load(&self.requests_completed),
            requests_failed: load(&self.requests_failed),
            requests_shed: load(&self.requests_shed),
            requests_timed_out: load(&self.requests_timed_out),
            partial_failures: load(&self.partial_failures),
            breaker_trips: load(&self.breaker_trips),
            breaker_rejections: load(&self.breaker_rejections),
            breaker_recoveries: load(&self.breaker_recoveries),
            keys_enqueued: load(&self.keys_enqueued),
            keys_served: load(&self.keys_served),
            batches_formed: load(&self.batches_formed),
            batched_requests: load(&self.batched_requests),
            max_coalesce_width: load(&self.max_coalesce_width),
            queue_delay_nanos: queue_delay.sum(),
            coalesce_wait_nanos: coalesce_wait.sum(),
            request_wall_nanos: request_wall.sum(),
            exec_nanos: load(&self.exec_nanos),
            inline_requests: load(&self.inline_requests),
            tenants_opened: load(&self.tenants_opened),
            tenant_open_nanos: load(&self.tenant_open_nanos),
            queue_delay_p50: Duration::from_nanos(queue_delay.p50()),
            queue_delay_p95: Duration::from_nanos(queue_delay.p95()),
            queue_delay_p99: Duration::from_nanos(queue_delay.p99()),
            queue_delay_max: Duration::from_nanos(queue_delay.max()),
            request_wall_p50: Duration::from_nanos(request_wall.p50()),
            request_wall_p95: Duration::from_nanos(request_wall.p95()),
            request_wall_p99: Duration::from_nanos(request_wall.p99()),
            request_wall_max: Duration::from_nanos(request_wall.max()),
            recent_window: self.recent_request_wall.span(),
            recent_requests: recent_wall.count(),
            recent_request_wall_p50: Duration::from_nanos(recent_wall.p50()),
            recent_request_wall_p95: Duration::from_nanos(recent_wall.p95()),
            recent_request_wall_p99: Duration::from_nanos(recent_wall.p99()),
            recent_queue_delay_p99: Duration::from_nanos(recent_queue.p99()),
        }
    }
}

/// Per-tenant tail-attribution histograms.  One instance lives inside each
/// registered tenant; the batch-share columns split a merged batch's stage
/// time across its requests proportionally to key count, so a tenant can see
/// where *its* requests' latency goes even when batches interleave work.
#[derive(Default)]
pub(crate) struct TenantObs {
    pub queue_delay: Histogram,
    pub coalesce_wait: Histogram,
    pub request_wall: Histogram,
    /// This request's key-weighted share of the batch's store-execution time.
    pub exec_share: Histogram,
    /// Key-weighted share of the batch's model-inference time (0 for stores
    /// that publish no batch trace).
    pub inference_share: Histogram,
    /// Key-weighted share of the batch's auxiliary-probe time (0 for stores
    /// that publish no batch trace).
    pub probe_share: Histogram,
    /// Time copying this request's rows out of the merged result buffer.
    pub result_copy: Histogram,
    /// Windowed (last ~60 s) view of `request_wall`, `DM_OBS`-gated — feeds
    /// [`TenantTail::recent_request_wall`] and the per-tenant SLO input.
    pub recent_request_wall: WindowedHistogram,
}

/// One request's latency decomposition, handed to [`TenantObs::record`] by
/// the demux loop.  All values are nanoseconds; the `*_share` fields are the
/// request's key-weighted slice of its merged batch's stage time.
pub(crate) struct RequestSample {
    pub queue_delay_nanos: u64,
    pub coalesce_wait_nanos: u64,
    pub wall_nanos: u64,
    pub exec_share_nanos: u64,
    pub inference_share_nanos: u64,
    pub probe_share_nanos: u64,
    pub result_copy_nanos: u64,
}

impl TenantObs {
    /// Records one batched request's sample into every histogram.
    pub fn record(&self, sample: &RequestSample) {
        self.queue_delay.record_nanos(sample.queue_delay_nanos);
        self.coalesce_wait.record_nanos(sample.coalesce_wait_nanos);
        self.request_wall.record_nanos(sample.wall_nanos);
        self.recent_request_wall.record_nanos(sample.wall_nanos);
        self.exec_share.record_nanos(sample.exec_share_nanos);
        self.inference_share.record_nanos(sample.inference_share_nanos);
        self.probe_share.record_nanos(sample.probe_share_nanos);
        self.result_copy.record_nanos(sample.result_copy_nanos);
    }

    /// Records one inline request: no queue, no coalescing, no demux copy —
    /// only the wall/exec/stage-share histograms are fed.
    pub fn record_inline(
        &self,
        wall_nanos: u64,
        exec_nanos: u64,
        inference_nanos: u64,
        probe_nanos: u64,
    ) {
        self.request_wall.record_nanos(wall_nanos);
        self.recent_request_wall.record_nanos(wall_nanos);
        self.exec_share.record_nanos(exec_nanos);
        self.inference_share.record_nanos(inference_nanos);
        self.probe_share.record_nanos(probe_nanos);
    }

    pub fn tail(&self) -> TenantTail {
        TenantTail {
            queue_delay: self.queue_delay.snapshot(),
            coalesce_wait: self.coalesce_wait.snapshot(),
            request_wall: self.request_wall.snapshot(),
            exec_share: self.exec_share.snapshot(),
            inference_share: self.inference_share.snapshot(),
            probe_share: self.probe_share.snapshot(),
            result_copy: self.result_copy.snapshot(),
            recent_request_wall: self.recent_request_wall.snapshot(),
        }
    }
}

/// Per-tenant latency-attribution snapshot returned by
/// [`QueryServer::tenant_tail`](crate::QueryServer::tenant_tail).  Each field
/// is a full histogram snapshot (count / sum / percentiles / max) in
/// nanoseconds, one sample per request routed to the tenant.
#[derive(Debug, Clone, Default)]
pub struct TenantTail {
    /// Enqueue → batch formation, per batched request.
    pub queue_delay: HistogramSnapshot,
    /// Newest batch member's arrival → execution start (the coalescing hold).
    pub coalesce_wait: HistogramSnapshot,
    /// Enqueue → response ready, per completed request.
    pub request_wall: HistogramSnapshot,
    /// Key-weighted share of the merged batch's store execution time.
    pub exec_share: HistogramSnapshot,
    /// Key-weighted share of the batch's model inference time.
    pub inference_share: HistogramSnapshot,
    /// Key-weighted share of the batch's auxiliary probe time.
    pub probe_share: HistogramSnapshot,
    /// Per-request result-copy (demux) time.
    pub result_copy: HistogramSnapshot,
    /// Windowed (last ~60 s) request wall time — empty when the tenant has
    /// been idle for a full window or `DM_OBS=off`.
    pub recent_request_wall: HistogramSnapshot,
}

/// Point-in-time counter snapshot returned by
/// [`QueryServer::stats`](crate::QueryServer::stats).
///
/// Counts are exact relaxed-counter reads.  Latency fields come in two
/// flavors: percentile fields (`*_p50` … `*_max`) read from log2-bucketed
/// histograms (≤ 12.5% relative error, see `dm_obs`), and summed-nanos fields
/// kept for mean computation.  This mirrors the `LatencyBreakdown` discipline
/// in `dm_core`: cheap relaxed recording on the hot path, derived rates at
/// read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests admitted past admission control.
    pub requests_enqueued: u64,
    /// Requests answered successfully (batched + inline).
    pub requests_completed: u64,
    /// Requests failed after admission (store error, shutdown drain).
    pub requests_failed: u64,
    /// Requests rejected by admission control with [`Overloaded`](crate::ServerError::Overloaded).
    pub requests_shed: u64,
    /// Requests failed at batch formation with [`Timeout`](crate::ServerError::Timeout)
    /// because they outwaited [`request_deadline`](crate::ServerConfig::request_deadline).
    /// Also counted in `requests_failed`.
    pub requests_timed_out: u64,
    /// Requests failed with [`PartialFailure`](crate::ServerError::PartialFailure):
    /// their batch succeeded but their own spans touched unreadable
    /// partitions. Also counted in `requests_failed`.
    pub partial_failures: u64,
    /// Times a tenant's circuit breaker transitioned closed→open (or a
    /// half-open probe failed and re-opened it).
    pub breaker_trips: u64,
    /// Requests fast-failed at admission with
    /// [`TenantUnavailable`](crate::ServerError::TenantUnavailable) while a
    /// breaker was open.
    pub breaker_rejections: u64,
    /// Times an open breaker closed again after a successful half-open probe.
    pub breaker_recoveries: u64,
    /// Keys across all admitted requests.
    pub keys_enqueued: u64,
    /// Keys across all successfully answered requests.
    pub keys_served: u64,
    /// Merged batches executed by the dispatcher.
    pub batches_formed: u64,
    /// Requests that travelled inside a merged batch (excludes inline).
    pub batched_requests: u64,
    /// Largest number of requests coalesced into a single batch.
    pub max_coalesce_width: u64,
    /// Summed time from enqueue to batch formation, over batched requests.
    ///
    /// Derived from the queue-delay histogram's sum; prefer the
    /// `queue_delay_p*` percentile fields — a mean hides the tail.
    pub queue_delay_nanos: u64,
    /// Summed coalescing hold (newest batch member's arrival → execution
    /// start) over batched requests.
    pub coalesce_wait_nanos: u64,
    /// Summed time from enqueue to response ready, over completed requests.
    ///
    /// Derived from the request-wall histogram's sum; prefer the
    /// `request_wall_p*` percentile fields — a mean hides the tail.
    pub request_wall_nanos: u64,
    /// Summed time spent inside `TupleStore::lookup_batch_into`.
    pub exec_nanos: u64,
    /// Requests served synchronously on the caller thread (inline mode).
    pub inline_requests: u64,
    /// Tenant snapshots opened lazily on first request.
    pub tenants_opened: u64,
    /// Summed wall time of those lazy opens.
    pub tenant_open_nanos: u64,
    /// Median enqueue-to-batch-formation delay over batched requests.
    pub queue_delay_p50: Duration,
    /// 95th-percentile queue delay.
    pub queue_delay_p95: Duration,
    /// 99th-percentile queue delay.
    pub queue_delay_p99: Duration,
    /// Largest observed queue delay.
    pub queue_delay_max: Duration,
    /// Median enqueue-to-response wall time over completed requests.
    pub request_wall_p50: Duration,
    /// 95th-percentile request wall time.
    pub request_wall_p95: Duration,
    /// 99th-percentile request wall time.
    pub request_wall_p99: Duration,
    /// Largest observed request wall time.
    pub request_wall_max: Duration,
    /// Span of the sliding window the `recent_*` fields cover (~60 s).
    pub recent_window: Duration,
    /// Completed requests inside the window.  Zero when idle for a full
    /// window *or* when `DM_OBS=off` (windowed recording is gated).
    pub recent_requests: u64,
    /// Median request wall time over the window — "now", not since boot.
    pub recent_request_wall_p50: Duration,
    /// 95th-percentile request wall time over the window.
    pub recent_request_wall_p95: Duration,
    /// 99th-percentile request wall time over the window (the SLO burn-rate
    /// numerator).
    pub recent_request_wall_p99: Duration,
    /// 99th-percentile queue delay over the window.
    pub recent_queue_delay_p99: Duration,
}

impl ServerStats {
    /// Mean number of requests merged per dispatcher batch, or 0.0 before the
    /// first batch. Inline requests are excluded — they never coalesce.
    pub fn mean_coalesce_width(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches_formed as f64
        }
    }

    /// Mean enqueue-to-batch-formation delay over batched requests.  A mean
    /// hides the tail: prefer `queue_delay_p95` / `queue_delay_p99`.
    pub fn mean_queue_delay(&self) -> Duration {
        self.queue_delay_nanos
            .checked_div(self.batched_requests)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }

    /// Mean enqueue-to-response wall time over completed requests.  A mean
    /// hides the tail: prefer `request_wall_p95` / `request_wall_p99`.
    pub fn mean_request_wall(&self) -> Duration {
        self.request_wall_nanos
            .checked_div(self.requests_completed)
            .map(Duration::from_nanos)
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_batches_and_derived_means() {
        let cells = StatsCells::default();
        cells.record_batch(4, 4, 400, 1_000);
        for _ in 0..4 {
            cells.record_request(1_000, 200, 2_000);
        }
        cells.record_batch(2, 2, 200, 500);
        cells.record_request(500, 100, 800);
        cells.record_request(500, 100, 800);
        cells.record_inline(7, 900, 300);

        let s = cells.snapshot();
        assert_eq!(s.batches_formed, 2);
        assert_eq!(s.batched_requests, 6);
        assert_eq!(s.requests_completed, 7);
        assert_eq!(s.keys_served, 607);
        assert_eq!(s.max_coalesce_width, 4);
        assert_eq!(s.inline_requests, 1);
        assert_eq!(s.queue_delay_nanos, 5_000);
        assert_eq!(s.coalesce_wait_nanos, 1_000);
        assert_eq!(s.request_wall_nanos, 10_500);
        assert!((s.mean_coalesce_width() - 3.0).abs() < 1e-9);
        assert_eq!(s.mean_queue_delay(), Duration::from_nanos(5_000 / 6));
        assert_eq!(s.mean_request_wall(), Duration::from_nanos(10_500 / 7));
    }

    #[test]
    fn percentile_fields_come_from_the_histograms() {
        let cells = StatsCells::default();
        // 50 fast requests and one slow straggler (~2% of the population, so
        // nearest-rank p99 lands on it): the mean averages the straggler
        // away, the p99/max must not.
        for _ in 0..50 {
            cells.record_request(1_000, 0, 10_000);
        }
        cells.record_request(1_000, 0, 40_000_000);
        let s = cells.snapshot();
        assert!(s.request_wall_p50 < Duration::from_micros(12));
        assert!(s.request_wall_p99 >= Duration::from_millis(40));
        assert_eq!(s.request_wall_max, Duration::from_millis(40));
        let mean = s.mean_request_wall();
        assert!(
            s.request_wall_p99 > mean * 10,
            "tail must dominate the mean: p99={:?} mean={mean:?}",
            s.request_wall_p99
        );
    }

    #[test]
    fn tenant_obs_tail_snapshots_every_histogram() {
        let obs = TenantObs::default();
        obs.queue_delay.record_nanos(5);
        obs.coalesce_wait.record_nanos(6);
        obs.request_wall.record_nanos(7);
        obs.exec_share.record_nanos(8);
        obs.inference_share.record_nanos(9);
        obs.probe_share.record_nanos(10);
        obs.result_copy.record_nanos(11);
        let tail = obs.tail();
        assert_eq!(tail.queue_delay.count(), 1);
        assert_eq!(tail.coalesce_wait.sum(), 6);
        assert_eq!(tail.request_wall.max(), 7);
        assert_eq!(tail.exec_share.sum(), 8);
        assert_eq!(tail.inference_share.sum(), 9);
        assert_eq!(tail.probe_share.sum(), 10);
        assert_eq!(tail.result_copy.sum(), 11);
    }

    #[test]
    fn recent_fields_cover_the_sliding_window() {
        let cells = StatsCells::default();
        for _ in 0..20 {
            cells.record_request(1_000, 100, 50_000);
        }
        cells.record_inline(5, 80_000, 10);
        let s = cells.snapshot();
        assert_eq!(s.recent_requests, 21);
        assert!(s.recent_window >= Duration::from_secs(30));
        assert!(s.recent_request_wall_p99 >= Duration::from_nanos(50_000));
        assert!(s.recent_queue_delay_p99 >= Duration::from_nanos(1_000));
        // Everything recorded inside one window: the recent view matches the
        // since-boot histogram exactly.
        assert_eq!(s.recent_request_wall_p50, s.request_wall_p50);
        assert_eq!(cells.recent_request_wall.snapshot().count(), 21);

        let obs = TenantObs::default();
        obs.record_inline(7_000, 1, 1, 1);
        let tail = obs.tail();
        assert_eq!(tail.recent_request_wall.count(), 1);
        assert_eq!(tail.recent_request_wall.sum(), tail.request_wall.sum());
    }

    #[test]
    fn empty_stats_report_zero_means_without_dividing_by_zero() {
        let s = ServerStats::default();
        assert_eq!(s.mean_coalesce_width(), 0.0);
        assert_eq!(s.mean_queue_delay(), Duration::ZERO);
        assert_eq!(s.mean_request_wall(), Duration::ZERO);
        assert_eq!(s.queue_delay_p99, Duration::ZERO);
        assert_eq!(s.request_wall_max, Duration::ZERO);
    }
}
