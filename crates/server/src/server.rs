//! The query server: tenant registry, admission control, and the coalescing
//! dispatcher.
//!
//! # Architecture
//!
//! ```text
//! caller threads                dispatcher thread            TupleStore
//! ─────────────                 ─────────────────            ──────────
//! submit ──┐  bounded queue      form batch (deadline         one merged
//! submit ──┼─▶ of QueuedReq ───▶ or max_batch_keys) ───────▶ lookup_batch_into
//! submit ──┘  (admission ctl)    demux via copy_range_from ◀─ flat LookupBuffer
//!    ▲                                │
//!    └── wait_into ◀── slot condvar ──┘ (notified only if a waiter is parked)
//! ```
//!
//! The dispatcher is one plain OS thread, deliberately *outside* the dm-exec
//! pool: the merged batch runs through whatever parallelism the tenant store
//! already uses (`DM_EXEC_THREADS=1` degrades the whole path to inline serial
//! execution with no cross-pool deadlock possible). Batch formation holds the
//! queue lock only; batch execution and demux hold slot locks only — the two
//! lock domains never nest in conflicting order.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dm_core::DeepMapping;
use dm_obs::trace::{self, CapturedTrace, TraceEvent};
use dm_obs::{CaptureRing, Stage};
use dm_persist::SnapshotExt;
use dm_storage::{LookupBuffer, TupleStore};
use parking_lot::{Mutex, RwLock};

use crate::client::{RequestSlot, ServerClient, SlotState};
use crate::error::{Result, ServerError};
use crate::stats::{RequestSample, ServerStats, StatsCells, TenantObs, TenantTail};

/// Default pipeline depth for [`QueryServer::client`].
pub const DEFAULT_PIPELINE_DEPTH: usize = 4;

/// Tuning knobs for a [`QueryServer`]. Watermarks and limits are normalized
/// at server construction (see [`QueryServer::new`]) so any hand-built config
/// is made internally consistent rather than rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Flush a forming batch once this many keys are pending for its tenant.
    pub max_batch_keys: usize,
    /// Flush a forming batch once its oldest request has waited this long.
    /// This is the coalescing window: the latency the fastest request donates
    /// to let stragglers join the batch.
    pub max_delay: Duration,
    /// Hard capacity of the pending-key queue; submissions beyond it are
    /// rejected with [`ServerError::Overloaded`].
    pub queue_capacity_keys: usize,
    /// Once pending keys reach this level the server starts shedding new
    /// requests (continuing to serve what is queued).
    pub shed_high_watermark_keys: usize,
    /// Shedding stops once pending keys drain to this level. The gap between
    /// the watermarks is hysteresis: without it a queue hovering at the
    /// threshold would flap between accepting and rejecting on every request.
    pub shed_low_watermark_keys: usize,
    /// Largest single request; bigger ones are rejected with
    /// [`ServerError::RequestTooLarge`] (they should go straight to the
    /// store's own batch API instead of monopolizing the coalescer).
    pub max_request_keys: usize,
    /// When true no dispatcher thread is spawned and every request executes
    /// synchronously on the caller thread — no coalescing, no queueing. The
    /// degenerate baseline mode, also useful in single-threaded tests.
    pub inline: bool,
    /// Requests whose wall time reaches this threshold get their latency
    /// timeline retained in the server's slow-request ring (see
    /// [`QueryServer::slow_requests`]). `None` falls back to the process-wide
    /// `DM_OBS_SLOW_MS` threshold.
    pub slow_request: Option<Duration>,
    /// Per-tenant p99 latency target. When set, [`QueryServer::tenant_health`]
    /// compares each tenant's *windowed* (last ~60 s) request-wall p99 against
    /// it and feeds the resulting burn rate to the maintenance advisor as
    /// [`dm_obs::SloSignals`]. `None` (the default) runs the advisor on store
    /// signals alone.
    pub tenant_p99_target: Option<Duration>,
    /// Per-request deadline. A queued request that outwaits it is failed with
    /// [`ServerError::Timeout`] at the next batch formation instead of being
    /// served an answer its caller has already given up on — under a stalled
    /// store the queue drains by timing out rather than serving stale work.
    /// `None` (the default) never times requests out.
    pub request_deadline: Option<Duration>,
    /// Consecutive serving failures (store errors, failed snapshot opens,
    /// partially failed batches) after which a tenant's circuit breaker opens
    /// and new requests fast-fail with [`ServerError::TenantUnavailable`].
    /// `0` disables the breaker.
    pub breaker_failure_threshold: u32,
    /// How long an open breaker rejects before admitting one half-open probe
    /// request. A successful probe closes the breaker; a failed one re-opens
    /// it for another cooldown.
    pub breaker_cooldown: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_batch_keys: 256,
            max_delay: Duration::from_micros(100),
            queue_capacity_keys: 4096,
            shed_high_watermark_keys: 3584,
            shed_low_watermark_keys: 2048,
            max_request_keys: 1024,
            inline: false,
            slow_request: None,
            tenant_p99_target: None,
            request_deadline: None,
            breaker_failure_threshold: 5,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

impl ServerConfig {
    /// A config with the given coalescing window and batch-size trigger,
    /// defaults elsewhere.
    pub fn coalescing(max_delay: Duration, max_batch_keys: usize) -> Self {
        ServerConfig {
            max_delay,
            max_batch_keys,
            ..ServerConfig::default()
        }
    }

    /// The inline (uncoalesced) config: every request runs synchronously on
    /// its caller thread.
    pub fn inline() -> Self {
        ServerConfig {
            inline: true,
            ..ServerConfig::default()
        }
    }

    /// Clamps fields into a consistent shape: nonzero batch/request limits,
    /// capacity at least one batch, watermarks ordered `low <= high <=
    /// capacity`.
    fn normalized(mut self) -> Self {
        self.max_batch_keys = self.max_batch_keys.max(1);
        self.max_request_keys = self.max_request_keys.max(1);
        self.queue_capacity_keys = self.queue_capacity_keys.max(self.max_batch_keys);
        self.shed_high_watermark_keys = self
            .shed_high_watermark_keys
            .min(self.queue_capacity_keys)
            .max(1);
        self.shed_low_watermark_keys = self.shed_low_watermark_keys.min(self.shed_high_watermark_keys);
        self
    }
}

/// Opaque handle to a registered tenant, returned by
/// [`QueryServer::register_store`] / [`register_snapshot`](QueryServer::register_snapshot)
/// and resolvable by name via [`QueryServer::tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

/// Per-tenant circuit breaker: closed (serving) → open (fast-failing) after
/// [`breaker_failure_threshold`](ServerConfig::breaker_failure_threshold)
/// consecutive failures → half-open (one probe admitted) after
/// [`breaker_cooldown`](ServerConfig::breaker_cooldown) → closed again on a
/// successful probe, or straight back to open on a failed one.
#[derive(Default)]
struct BreakerState {
    consecutive_failures: u32,
    /// `Some` while the breaker is open (or probing); when the probe closes
    /// the breaker this resets to `None`.
    opened_at: Option<Instant>,
    /// A half-open probe is in flight: exactly one request is testing the
    /// tenant; everyone else keeps fast-failing until it reports back.
    probing: bool,
}

impl BreakerState {
    /// Admission check. `None` admits; `Some(retry_after)` fast-fails.
    fn check(&mut self, now: Instant, cooldown: Duration) -> Option<Duration> {
        let opened_at = self.opened_at?;
        let elapsed = now.saturating_duration_since(opened_at);
        if elapsed < cooldown {
            return Some(cooldown - elapsed);
        }
        if self.probing {
            // Someone else is already probing; keep rejecting until the
            // probe's verdict is in rather than stampeding a sick tenant.
            return Some(cooldown);
        }
        self.probing = true;
        None
    }

    /// Records a serving failure; returns true when this transition opened
    /// (or re-opened) the breaker.
    fn record_failure(&mut self, now: Instant, threshold: u32) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.probing {
            self.probing = false;
            self.opened_at = Some(now);
            return true;
        }
        if self.opened_at.is_none() && self.consecutive_failures >= threshold {
            self.opened_at = Some(now);
            return true;
        }
        false
    }

    /// Records a serving success; returns true when it closed an open breaker.
    fn record_success(&mut self) -> bool {
        let recovered = self.opened_at.is_some();
        *self = BreakerState::default();
        recovered
    }
}

/// One registered tenant. `store` starts `None` for snapshot-backed tenants
/// and is populated single-flight on first request (the mutex makes
/// concurrent first requests open the file exactly once).
struct Tenant {
    name: String,
    path: Option<PathBuf>,
    store: Mutex<Option<Arc<dyn TupleStore>>>,
    /// Per-tenant tail-attribution histograms (see [`TenantTail`]).
    obs: TenantObs,
    /// Circuit breaker guarding admission (see [`BreakerState`]).
    breaker: Mutex<BreakerState>,
}

#[derive(Default)]
struct Registry {
    tenants: Vec<Arc<Tenant>>,
    names: HashMap<String, usize>,
}

/// Queue-side view of one admitted request. Key count and timestamps are
/// copied out of the slot at submission so the dispatcher can form batches
/// while holding only the queue lock.
pub(crate) struct QueuedReq {
    slot: Arc<RequestSlot>,
    tenant: usize,
    keys: usize,
    enqueued_at: Instant,
}

#[derive(Default)]
struct QueueState {
    entries: VecDeque<QueuedReq>,
    queued_keys: usize,
    /// Load-shedding latch: set when pending keys reach the high watermark,
    /// cleared when they drain to the low watermark.
    shedding: bool,
    shutdown: bool,
}

/// State shared between the server handle, its clients, and the dispatcher.
pub(crate) struct Shared {
    config: ServerConfig,
    queue: Mutex<QueueState>,
    /// Signalled when the queue goes non-empty or a batch-size trigger fires;
    /// the dispatcher otherwise sleeps on the oldest request's deadline.
    work_cv: Condvar,
    registry: RwLock<Registry>,
    stats: StatsCells,
    /// Retained timelines of requests whose wall time crossed the slow
    /// threshold. Threshold 0 on the ring itself: admission is decided in the
    /// demux loop against [`slow_threshold_nanos`](Shared::slow_threshold_nanos),
    /// so runtime threshold changes take effect.
    slow: CaptureRing,
}

impl Shared {
    fn tenant_count(&self) -> usize {
        self.registry.read().tenants.len()
    }

    /// The wall-time threshold past which a request's timeline is retained:
    /// the server's own [`ServerConfig::slow_request`] when set, otherwise
    /// the live process-wide `DM_OBS_SLOW_MS` value.
    fn slow_threshold_nanos(&self) -> u64 {
        match self.config.slow_request {
            Some(threshold) => threshold.as_nanos().min(u64::MAX as u128) as u64,
            None => dm_obs::slow_threshold_nanos(),
        }
    }

    /// Resolves the tenant's store, opening its snapshot on first use.
    fn tenant_store(&self, index: usize) -> Result<Arc<dyn TupleStore>> {
        let tenant = Arc::clone(&self.registry.read().tenants[index]);
        let mut guard = tenant.store.lock();
        if let Some(store) = guard.as_ref() {
            return Ok(Arc::clone(store));
        }
        let path = tenant
            .path
            .as_ref()
            .expect("tenant without a store must carry a snapshot path");
        let started = Instant::now();
        let dm = DeepMapping::open(path)
            .map_err(|err| ServerError::TenantOpen(format!("{}: {err}", tenant.name)))?;
        self.stats.record_tenant_open(started.elapsed());
        let store: Arc<dyn TupleStore> = Arc::new(dm);
        *guard = Some(Arc::clone(&store));
        Ok(store)
    }

    /// Breaker admission check for `index`. `Ok(())` admits (possibly as the
    /// half-open probe); `Err` carries the typed fast-fail.
    fn breaker_admit(&self, index: usize) -> Result<()> {
        if self.config.breaker_failure_threshold == 0 {
            return Ok(());
        }
        let tenant = Arc::clone(&self.registry.read().tenants[index]);
        let verdict = tenant
            .breaker
            .lock()
            .check(Instant::now(), self.config.breaker_cooldown);
        match verdict {
            None => Ok(()),
            Some(retry_after) => {
                StatsCells::add(&self.stats.breaker_rejections, 1);
                Err(ServerError::TenantUnavailable {
                    tenant: tenant.name.clone(),
                    retry_after,
                })
            }
        }
    }

    /// Reports one serving outcome to `tenant`'s breaker. Trips and
    /// recoveries feed both the server stats and the global `dm-obs`
    /// registry, so a scrape shows breaker churn next to the fault counters.
    fn breaker_record(&self, tenant: &Tenant, ok: bool) {
        let threshold = self.config.breaker_failure_threshold;
        if threshold == 0 {
            return;
        }
        let mut breaker = tenant.breaker.lock();
        if ok {
            if breaker.record_success() {
                StatsCells::add(&self.stats.breaker_recoveries, 1);
                dm_obs::registry::global()
                    .register_counter("dm_server_breaker_recoveries_total")
                    .incr();
            }
        } else if breaker.record_failure(Instant::now(), threshold) {
            StatsCells::add(&self.stats.breaker_trips, 1);
            dm_obs::registry::global()
                .register_counter("dm_server_breaker_trips_total")
                .incr();
        }
    }

    /// Fails every entry in `expired` with a typed [`ServerError::Timeout`]
    /// carrying how long it actually waited. Called by the dispatcher after
    /// dropping the queue lock.
    fn fail_timeouts(&self, expired: &mut Vec<QueuedReq>) {
        let deadline = self.config.request_deadline.unwrap_or_default();
        let now = Instant::now();
        StatsCells::add(&self.stats.requests_failed, expired.len() as u64);
        StatsCells::add(&self.stats.requests_timed_out, expired.len() as u64);
        dm_obs::registry::global()
            .register_counter("dm_server_timeouts_total")
            .add(expired.len() as u64);
        for req in expired.drain(..) {
            let waited = now.saturating_duration_since(req.enqueued_at);
            let mut inner = req.slot.inner.lock();
            inner.state = SlotState::Failed(ServerError::Timeout { waited, deadline });
            let notify = inner.waiting;
            drop(inner);
            if notify {
                req.slot.cv.notify_all();
            }
        }
    }

    /// Fails every request in `batch` with `err`, waking parked waiters.
    fn fail_requests(&self, batch: &mut Vec<QueuedReq>, err: &ServerError) {
        StatsCells::add(&self.stats.requests_failed, batch.len() as u64);
        for req in batch.drain(..) {
            let mut inner = req.slot.inner.lock();
            inner.state = SlotState::Failed(err.clone());
            let notify = inner.waiting;
            drop(inner);
            if notify {
                req.slot.cv.notify_all();
            }
        }
    }

    /// Runs one merged batch: merge keys, execute on the tenant store, demux
    /// spans back into each slot, wake parked waiters. Called with no locks
    /// held; takes slot locks only.
    fn execute_batch(
        &self,
        batch: &mut Vec<QueuedReq>,
        merged: &mut Vec<u64>,
        results: &mut LookupBuffer,
    ) {
        let formed_at = Instant::now();
        merged.clear();
        let mut newest_enqueue = batch[0].enqueued_at;
        for req in batch.iter() {
            let mut inner = req.slot.inner.lock();
            merged.extend_from_slice(&inner.keys);
            inner.queue_delay = formed_at.saturating_duration_since(req.enqueued_at);
            if req.enqueued_at > newest_enqueue {
                newest_enqueue = req.enqueued_at;
            }
        }

        let tenant = Arc::clone(&self.registry.read().tenants[batch[0].tenant]);
        let store = match self.tenant_store(batch[0].tenant) {
            Ok(store) => store,
            Err(err) => {
                self.breaker_record(&tenant, false);
                self.fail_requests(batch, &err);
                return;
            }
        };
        let exec_started = Instant::now();
        let outcome = store.lookup_batch_into(merged, results);
        let exec_nanos = exec_started.elapsed().as_nanos() as u64;
        // The pipeline finishes its batch trace on the calling thread — this
        // one — so the thread-local last-batch summary, when the store
        // publishes one, is exactly the merged batch just executed. Baseline
        // stores (and `DM_OBS=off`) leave it `None`; their requests simply
        // get zero inference/probe shares.
        let batch_trace = trace::take_last_batch();
        let inference_nanos = batch_trace.map_or(0, |s| s.stage(Stage::Inference));
        let probe_nanos = batch_trace.map_or(0, |s| s.stage(Stage::Probe));
        // The coalescing hold: how long the batch stayed open after its
        // newest member arrived. One value, shared by every request in the
        // batch — it is the price the batch collectively paid for width.
        let coalesce_nanos = exec_started
            .saturating_duration_since(newest_enqueue)
            .as_nanos() as u64;

        match outcome {
            Ok(()) => {
                let done = Instant::now();
                // Graceful degradation: a store with per-span failure marks
                // (see `LookupBuffer::set_failed`) answered the batch overall
                // but could not serve some keys. Only the requests whose own
                // spans touch a failed key fail — with a typed
                // `PartialFailure` — and everyone else demuxes byte-identical
                // to the healthy path. The rare-path pre-scan below is only
                // taken when the buffer actually carries failures.
                let mut span_failures: Vec<Option<ServerError>> = Vec::new();
                let mut completed = batch.len() as u64;
                let mut completed_keys = merged.len() as u64;
                if results.failed_count() > 0 {
                    let mut offset = 0usize;
                    for req in batch.iter() {
                        let mut failed_keys = 0usize;
                        let mut cause = None;
                        for i in offset..offset + req.keys {
                            if results.is_failed(i) {
                                failed_keys += 1;
                                if cause.is_none() {
                                    cause = results.error(i).map(|e| e.to_string());
                                }
                            }
                        }
                        offset += req.keys;
                        span_failures.push((failed_keys > 0).then(|| {
                            completed -= 1;
                            completed_keys -= req.keys as u64;
                            ServerError::PartialFailure {
                                failed_keys,
                                total_keys: req.keys,
                                cause: cause.unwrap_or_default(),
                            }
                        }));
                    }
                }
                // Partition probes failed inside an otherwise-served batch:
                // that is a tenant-level serving failure for the breaker,
                // even though most requests got answers.
                self.breaker_record(&tenant, completed == batch.len() as u64);
                // Record batch counters before any waiter is woken: a caller
                // that returns from wait_into and immediately reads stats()
                // must see its own request counted. Per-request histograms
                // follow the same rule inside the demux loop below.
                self.stats.record_batch(
                    batch.len() as u64,
                    completed,
                    completed_keys,
                    exec_nanos,
                );
                trace::record_stage(Stage::Exec, exec_nanos);
                trace::record_stage(Stage::CoalesceWait, coalesce_nanos);
                let slow_threshold = self.slow_threshold_nanos();
                let batch_keys = (merged.len() as u64).max(1);
                let demux_started = Instant::now();
                let mut offset = 0usize;
                for (index, req) in batch.drain(..).enumerate() {
                    if let Some(Some(err)) = span_failures.get_mut(index).map(Option::take) {
                        StatsCells::add(&self.stats.requests_failed, 1);
                        StatsCells::add(&self.stats.partial_failures, 1);
                        dm_obs::registry::global()
                            .register_counter("dm_server_partial_failures_total")
                            .incr();
                        let mut inner = req.slot.inner.lock();
                        offset += inner.keys.len();
                        inner.state = SlotState::Failed(err);
                        let notify = inner.waiting;
                        drop(inner);
                        if notify {
                            req.slot.cv.notify_all();
                        }
                        continue;
                    }
                    let mut inner = req.slot.inner.lock();
                    let len = inner.keys.len();
                    let copy_started = Instant::now();
                    inner.response.copy_range_from(results, offset, len);
                    let copy_nanos = copy_started.elapsed().as_nanos() as u64;
                    offset += len;
                    inner.done_at = done;
                    inner.state = SlotState::Done;
                    let queue_delay_nanos = inner.queue_delay.as_nanos() as u64;
                    let notify = inner.waiting;
                    drop(inner);

                    let wall_nanos =
                        done.saturating_duration_since(req.enqueued_at).as_nanos() as u64;
                    // Batch-share attribution: this request's key-weighted
                    // slice of the merged batch's stage time.
                    let share = |total: u64| total * len as u64 / batch_keys;
                    self.stats
                        .record_request(queue_delay_nanos, coalesce_nanos, wall_nanos);
                    tenant.obs.record(&RequestSample {
                        queue_delay_nanos,
                        coalesce_wait_nanos: coalesce_nanos,
                        wall_nanos,
                        exec_share_nanos: share(exec_nanos),
                        inference_share_nanos: share(inference_nanos),
                        probe_share_nanos: share(probe_nanos),
                        result_copy_nanos: copy_nanos,
                    });
                    trace::record_stage(Stage::QueueDelay, queue_delay_nanos);
                    trace::record_stage(Stage::ResultCopy, copy_nanos);
                    if wall_nanos >= slow_threshold {
                        // Timeline offsets are relative to this request's
                        // enqueue. Inference/probe spans carry the *batch*
                        // totals (the detail line names the batch size).
                        let exec_offset = exec_started
                            .saturating_duration_since(req.enqueued_at)
                            .as_nanos() as u64;
                        let events: Vec<TraceEvent> = [
                            (Stage::QueueDelay, 0, queue_delay_nanos),
                            (
                                Stage::CoalesceWait,
                                newest_enqueue
                                    .saturating_duration_since(req.enqueued_at)
                                    .as_nanos() as u64,
                                coalesce_nanos,
                            ),
                            (Stage::Exec, exec_offset, exec_nanos),
                            (Stage::Inference, exec_offset, inference_nanos),
                            (Stage::Probe, exec_offset, probe_nanos),
                            (
                                Stage::ResultCopy,
                                copy_started
                                    .saturating_duration_since(req.enqueued_at)
                                    .as_nanos() as u64,
                                copy_nanos,
                            ),
                        ]
                        .into_iter()
                        .filter(|&(_, _, dur)| dur > 0)
                        .map(|(stage, start_nanos, dur_nanos)| TraceEvent {
                            stage,
                            start_nanos,
                            dur_nanos,
                        })
                        .collect();
                        self.slow.push(CapturedTrace {
                            label: "server_request",
                            detail: format!(
                                "tenant={} keys={len} batch_keys={}",
                                tenant.name,
                                merged.len()
                            ),
                            total_nanos: wall_nanos,
                            events,
                        });
                    }
                    if notify {
                        req.slot.cv.notify_all();
                    }
                }
                trace::record_stage(Stage::Demux, demux_started.elapsed().as_nanos() as u64);
            }
            Err(err) => {
                self.breaker_record(&tenant, false);
                let err = ServerError::Store(err.to_string());
                self.fail_requests(batch, &err);
            }
        }
    }

    /// Serves one request synchronously on the caller thread (inline mode).
    fn execute_inline(&self, slot: &Arc<RequestSlot>) -> Result<()> {
        let tenant_index = slot.inner.lock().tenant;
        let tenant = Arc::clone(&self.registry.read().tenants[tenant_index]);
        let store = match self.tenant_store(tenant_index) {
            Ok(store) => store,
            Err(err) => {
                self.breaker_record(&tenant, false);
                slot.inner.lock().state = SlotState::Idle;
                return Err(err);
            }
        };
        let mut inner = slot.inner.lock();
        let started = Instant::now();
        let inner_ref = &mut *inner;
        let outcome = store.lookup_batch_into(&inner_ref.keys, &mut inner_ref.response);
        match outcome {
            Ok(()) if inner.response.failed_count() > 0 => {
                // Per-span degradation: this single request *is* the batch,
                // so any failed span fails it with the typed partial error.
                let failed_keys = inner.response.failed_count();
                let total_keys = inner.keys.len();
                let cause = inner
                    .response
                    .first_error()
                    .map(|e| e.to_string())
                    .unwrap_or_default();
                inner.state = SlotState::Idle;
                drop(inner);
                self.breaker_record(&tenant, false);
                StatsCells::add(&self.stats.requests_failed, 1);
                StatsCells::add(&self.stats.partial_failures, 1);
                dm_obs::registry::global()
                    .register_counter("dm_server_partial_failures_total")
                    .incr();
                Err(ServerError::PartialFailure {
                    failed_keys,
                    total_keys,
                    cause,
                })
            }
            Ok(()) => {
                self.breaker_record(&tenant, true);
                let done = Instant::now();
                let exec_nanos = done.saturating_duration_since(started).as_nanos() as u64;
                let wall = done.saturating_duration_since(inner.enqueued_at);
                let wall_nanos = wall.as_nanos() as u64;
                inner.done_at = done;
                inner.queue_delay = Duration::ZERO;
                inner.state = SlotState::Done;
                self.stats
                    .record_inline(inner.keys.len() as u64, wall_nanos, exec_nanos);
                let batch_trace = trace::take_last_batch();
                tenant.obs.record_inline(
                    wall_nanos,
                    exec_nanos,
                    batch_trace.map_or(0, |s| s.stage(Stage::Inference)),
                    batch_trace.map_or(0, |s| s.stage(Stage::Probe)),
                );
                trace::record_stage(Stage::Exec, exec_nanos);
                if wall_nanos >= self.slow_threshold_nanos() {
                    self.slow.push(CapturedTrace {
                        label: "server_request_inline",
                        detail: format!("tenant={} keys={}", tenant.name, inner.keys.len()),
                        total_nanos: wall_nanos,
                        events: vec![TraceEvent {
                            stage: Stage::Exec,
                            start_nanos: started
                                .saturating_duration_since(inner.enqueued_at)
                                .as_nanos() as u64,
                            dur_nanos: exec_nanos,
                        }],
                    });
                }
                Ok(())
            }
            Err(err) => {
                inner.state = SlotState::Idle;
                drop(inner);
                self.breaker_record(&tenant, false);
                Err(ServerError::Store(err.to_string()))
            }
        }
    }
}

/// Submits one prepared slot. Called by [`ServerClient::submit`]; the slot
/// must be `Idle` and owned by the calling client. On any error the slot is
/// returned to `Idle` so the client's pipeline slot is not consumed.
pub(crate) fn submit_slot(
    shared: &Arc<Shared>,
    slot: &Arc<RequestSlot>,
    tenant: TenantId,
    keys: &[u64],
) -> Result<()> {
    let config = &shared.config;
    if keys.len() > config.max_request_keys {
        return Err(ServerError::RequestTooLarge {
            keys: keys.len(),
            max_request_keys: config.max_request_keys,
        });
    }
    if tenant.0 >= shared.tenant_count() {
        return Err(ServerError::UnknownTenant(format!("#{}", tenant.0)));
    }
    // Circuit breaker: a tenant that keeps failing is fast-failed here, at
    // admission, so a sick tenant cannot fill the queue with requests that
    // are doomed to fail after burning a coalescing slot.
    shared.breaker_admit(tenant.0)?;

    let enqueued_at = Instant::now();
    {
        let mut inner = slot.inner.lock();
        debug_assert_eq!(inner.state, SlotState::Idle, "submit into a busy slot");
        inner.tenant = tenant.0;
        inner.keys.clear();
        inner.keys.extend_from_slice(keys);
        inner.enqueued_at = enqueued_at;
        inner.state = SlotState::Queued;
    }

    if config.inline {
        return shared.execute_inline(slot);
    }

    let wake = {
        let mut q = shared.queue.lock();
        if q.shutdown {
            slot.inner.lock().state = SlotState::Idle;
            return Err(ServerError::ShuttingDown);
        }
        let after = q.queued_keys + keys.len();
        let over_capacity = after > config.queue_capacity_keys;
        let shedding = q.shedding && q.queued_keys > config.shed_low_watermark_keys;
        if over_capacity || shedding {
            let queued_keys = q.queued_keys;
            q.shedding = q.shedding || over_capacity;
            drop(q);
            StatsCells::add(&shared.stats.requests_shed, 1);
            slot.inner.lock().state = SlotState::Idle;
            return Err(ServerError::Overloaded {
                queued_keys,
                capacity: config.queue_capacity_keys,
            });
        }
        if q.shedding {
            // Drained to the low watermark: stop shedding and admit.
            q.shedding = false;
        }
        let was_empty = q.entries.is_empty();
        q.entries.push_back(QueuedReq {
            slot: Arc::clone(slot),
            tenant: tenant.0,
            keys: keys.len(),
            enqueued_at,
        });
        q.queued_keys = after;
        if after >= config.shed_high_watermark_keys {
            q.shedding = true;
        }
        // Wake the dispatcher only on the transitions it cannot infer from
        // the deadline it is already sleeping on: queue went non-empty, or
        // pending keys just crossed the batch-size trigger. Everything else
        // resolves at the deadline, keeping submissions syscall-free.
        was_empty
            || (after >= config.max_batch_keys && after - keys.len() < config.max_batch_keys)
    };
    StatsCells::add(&shared.stats.requests_enqueued, 1);
    StatsCells::add(&shared.stats.keys_enqueued, keys.len() as u64);
    if wake {
        shared.work_cv.notify_one();
    }
    Ok(())
}

/// The dispatcher: forms batches under the deadline/size policy and executes
/// them. Runs until shutdown is observed.
fn dispatcher_loop(shared: Arc<Shared>) {
    let mut batch: Vec<QueuedReq> = Vec::new();
    let mut kept: VecDeque<QueuedReq> = VecDeque::new();
    let mut merged: Vec<u64> = Vec::new();
    let mut results = LookupBuffer::new();
    let mut timed_out: Vec<QueuedReq> = Vec::new();

    loop {
        {
            let mut q = shared.queue.lock();
            loop {
                if q.shutdown {
                    batch.extend(q.entries.drain(..));
                    q.queued_keys = 0;
                    drop(q);
                    shared.fail_requests(&mut batch, &ServerError::ShuttingDown);
                    return;
                }
                if q.entries.is_empty() {
                    q = shared.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    continue;
                }
                // The oldest request anchors the batch: its tenant, its
                // deadline. Requests for other tenants wait their turn —
                // FIFO across tenants keeps the policy simple and starvation-free.
                let front = &q.entries[0];
                let tenant = front.tenant;
                let deadline = front.enqueued_at + shared.config.max_delay;
                let mut pending = 0usize;
                for entry in q.entries.iter() {
                    if entry.tenant == tenant {
                        pending += entry.keys;
                        if pending >= shared.config.max_batch_keys {
                            break;
                        }
                    }
                }
                let now = Instant::now();
                if pending >= shared.config.max_batch_keys || now >= deadline {
                    let cap = shared.config.max_batch_keys;
                    let mut taken = 0usize;
                    let mut expired = 0usize;
                    while let Some(entry) = q.entries.pop_front() {
                        // Deadline sweep: a request that outwaited its
                        // per-request deadline (typically because the
                        // dispatcher was stuck in a slow store call) is
                        // failed, not served — its caller has moved on.
                        if shared.config.request_deadline.is_some_and(|limit| {
                            now.saturating_duration_since(entry.enqueued_at) >= limit
                        }) {
                            expired += entry.keys;
                            timed_out.push(entry);
                            continue;
                        }
                        let fits = entry.tenant == tenant
                            && (taken == 0 || taken + entry.keys <= cap);
                        if fits {
                            taken += entry.keys;
                            batch.push(entry);
                            if taken >= cap {
                                kept.extend(q.entries.drain(..));
                                break;
                            }
                        } else {
                            kept.push_back(entry);
                        }
                    }
                    std::mem::swap(&mut q.entries, &mut kept);
                    q.queued_keys -= taken + expired;
                    if q.shedding && q.queued_keys <= shared.config.shed_low_watermark_keys {
                        q.shedding = false;
                    }
                    break;
                }
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
        if !timed_out.is_empty() {
            shared.fail_timeouts(&mut timed_out);
        }
        // Every candidate for this round may have expired; go back to waiting.
        if batch.is_empty() {
            continue;
        }
        shared.execute_batch(&mut batch, &mut merged, &mut results);
        batch.clear();
    }
}

/// A batched in-process query server over one or more [`TupleStore`] tenants.
///
/// Concurrent callers submit small `get` / `lookup_batch` requests through
/// per-thread [`ServerClient`]s; the server coalesces them into
/// inference-sized batches under a deadline, runs each merged batch through
/// the tenant store's own pipeline, and demuxes the flat result arena back to
/// each waiter without per-request allocation. See the [crate docs](crate)
/// for the full tour.
pub struct QueryServer {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl QueryServer {
    /// Builds a server with `config` (normalized — see [`ServerConfig`]) and
    /// starts its dispatcher thread unless `config.inline`.
    pub fn new(config: ServerConfig) -> Self {
        let config = config.normalized();
        let inline = config.inline;
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            registry: RwLock::new(Registry::default()),
            stats: StatsCells::default(),
            // Sized by `DM_OBS_SLOW_RING`, like the per-thread batch rings.
            slow: CaptureRing::new(trace::slow_ring_capacity(), 0),
        });
        let dispatcher = if inline {
            None
        } else {
            let for_thread = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("dm-server-dispatch".into())
                    .spawn(move || dispatcher_loop(for_thread))
                    .expect("spawn dm-server dispatcher"),
            )
        };
        QueryServer {
            shared,
            dispatcher: Mutex::new(dispatcher),
        }
    }

    /// A server with [`ServerConfig::default`].
    pub fn with_defaults() -> Self {
        QueryServer::new(ServerConfig::default())
    }

    /// The (normalized) configuration this server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.config
    }

    /// Registers an already-open store under `name`.
    pub fn register_store(&self, name: &str, store: Arc<dyn TupleStore>) -> Result<TenantId> {
        self.register(name, Some(store), None)
    }

    /// Registers a snapshot-backed tenant under `name`. The file is not
    /// touched here: the snapshot is opened lazily (and exactly once) on the
    /// tenant's first request.
    pub fn register_snapshot(&self, name: &str, path: impl Into<PathBuf>) -> Result<TenantId> {
        self.register(name, None, Some(path.into()))
    }

    fn register(
        &self,
        name: &str,
        store: Option<Arc<dyn TupleStore>>,
        path: Option<PathBuf>,
    ) -> Result<TenantId> {
        let mut registry = self.shared.registry.write();
        if registry.names.contains_key(name) {
            return Err(ServerError::DuplicateTenant(name.to_string()));
        }
        let index = registry.tenants.len();
        registry.tenants.push(Arc::new(Tenant {
            name: name.to_string(),
            path,
            store: Mutex::new(store),
            obs: TenantObs::default(),
            breaker: Mutex::new(BreakerState::default()),
        }));
        registry.names.insert(name.to_string(), index);
        Ok(TenantId(index))
    }

    /// Resolves a tenant id by registration name.
    pub fn tenant(&self, name: &str) -> Result<TenantId> {
        self.shared
            .registry
            .read()
            .names
            .get(name)
            .copied()
            .map(TenantId)
            .ok_or_else(|| ServerError::UnknownTenant(name.to_string()))
    }

    /// Registered tenants as `(name, opened)` pairs, in registration order.
    /// `opened` is false for snapshot tenants that have not yet served a
    /// request.
    pub fn tenants(&self) -> Vec<(String, bool)> {
        self.shared
            .registry
            .read()
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.store.lock().is_some()))
            .collect()
    }

    /// A new client with the default pipeline depth
    /// ([`DEFAULT_PIPELINE_DEPTH`]).
    pub fn client(&self) -> ServerClient {
        self.client_with_depth(DEFAULT_PIPELINE_DEPTH)
    }

    /// A new client able to keep `depth` requests in flight.
    pub fn client_with_depth(&self, depth: usize) -> ServerClient {
        ServerClient::new(Arc::clone(&self.shared), depth)
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    /// Per-tenant tail-attribution histograms for the tenant registered as
    /// `name`: queue delay, coalescing hold, request wall time, the tenant's
    /// key-weighted share of batch execution / inference / probe time, and
    /// per-request result-copy time.
    pub fn tenant_tail(&self, name: &str) -> Result<TenantTail> {
        let registry = self.shared.registry.read();
        let index = *registry
            .names
            .get(name)
            .ok_or_else(|| ServerError::UnknownTenant(name.to_string()))?;
        Ok(registry.tenants[index].obs.tail())
    }

    /// Captured timelines of requests whose wall time reached the
    /// slow-request threshold ([`ServerConfig::slow_request`], falling back
    /// to the process-wide `DM_OBS_SLOW_MS`), oldest first. The ring is
    /// bounded ([`dm_obs::trace::slow_ring_capacity`], i.e. `DM_OBS_SLOW_RING`):
    /// once full, each new capture evicts the oldest.
    pub fn slow_requests(&self) -> Vec<CapturedTrace> {
        self.shared.slow.snapshot()
    }

    /// The SLO input for one tenant: its windowed request-wall p99 against
    /// [`ServerConfig::tenant_p99_target`], when a target is configured.
    fn tenant_slo(&self, tenant: &Tenant) -> Option<dm_obs::SloSignals> {
        let target = self.shared.config.tenant_p99_target?;
        let recent = tenant.obs.recent_request_wall.snapshot();
        Some(dm_obs::SloSignals {
            target_p99_nanos: target.as_nanos().min(u64::MAX as u128) as u64,
            windowed_p99_nanos: recent.p99(),
            windowed_requests: recent.count(),
        })
    }

    /// The maintenance advisor's view of the tenant registered as `name`:
    /// the store's own drift + pool-pressure signals
    /// ([`dm_storage::TupleStore::health_signals`]; defaulted for baseline
    /// stores that expose none) folded with this server's windowed per-tenant
    /// SLO burn (see [`ServerConfig::tenant_p99_target`]). Opens a
    /// snapshot-backed tenant lazily, exactly like a first request would.
    pub fn tenant_health(&self, name: &str) -> Result<dm_obs::HealthReport> {
        let (index, tenant) = {
            let registry = self.shared.registry.read();
            let index = *registry
                .names
                .get(name)
                .ok_or_else(|| ServerError::UnknownTenant(name.to_string()))?;
            (index, Arc::clone(&registry.tenants[index]))
        };
        let store = self.shared.tenant_store(index)?;
        let signals = store.health_signals().unwrap_or_default();
        Ok(signals.advise_with_faults(self.tenant_slo(&tenant), store.fault_signals()))
    }

    /// Health reports for every tenant that is already open, as
    /// `(name, report)` pairs in registration order. Snapshot tenants that
    /// have never served a request are skipped (probing health should not
    /// fault every registered snapshot into memory); use
    /// [`tenant_health`](Self::tenant_health) to force one open.
    pub fn health(&self) -> Vec<(String, dm_obs::HealthReport)> {
        let tenants: Vec<Arc<Tenant>> = self
            .shared
            .registry
            .read()
            .tenants
            .iter()
            .map(Arc::clone)
            .collect();
        tenants
            .iter()
            .filter_map(|tenant| {
                let store = tenant.store.lock().as_ref().map(Arc::clone)?;
                let signals = store.health_signals().unwrap_or_default();
                let report =
                    signals.advise_with_faults(self.tenant_slo(tenant), store.fault_signals());
                Some((tenant.name.clone(), report))
            })
            .collect()
    }

    /// Publishes every open tenant's [`health`](Self::health) report into the
    /// global `dm-obs` registry as `dm_health_{tenant}_*` gauges, so the next
    /// [`dm_obs::render_prometheus`] / [`dm_obs::render_json`] scrape carries
    /// the advisor's view alongside the raw metrics. Returns the number of
    /// tenants published. Call it from the scrape path (or a periodic tick) —
    /// gauges are set, not accumulated, so repeats are idempotent.
    pub fn publish_health(&self) -> usize {
        let reports = self.health();
        for (name, report) in &reports {
            report.publish_to(
                &format!("dm_health_{name}"),
                dm_obs::registry::global(),
            );
        }
        reports.len()
    }

    /// Stops the server: new submissions fail with
    /// [`ServerError::ShuttingDown`], every queued waiter is failed with the
    /// same typed error (never left hanging), the in-flight batch (if any)
    /// completes, and the dispatcher thread is joined. Idempotent.
    pub fn shutdown(&self) {
        let mut drained: Vec<QueuedReq> = {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
            q.queued_keys = 0;
            q.entries.drain(..).collect()
        };
        self.shared.work_cv.notify_all();
        self.shared
            .fail_requests(&mut drained, &ServerError::ShuttingDown);
        if let Some(handle) = self.dispatcher.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
