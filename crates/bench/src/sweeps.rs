//! Modification sweeps shared by the Table III / IV / V bench targets.
//!
//! Each sweep starts from a synthetic dataset, applies a sequence of modification
//! increments (insertions that follow or violate the original distribution, or
//! deletions), and after every increment reports each system's storage footprint and
//! its batch-lookup latency over the *current* key population — exactly the rows of
//! the paper's Tables III–V.

use crate::{
    build_baselines, build_deepmapping, measure_lookup, report, storage_mb, BenchScale,
    MachineProfile, SystemUnderTest,
};
use dm_compress::Codec;
use dm_core::TrainingConfig;
use dm_data::{LookupWorkload, ModificationWorkload, SyntheticConfig};
use dm_storage::Row;

/// Which modification a sweep applies at each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Insert rows generated from the dataset's own distribution (Table III).
    InsertInDistribution,
    /// Insert rows whose values are uniform-random (Table IV).
    InsertOffDistribution,
    /// Delete existing rows (Table V).
    Delete,
}

impl SweepKind {
    fn describes(&self) -> &'static str {
        match self {
            SweepKind::InsertInDistribution => "inserted data follows the original distribution",
            SweepKind::InsertOffDistribution => {
                "inserted data does NOT follow the original distribution"
            }
            SweepKind::Delete => "rows are deleted in 10% increments",
        }
    }
}

/// The baseline systems the paper's modification tables include.
const INTERESTING_BASELINES: [&str; 4] = ["AB", "ABC-Z", "HB", "HBC-Z"];
/// Number of modification increments (the paper's 100–600 MB steps on a 1 GB base).
const STEPS: usize = 6;
/// The step after which DM-Z1 retrains (the paper retrains at 200 MB ≈ 2 increments).
const RETRAIN_STEP: usize = 2;

/// Builds the system set of Tables III–V: the four partitioned baselines plus DM-Z
/// (never retrained) and DM-Z1 (retrained at [`RETRAIN_STEP`]).
fn build_systems(
    dataset: &dm_data::Dataset,
    machine: &MachineProfile,
) -> Vec<SystemUnderTest> {
    let training = TrainingConfig {
        epochs: 30,
        batch_size: 512,
        ..TrainingConfig::default()
    };
    let mut systems: Vec<SystemUnderTest> = build_baselines(dataset, machine)
        .into_iter()
        .filter(|s| INTERESTING_BASELINES.contains(&s.name.as_str()))
        .collect();
    systems.push(build_deepmapping(dataset, Codec::Lz, machine, training));
    let mut dm_z1 = build_deepmapping(dataset, Codec::Lz, machine, training);
    dm_z1.name = "DM-Z1".to_string();
    systems.push(dm_z1);
    systems
}

/// Runs one modification sweep over one synthetic dataset and prints its table block.
pub fn run_sweep(label: &str, config: SyntheticConfig, scale: &BenchScale, kind: SweepKind) {
    let dataset = config.generate();
    let base_rows = dataset.num_rows();
    let increment = (base_rows / 10).max(1);
    let machine = MachineProfile::small(dataset.uncompressed_bytes(), 0.3);
    let batch = scale.batch(100_000);

    println!();
    println!(
        "--- {label}: {} base rows, increments of {} rows ({}) ---",
        base_rows,
        increment,
        kind.describes()
    );

    // Pre-generate the modification increments so every system sees identical data.
    let modification = ModificationWorkload::default();
    let mut insert_increments: Vec<Vec<Row>> = Vec::new();
    let mut delete_increments: Vec<Vec<u64>> = Vec::new();
    match kind {
        SweepKind::InsertInDistribution | SweepKind::InsertOffDistribution => {
            let mut next_key = dataset.max_key() + 1;
            for step in 0..STEPS {
                let rows = if kind == SweepKind::InsertOffDistribution {
                    config.generate_range_off_distribution(next_key, increment, 7 + step as u64)
                } else {
                    config.generate_range(next_key, increment)
                };
                next_key += increment as u64;
                insert_increments.push(rows);
            }
        }
        SweepKind::Delete => {
            // One shuffled pass over the existing keys, consumed in increments.
            let all = modification.deletion_batch(&dataset, increment * STEPS);
            for chunk in all.chunks(increment) {
                delete_increments.push(chunk.to_vec());
            }
        }
    }

    let mut header: Vec<String> = Vec::new();
    for step in 0..=STEPS {
        let sign = if kind == SweepKind::Delete { "-" } else { "+" };
        header.push(format!("{sign}{}%", step * 10));
    }
    report::row("system (storage MB)", &header);

    let mut systems = build_systems(&dataset, &machine);
    let mut storage_rows: Vec<(String, Vec<String>)> = Vec::new();
    let mut latency_rows: Vec<(String, Vec<String>)> = Vec::new();
    for system in &mut systems {
        let mut storage_cells = Vec::with_capacity(STEPS + 1);
        let mut latency_cells = Vec::with_capacity(STEPS + 1);
        let mut live_keys: Vec<u64> = dataset.keys.clone();
        for step in 0..=STEPS {
            if step > 0 {
                match kind {
                    SweepKind::InsertInDistribution | SweepKind::InsertOffDistribution => {
                        let rows = &insert_increments[step - 1];
                        system.store.insert(rows).expect("insert");
                        live_keys.extend(rows.iter().map(|r| r.key));
                    }
                    SweepKind::Delete => {
                        if let Some(keys) = delete_increments.get(step - 1) {
                            system.store.delete(keys).expect("delete");
                            let victims: std::collections::HashSet<u64> =
                                keys.iter().copied().collect();
                            live_keys.retain(|k| !victims.contains(k));
                        }
                    }
                }
                if system.name == "DM-Z1" && step == RETRAIN_STEP {
                    system.store.maintenance().expect("retrain");
                }
            }
            storage_cells.push(report::size_cell(storage_mb(system)));
            let max_key = live_keys.iter().copied().max().unwrap_or(0);
            let keys = LookupWorkload::hits_only(batch).generate_from_keys(&live_keys, max_key);
            let latency = measure_lookup(system, &keys);
            latency_cells.push(report::latency_cell(latency.total_ms()));
        }
        storage_rows.push((system.name.clone(), storage_cells));
        latency_rows.push((system.name.clone(), latency_cells));
    }
    for (name, cells) in storage_rows {
        report::row(&format!("{name}-Storage"), &cells);
    }
    report::row("system (query ms)", &header);
    for (name, cells) in latency_rows {
        report::row(&format!("{name}-Query"), &cells);
    }
}

/// Runs a full table (both synthetic datasets) for the given sweep kind.
pub fn run_table(scale: &BenchScale, kind: SweepKind) {
    let rows = scale.rows(2_000_000);
    run_sweep(
        "Multi-column, low correlation",
        SyntheticConfig::multi_low(rows),
        scale,
        kind,
    );
    run_sweep(
        "Multi-column, high correlation",
        SyntheticConfig::multi_high(rows),
        scale,
        kind,
    );
    println!();
    println!(
        "(DM-Z never retrains; DM-Z1 retrains after the {}0% increment, as in the paper)",
        RETRAIN_STEP
    );
}
