//! Throughput regression gate: parse the committed `BENCH_lookup.json`
//! baseline and compare a fresh quick-mode measurement against it.
//!
//! The committed numbers come from one reference box, so the gate is
//! **warn-only by default**: on foreign hardware it reports drift instead of
//! failing the build.  Set `DM_GATE_STRICT=1` on the reference box to turn
//! regressions into a non-zero exit, and `DM_GATE_TOLERANCE` (default `0.35`)
//! to widen or narrow the noise band.
//!
//! Parsing is line-based on purpose: `lookup_records_to_json` emits one record
//! per line, and the offline build has no serde — a full JSON parser would be
//! more code than the whole gate.

/// One throughput row extracted from the committed report, keyed the same way
/// the bench emits it: `(system, threads, batch_size)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Paper-style system name (`DM-Z`, `ABC-Z`, ...).
    pub system: String,
    /// Concurrent issuing threads of the row.
    pub threads: usize,
    /// Keys per batch.
    pub batch_size: usize,
    /// Committed lookup throughput in keys per second.
    pub keys_per_second: f64,
}

/// Extracts `"key": <number>` from a single-line JSON record.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts `"key": "value"` from a single-line JSON record.  Stops at the
/// closing quote; the bench escapes embedded quotes, which no paper-style
/// system name contains, so the gate does not un-escape.
fn field_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parses the `results` array of a committed `BENCH_lookup.json` into
/// comparable rows.  Unparseable lines are skipped, not fatal — a hand-edited
/// baseline degrades the gate's coverage, never the build.
pub fn parse_baseline(json: &str) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    let mut in_results = false;
    for line in json.lines() {
        if line.contains("\"results\"") {
            in_results = true;
            continue;
        }
        if in_results && line.trim_start().starts_with(']') {
            break;
        }
        if !in_results {
            continue;
        }
        let (Some(system), Some(threads), Some(batch), Some(kps)) = (
            field_str(line, "system"),
            field_f64(line, "threads"),
            field_f64(line, "batch_size"),
            field_f64(line, "keys_per_second"),
        ) else {
            continue;
        };
        rows.push(BaselineRow {
            system,
            threads: threads as usize,
            batch_size: batch as usize,
            keys_per_second: kps,
        });
    }
    rows
}

/// Parses the document-level `scale_factor` the committed baseline was
/// produced at, so the gate re-measures at the same scale regardless of the
/// current `DM_BENCH_SCALE` environment.
pub fn parse_scale_factor(json: &str) -> Option<f64> {
    json.lines()
        .find(|l| l.contains("\"scale_factor\""))
        .and_then(|l| field_f64(l, "scale_factor"))
}

/// Parses the committed health-overhead `delta_pct` (observability cost in
/// percent), when the baseline carries a `health` section.
pub fn parse_health_overhead_pct(json: &str) -> Option<f64> {
    let mut in_health = false;
    for line in json.lines() {
        if line.contains("\"health\"") {
            in_health = true;
        }
        if in_health {
            if let Some(v) = field_f64(line, "delta_pct") {
                return Some(v);
            }
            if line.trim_start().starts_with('}') {
                break;
            }
        }
    }
    None
}

/// One gate comparison: a baseline row against a fresh measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The committed row.
    pub baseline: BaselineRow,
    /// Freshly measured keys per second for the same cell.
    pub measured_kps: f64,
}

impl Comparison {
    /// Measured-over-baseline throughput ratio (1.0 = parity).
    pub fn ratio(&self) -> f64 {
        if self.baseline.keys_per_second > 0.0 {
            self.measured_kps / self.baseline.keys_per_second
        } else {
            f64::INFINITY
        }
    }

    /// Whether the measurement regressed beyond the noise band: a drop larger
    /// than `tolerance` (e.g. `0.35` allows measured ≥ 65% of baseline).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio() < 1.0 - tolerance
    }
}

/// Reads the gate's noise tolerance from `DM_GATE_TOLERANCE` (default `0.35`,
/// clamped to a sane band — throughput on shared CI boxes is noisy).
pub fn tolerance_from_env() -> f64 {
    std::env::var("DM_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.35)
        .clamp(0.05, 0.9)
}

/// Locates the committed `BENCH_lookup.json` by walking up from the package
/// directory to the workspace root (where `Cargo.lock` lives), mirroring
/// [`crate::write_lookup_json`].
pub fn baseline_path() -> Option<std::path::PathBuf> {
    let mut dir = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    for _ in 0..4 {
        let candidate = dir.join("BENCH_lookup.json");
        if dir.join("Cargo.lock").exists() && candidate.exists() {
            return Some(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "lookup_batch",
  "scale_factor": 0.005,
  "results": [
    {"system": "AB", "threads": 1, "batch_size": 1000, "samples": 33, "total_ms": 0.1, "p50_ms": 0.1, "p95_ms": 0.1, "keys_per_second": 9000000.0},
    {"system": "DM-Z", "threads": 1, "batch_size": 25000, "samples": 33, "total_ms": 26.0, "p50_ms": 26.0, "p95_ms": 27.0, "p99_ms": 28.0, "keys_per_second": 945000.0},
    {"system": "DM-Z", "threads": 4, "batch_size": 25000, "samples": 52, "total_ms": 40.0, "p50_ms": 40.0, "p95_ms": 44.0, "keys_per_second": 2400000.0}
  ],
  "server": [
    {"mode": "direct", "window_us": 0.0, "keys_per_second": 1.0}
  ],
  "health": {
    "overhead": {"samples": 33, "obs_on_kps": 940000.0, "obs_off_kps": 945000.0, "delta_pct": 0.529},
    "episode": {"system": "DM-Z", "rows": 10000, "advice": "retrain", "healthy_after": true}
  }
}"#;

    #[test]
    fn parses_result_rows_and_stops_at_the_array_end() {
        let rows = parse_baseline(SAMPLE);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].system, "DM-Z");
        assert_eq!(rows[1].threads, 1);
        assert_eq!(rows[1].batch_size, 25_000);
        assert_eq!(rows[1].keys_per_second, 945_000.0);
        // The `server` array's rows never leak into the results.
        assert!(rows.iter().all(|r| r.system != "direct"));
    }

    #[test]
    fn parses_the_health_overhead_and_tolerates_its_absence() {
        assert_eq!(parse_health_overhead_pct(SAMPLE), Some(0.529));
        let without = SAMPLE.replace("\"health\"", "\"hlth\"");
        assert_eq!(parse_health_overhead_pct(&without), None);
    }

    #[test]
    fn parses_the_scale_factor() {
        assert_eq!(parse_scale_factor(SAMPLE), Some(0.005));
        assert_eq!(parse_scale_factor("{}"), None);
    }

    #[test]
    fn comparison_flags_only_drops_beyond_the_noise_band() {
        let baseline = BaselineRow {
            system: "DM-Z".into(),
            threads: 1,
            batch_size: 25_000,
            keys_per_second: 1_000_000.0,
        };
        let fine = Comparison {
            baseline: baseline.clone(),
            measured_kps: 700_000.0,
        };
        assert!(!fine.regressed(0.35), "a 30% drop is inside the band");
        let bad = Comparison {
            baseline,
            measured_kps: 600_000.0,
        };
        assert!(bad.regressed(0.35), "a 40% drop is a regression");
        assert!((bad.ratio() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let mangled = "{\n  \"results\": [\n    not json at all\n    {\"system\": \"AB\", \"threads\": 1, \"batch_size\": 100, \"keys_per_second\": 5.0}\n  ]\n}";
        let rows = parse_baseline(mangled);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].system, "AB");
    }
}
