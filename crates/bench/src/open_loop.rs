//! Open-loop load generation against a [`QueryServer`].
//!
//! Closed-loop benchmarking (issue, wait, issue) hides saturation: when the
//! server slows down the generator slows down with it, so the measured
//! latency stays flattering. An *open-loop* generator instead schedules
//! arrivals on a fixed clock derived from the offered load and measures each
//! request's latency from its **scheduled** arrival time — a request that
//! could not even be submitted on time accrues that delay, which is the
//! standard correction for coordinated omission. Sweeping offered load then
//! exposes the throughput knee: the load beyond which p99 departs from p50.
//!
//! Two modes share one generator so the comparison is apples-to-apples:
//!
//! * [`Mode::Coalesced`] — requests go through [`ServerClient::submit`] /
//!   [`wait_into`](ServerClient::wait_into) with a pipeline deep enough that
//!   the generator keeps issuing while earlier requests are still in flight.
//! * [`Mode::Direct`] — each arrival calls the tenant store's own
//!   `lookup_batch_into` synchronously (no server, no coalescing): the
//!   uncoalesced per-request pipeline baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dm_server::{QueryServer, ServerClient, ServerError, TenantId, Ticket};
use dm_storage::{LookupBuffer, TupleStore};

/// How requests are issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Through the coalescing [`QueryServer`].
    Coalesced,
    /// Straight to `TupleStore::lookup_batch_into`, one call per request.
    Direct,
}

impl Mode {
    /// Stable label used in the JSON report.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Coalesced => "coalesced",
            Mode::Direct => "direct",
        }
    }
}

/// Parameters for one open-loop measurement cell.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in keys per second (spread evenly over the clients).
    pub offered_keys_per_sec: f64,
    /// Measurement duration.
    pub duration: Duration,
    /// Generator threads, each with its own arrival schedule and client.
    pub clients: usize,
    /// Keys per request (1 = the single-key serving shape).
    pub keys_per_request: usize,
    /// In-flight requests per client in [`Mode::Coalesced`] (ignored for
    /// direct mode, which is inherently one-at-a-time per client).
    pub pipeline_depth: usize,
}

/// What one open-loop run measured.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopOutcome {
    /// Requests that completed successfully.
    pub completed_requests: usize,
    /// Keys across completed requests.
    pub completed_keys: usize,
    /// Requests rejected by admission control ([`ServerError::Overloaded`]).
    pub rejected_requests: usize,
    /// Per-request latency in milliseconds, measured from the *scheduled*
    /// arrival to completion (coordinated-omission corrected). One entry per
    /// completed request, unordered.
    pub latencies_ms: Vec<f64>,
    /// Wall time of the whole run (schedule start to last harvest).
    pub wall: Duration,
}

impl OpenLoopOutcome {
    /// Achieved throughput in keys per second.
    pub fn achieved_keys_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.completed_keys as f64 / self.wall.as_secs_f64()
        }
    }

    fn absorb(&mut self, other: OpenLoopOutcome) {
        self.completed_requests += other.completed_requests;
        self.completed_keys += other.completed_keys;
        self.rejected_requests += other.rejected_requests;
        self.latencies_ms.extend(other.latencies_ms);
        self.wall = self.wall.max(other.wall);
    }
}

/// Per-client starting cursor.  A golden-ratio multiply decorrelates the
/// clients' positions modulo any key space: with a small linear offset
/// (`c * K`) two clients can land a few keys apart mod the store size and
/// then march through the *same* partitions in lockstep forever (all clients
/// share one stride), letting the buffer pool's single-flight path merge
/// their partition loads — which halves the apparent cost of the direct
/// baseline by accident rather than by design.
fn client_cursor(client_index: usize) -> u64 {
    (client_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Deterministic key sequence shared by both modes: client `c` touches keys
/// `(base + i * stride) % key_space` so requests spread over the whole store
/// without coordination or RNG state.
fn request_keys(out: &mut Vec<u64>, key_space: u64, cursor: &mut u64, keys_per_request: usize) {
    out.clear();
    for _ in 0..keys_per_request {
        out.push(*cursor % key_space);
        *cursor = cursor.wrapping_add(7_368_787); // large prime stride
    }
}

struct ClientRun {
    outcome: OpenLoopOutcome,
}

fn run_coalesced_client(
    server: &QueryServer,
    tenant: TenantId,
    config: &OpenLoopConfig,
    key_space: u64,
    client_index: usize,
    start: Instant,
) -> ClientRun {
    let interval = Duration::from_secs_f64(
        (config.keys_per_request.max(1) as f64 * config.clients.max(1) as f64)
            / config.offered_keys_per_sec,
    );
    let total = (config.duration.as_secs_f64() / interval.as_secs_f64()) as usize;
    let mut client: ServerClient = server.client_with_depth(config.pipeline_depth.max(1));
    let mut outcome = OpenLoopOutcome::default();
    outcome.latencies_ms.reserve(total);
    let mut keys: Vec<u64> = Vec::with_capacity(config.keys_per_request);
    let mut cursor = client_cursor(client_index);
    let mut out = LookupBuffer::new();
    // Tickets in flight, oldest first, paired with their scheduled arrival.
    let mut in_flight: Vec<(Ticket, Instant)> = Vec::with_capacity(config.pipeline_depth);

    // Client c's i-th request is scheduled at start + (c + i*clients) * interval / clients:
    // the per-client schedules interleave into one uniform arrival process.
    let phase = interval.mul_f64(client_index as f64 / config.clients.max(1) as f64);

    for i in 0..total {
        let scheduled = start + phase + interval.mul_f64(i as f64);
        // Harvest everything already done, then sleep until the arrival.
        loop {
            let now = Instant::now();
            if now >= scheduled {
                break;
            }
            if let Some((ticket, _)) = in_flight.first() {
                if client.is_done(ticket) {
                    let (ticket, sched) = in_flight.remove(0);
                    harvest(&mut client, ticket, sched, &mut out, &mut outcome);
                    continue;
                }
            }
            let remaining = scheduled - now;
            std::thread::sleep(remaining.min(Duration::from_micros(200)));
        }
        request_keys(&mut keys, key_space, &mut cursor, config.keys_per_request);
        // Free a slot if the pipeline is full (blocking on the oldest).
        if in_flight.len() >= client.pipeline_depth() {
            let (ticket, sched) = in_flight.remove(0);
            harvest(&mut client, ticket, sched, &mut out, &mut outcome);
        }
        match client.submit(tenant, &keys) {
            Ok(ticket) => in_flight.push((ticket, scheduled)),
            Err(ServerError::Overloaded { .. }) => outcome.rejected_requests += 1,
            Err(err) => panic!("open-loop submit failed: {err}"),
        }
    }
    for (ticket, sched) in in_flight.drain(..) {
        harvest(&mut client, ticket, sched, &mut out, &mut outcome);
    }
    outcome.wall = start.elapsed();
    ClientRun { outcome }
}

fn harvest(
    client: &mut ServerClient,
    ticket: Ticket,
    scheduled: Instant,
    out: &mut LookupBuffer,
    outcome: &mut OpenLoopOutcome,
) {
    match client.wait_into(ticket, out) {
        Ok(report) => {
            let latency = report.completed_at.saturating_duration_since(scheduled);
            outcome.latencies_ms.push(latency.as_secs_f64() * 1e3);
            outcome.completed_requests += 1;
            outcome.completed_keys += out.len();
        }
        Err(ServerError::Overloaded { .. }) => outcome.rejected_requests += 1,
        Err(err) => panic!("open-loop wait failed: {err}"),
    }
}

fn run_direct_client(
    store: &Arc<dyn TupleStore>,
    config: &OpenLoopConfig,
    key_space: u64,
    client_index: usize,
    start: Instant,
) -> ClientRun {
    let interval = Duration::from_secs_f64(
        (config.keys_per_request.max(1) as f64 * config.clients.max(1) as f64)
            / config.offered_keys_per_sec,
    );
    let total = (config.duration.as_secs_f64() / interval.as_secs_f64()) as usize;
    let mut outcome = OpenLoopOutcome::default();
    outcome.latencies_ms.reserve(total);
    let mut keys: Vec<u64> = Vec::with_capacity(config.keys_per_request);
    let mut cursor = client_cursor(client_index);
    let mut out = LookupBuffer::new();
    let phase = interval.mul_f64(client_index as f64 / config.clients.max(1) as f64);

    for i in 0..total {
        let scheduled = start + phase + interval.mul_f64(i as f64);
        loop {
            let now = Instant::now();
            if now >= scheduled {
                break;
            }
            std::thread::sleep((scheduled - now).min(Duration::from_micros(200)));
        }
        request_keys(&mut keys, key_space, &mut cursor, config.keys_per_request);
        store
            .lookup_batch_into(&keys, &mut out)
            .expect("direct lookup failed");
        let done = Instant::now();
        outcome
            .latencies_ms
            .push(done.saturating_duration_since(scheduled).as_secs_f64() * 1e3);
        outcome.completed_requests += 1;
        outcome.completed_keys += out.len();
    }
    outcome.wall = start.elapsed();
    ClientRun { outcome }
}

/// Runs one open-loop cell in [`Mode::Coalesced`]: `config.clients` generator
/// threads submit scheduled arrivals through the server and the merged
/// outcome is returned.
pub fn run_coalesced(
    server: &QueryServer,
    tenant: TenantId,
    config: &OpenLoopConfig,
    key_space: u64,
) -> OpenLoopOutcome {
    let start = Instant::now() + Duration::from_millis(5);
    let mut merged = OpenLoopOutcome::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|c| {
                scope.spawn(move || run_coalesced_client(server, tenant, config, key_space, c, start))
            })
            .collect();
        for handle in handles {
            merged.absorb(handle.join().expect("open-loop client panicked").outcome);
        }
    });
    merged
}

/// Runs one open-loop cell in [`Mode::Direct`] against the store itself.
pub fn run_direct(
    store: &Arc<dyn TupleStore>,
    config: &OpenLoopConfig,
    key_space: u64,
) -> OpenLoopOutcome {
    let start = Instant::now() + Duration::from_millis(5);
    let mut merged = OpenLoopOutcome::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|c| scope.spawn(move || run_direct_client(store, config, key_space, c, start)))
            .collect();
        for handle in handles {
            merged.absorb(handle.join().expect("open-loop client panicked").outcome);
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_server::ServerConfig;
    use dm_storage::{ReferenceStore, Row};

    fn reference(keys: u64) -> Arc<dyn TupleStore> {
        let rows: Vec<Row> = (0..keys).map(|k| Row::new(k, vec![k as u32])).collect();
        Arc::new(ReferenceStore::from_rows(&rows))
    }

    #[test]
    fn coalesced_open_loop_completes_every_scheduled_arrival() {
        let store = reference(512);
        let server = QueryServer::new(ServerConfig::coalescing(
            Duration::from_micros(100),
            64,
        ));
        let tenant = server.register_store("t", Arc::clone(&store)).unwrap();
        let config = OpenLoopConfig {
            offered_keys_per_sec: 20_000.0,
            duration: Duration::from_millis(100),
            clients: 2,
            keys_per_request: 1,
            pipeline_depth: 8,
        };
        let outcome = run_coalesced(&server, tenant, &config, 512);
        assert!(outcome.completed_requests > 0);
        assert_eq!(outcome.completed_requests, outcome.latencies_ms.len());
        assert_eq!(outcome.completed_keys, outcome.completed_requests);
        assert_eq!(outcome.rejected_requests, 0);
        assert!(outcome.achieved_keys_per_sec() > 0.0);
        // ~100ms at 20k keys/s == ~2000 single-key requests over 2 clients.
        let expected = 2_000;
        assert!(
            outcome.completed_requests as f64 > 0.5 * expected as f64,
            "only {} of ~{} scheduled requests completed",
            outcome.completed_requests,
            expected
        );
        let stats = server.stats();
        assert!(stats.batches_formed > 0);
        assert!(stats.mean_coalesce_width() >= 1.0);
    }

    #[test]
    fn direct_open_loop_matches_the_coalesced_request_count_shape() {
        let store = reference(512);
        let config = OpenLoopConfig {
            offered_keys_per_sec: 20_000.0,
            duration: Duration::from_millis(50),
            clients: 2,
            keys_per_request: 1,
            pipeline_depth: 1,
        };
        let outcome = run_direct(&store, &config, 512);
        assert!(outcome.completed_requests > 0);
        assert_eq!(outcome.completed_keys, outcome.completed_requests);
        assert!(outcome.latencies_ms.iter().all(|&ms| ms >= 0.0));
    }
}
