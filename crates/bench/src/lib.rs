//! # dm-bench — the benchmark harness behind every table and figure of the paper
//!
//! Each bench target under `benches/` regenerates one table or figure of the
//! DeepMapping evaluation (Section V).  They are custom harnesses (`harness = false`)
//! that print the same rows/series the paper reports; two additional Criterion targets
//! (`codec_micro`, `lookup_micro`) cover micro-latencies.
//!
//! The utilities here are shared by all of them:
//!
//! * [`BenchScale`] — one knob (`DM_BENCH_SCALE`, default `0.005`) that scales every
//!   dataset so the full suite runs in minutes on one core while preserving the
//!   *shape* of the results (who wins, by roughly what factor),
//! * [`build_baselines`] / [`build_deepmapping`] — construct the paper's system matrix
//!   (AB, ABC-D/G/Z/L, HB, HBC-Z/L, DS, DM-Z, DM-L) over a dataset,
//! * [`measure_lookup`] — wall-clock plus simulated-I/O latency of a query batch,
//! * [`report`] — fixed-width table printing so `cargo bench` output reads like the
//!   paper's tables.

pub mod gate;
pub mod open_loop;
pub mod sweeps;

use dm_baselines::{DeepSqueezeConfig, DeepSqueezeStore, PartitionedStore, PartitionedStoreConfig};
use dm_compress::Codec;
use dm_core::{DeepMappingBuilder, Quantization, TrainingConfig};
use dm_data::Dataset;
use dm_storage::{DiskProfile, LookupBuffer, Metrics, MutableStore, Row};
use std::time::{Duration, Instant};

/// Global scale knob for the benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchScale {
    /// Multiplier applied to the paper's SF-1 row counts (e.g. `0.005` ≈ 7.5 k orders).
    pub factor: f64,
}

impl BenchScale {
    /// Reads the scale from the `DM_BENCH_SCALE` environment variable
    /// (default `0.005`).
    pub fn from_env() -> Self {
        let factor = std::env::var("DM_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.005)
            .clamp(1e-5, 10.0);
        BenchScale { factor }
    }

    /// Scales an SF-1 row count.
    pub fn rows(&self, base_sf1: usize) -> usize {
        ((base_sf1 as f64) * self.factor).round().max(1024.0) as usize
    }

    /// A batch size scaled down proportionally from the paper's `B`
    /// (so `B = 100 000` stays meaningful on tiny datasets).
    pub fn batch(&self, paper_batch: usize) -> usize {
        ((paper_batch as f64 * self.factor * 50.0).round() as usize).clamp(100, paper_batch)
    }
}

/// Machine profiles of Section V-A2, expressed as (memory budget, disk model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name ("small", "medium", "large").
    pub name: &'static str,
    /// Memory available to buffer pools, in bytes.  `usize::MAX` means "fits easily".
    pub memory_budget_bytes: usize,
    /// I/O model.
    pub disk: DiskProfile,
}

impl MachineProfile {
    /// The small-size machine (t2-medium class): constrained memory, slow disk.
    /// `memory_fraction` expresses the budget as a fraction of `dataset_bytes` so the
    /// "dataset exceeds memory" scenario scales with the benchmark scale.
    pub fn small(dataset_bytes: usize, memory_fraction: f64) -> Self {
        MachineProfile {
            name: "small",
            memory_budget_bytes: ((dataset_bytes as f64) * memory_fraction) as usize,
            disk: DiskProfile::edge_ssd(),
        }
    }

    /// The medium-size machine (g4dn class): ample memory, faster disk.
    pub fn medium() -> Self {
        MachineProfile {
            name: "medium",
            memory_budget_bytes: usize::MAX,
            disk: DiskProfile::nvme(),
        }
    }

    /// The large-size machine (A10 server): everything in memory, free I/O.
    pub fn large() -> Self {
        MachineProfile {
            name: "large",
            memory_budget_bytes: usize::MAX,
            disk: DiskProfile::free(),
        }
    }
}

/// A store under test plus the metrics handle it charges work to.
pub struct SystemUnderTest {
    /// Paper-style system name (`AB`, `ABC-Z`, `DM-L`, ...).
    pub name: String,
    /// The store, swept through the shared read/write traits.
    pub store: Box<dyn MutableStore>,
    /// Metrics handle shared with the store.
    pub metrics: Metrics,
    /// Reusable lookup arena, so repeated measurements over one system stay free of
    /// per-key allocations.
    pub buffer: LookupBuffer,
}

impl SystemUnderTest {
    /// Wraps a store for the harness.
    pub fn new(name: impl Into<String>, store: Box<dyn MutableStore>, metrics: Metrics) -> Self {
        SystemUnderTest {
            name: name.into(),
            store,
            metrics,
            buffer: LookupBuffer::new(),
        }
    }
}

/// Builds the array- and hash-based baseline matrix of Section V-A3 over a dataset.
pub fn build_baselines(dataset: &Dataset, machine: &MachineProfile) -> Vec<SystemUnderTest> {
    let rows = dataset.rows();
    let value_columns = dataset.num_value_columns();
    let record_width = Row::fixed_width(value_columns);
    let mut systems = Vec::new();
    let configs: Vec<PartitionedStoreConfig> = vec![
        PartitionedStoreConfig::array(Codec::None),
        PartitionedStoreConfig::array(Codec::Dictionary { record_width }),
        PartitionedStoreConfig::array(Codec::Deflate),
        PartitionedStoreConfig::array(Codec::Lz),
        PartitionedStoreConfig::array(Codec::LzHuff),
        PartitionedStoreConfig::hash(Codec::None),
        PartitionedStoreConfig::hash(Codec::Lz),
        PartitionedStoreConfig::hash(Codec::LzHuff),
    ];
    for config in configs {
        let metrics = Metrics::new();
        let config = config
            .with_memory_budget(machine.memory_budget_bytes)
            .with_disk_profile(machine.disk)
            .with_partition_bytes(64 * 1024);
        let name = config.paper_name();
        let store = PartitionedStore::build(&rows, value_columns, config, metrics.clone())
            .expect("baseline build");
        systems.push(SystemUnderTest::new(name, Box::new(store), metrics));
    }
    systems
}

/// Builds the DeepSqueeze-like DS baseline; returns `None` when the build fails with
/// an OOM-style error (the paper reports those cells as "failed").
pub fn build_deepsqueeze(dataset: &Dataset, machine: &MachineProfile) -> Option<SystemUnderTest> {
    let metrics = Metrics::new();
    let config = DeepSqueezeConfig {
        epochs: 10,
        ..DeepSqueezeConfig::default()
    }
    .with_memory_budget(machine.memory_budget_bytes);
    match DeepSqueezeStore::build(&dataset.rows(), dataset.num_value_columns(), config, metrics.clone()) {
        Ok(store) => Some(SystemUnderTest::new("DS", Box::new(store), metrics)),
        Err(_) => None,
    }
}

/// Builds a concrete DeepMapping store (DM-Z or DM-L) over a dataset — the shape
/// the multi-threaded throughput variant needs (an `Arc<DeepMapping>` shared
/// across OS threads).  [`build_deepmapping`] wraps it for the trait-object sweep.
///
/// The benchmarked stores run int8-quantized inference: it is the shipped fast
/// path (lossless by construction — the aux table memorizes under quantized
/// arithmetic), so the throughput tables measure what a production store does.
pub fn build_deepmapping_store(
    dataset: &Dataset,
    codec: Codec,
    machine: &MachineProfile,
    training: TrainingConfig,
) -> dm_core::DeepMapping {
    let builder = match codec {
        Codec::LzHuff => DeepMappingBuilder::dm_l(),
        _ => DeepMappingBuilder::dm_z().codec(codec),
    }
    .memory_budget(machine.memory_budget_bytes)
    .disk_profile(machine.disk)
    .partition_bytes(32 * 1024)
    .quantization(Quantization::Int8)
    .training(training);
    builder.build(&dataset.rows()).expect("DeepMapping build")
}

/// Builds a DeepMapping store (DM-Z or DM-L) over a dataset.
pub fn build_deepmapping(
    dataset: &Dataset,
    codec: Codec,
    machine: &MachineProfile,
    training: TrainingConfig,
) -> SystemUnderTest {
    let dm = build_deepmapping_store(dataset, codec, machine, training);
    let name = dm.config().paper_name();
    let metrics = dm.metrics().clone();
    SystemUnderTest::new(name, Box::new(dm), metrics)
}

/// Builds DM-Z and DM-L with a default quick training budget.
pub fn build_deepmapping_pair(dataset: &Dataset, machine: &MachineProfile) -> Vec<SystemUnderTest> {
    let training = TrainingConfig {
        epochs: 30,
        batch_size: 512,
        ..TrainingConfig::default()
    };
    vec![
        build_deepmapping(dataset, Codec::Lz, machine, training),
        build_deepmapping(dataset, Codec::LzHuff, machine, training),
    ]
}

/// Latency measured for one query batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeasuredLatency {
    /// Wall-clock time of the batch.
    pub wall: Duration,
    /// Simulated disk-I/O time accumulated during the batch.
    pub simulated_io: Duration,
}

impl MeasuredLatency {
    /// Wall-clock plus simulated I/O — the figure comparable to the paper's
    /// memory-constrained latencies.
    pub fn total(&self) -> Duration {
        self.wall + self.simulated_io
    }

    /// Total latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total().as_secs_f64() * 1e3
    }
}

/// Runs one lookup batch through a system and measures it.  The batch goes through
/// the allocation-aware `lookup_batch_into` path with the system's reusable buffer,
/// so the measurement covers the query work, not result materialization.
pub fn measure_lookup(system: &mut SystemUnderTest, keys: &[u64]) -> MeasuredLatency {
    system.metrics.reset();
    let start = Instant::now();
    let result = system.store.lookup_batch_into(keys, &mut system.buffer);
    let wall = start.elapsed();
    let snapshot = system.metrics.snapshot();
    // A failed lookup (e.g. DS running out of memory) is reported as an effectively
    // infinite latency so tables can show it as "failed".
    if result.is_err() {
        return MeasuredLatency {
            wall: Duration::from_secs(u64::MAX / 4),
            simulated_io: Duration::ZERO,
        };
    }
    MeasuredLatency {
        wall,
        simulated_io: Duration::from_nanos(snapshot.simulated_io_nanos),
    }
}

/// Runs `samples` measured repetitions of a lookup batch against a system (after
/// one warmup pass) and returns the individual measurements, for percentile
/// reporting.
pub fn measure_lookup_samples(
    system: &mut SystemUnderTest,
    keys: &[u64],
    samples: usize,
) -> Vec<MeasuredLatency> {
    measure_lookup(system, keys); // warm the buffer pool and the lookup arena
    (0..samples.max(1))
        .map(|_| measure_lookup(system, keys))
        .collect()
}

/// Minimum sample count for which a nearest-rank p99 is a distinct statistic.
///
/// Nearest-rank over `n` sorted samples puts p99 at rank `round(0.99·(n-1))` and
/// p95 at `round(0.95·(n-1))`; below 26 samples those ranks collide, so every
/// reported "p99" was silently the p95 (the committed `BENCH_lookup.json` rows
/// produced from 9 reps all showed p99 == p95).  Records built from fewer
/// samples omit p99 instead of reporting fiction.
pub const P99_MIN_SAMPLES: usize = 26;

/// One per-system, per-batch-size throughput record for the machine-readable
/// `BENCH_lookup.json` report, with latency-distribution tails.
#[derive(Debug, Clone, PartialEq)]
pub struct LookupThroughputRecord {
    /// Paper-style system name (`DM-Z`, `ABC-Z`, ...).
    pub system: String,
    /// Concurrent OS threads issuing batches (1 = the classic single-issuer run).
    pub threads: usize,
    /// Keys per batch.
    pub batch_size: usize,
    /// Measurements behind the distribution fields.
    pub samples: usize,
    /// Mean total latency (wall + simulated I/O) per batch in milliseconds.
    pub total_ms: f64,
    /// Median per-batch latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-batch latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-batch latency in milliseconds, reported only when the
    /// sample count makes it a distinct statistic (see [`P99_MIN_SAMPLES`]).
    pub p99_ms: Option<f64>,
    /// Lookup throughput in keys per second (aggregate across threads).
    pub keys_per_second: f64,
}

impl LookupThroughputRecord {
    /// Builds a record from one measured batch (no distribution: the percentiles
    /// all equal the single measurement).
    pub fn from_measurement(system: &str, batch_size: usize, latency: MeasuredLatency) -> Self {
        Self::from_samples(system, 1, batch_size, &[latency])
    }

    /// Builds a record from repeated measurements of one batch: `total_ms` is the
    /// mean, the percentile fields are nearest-rank over the samples, and
    /// throughput is derived from the mean.
    pub fn from_samples(
        system: &str,
        threads: usize,
        batch_size: usize,
        samples: &[MeasuredLatency],
    ) -> Self {
        assert!(!samples.is_empty(), "need at least one measurement");
        let (mean_ms, p50, p95, p99) = latency_distribution(samples);
        let mean_seconds = mean_ms / 1e3;
        LookupThroughputRecord {
            system: system.to_string(),
            threads,
            batch_size,
            samples: samples.len(),
            total_ms: mean_ms,
            p50_ms: p50,
            p95_ms: p95,
            p99_ms: p99,
            keys_per_second: if mean_seconds > 0.0 {
                (threads * batch_size) as f64 / mean_seconds
            } else {
                f64::INFINITY
            },
        }
    }

    /// Builds a record for a multi-threaded run, keeping the two meanings
    /// apart: the latency fields (`total_ms`, percentiles) summarize
    /// **per-operation** batch latency as each issuing thread measured its own
    /// batches, while `keys_per_second` is the **aggregate** throughput derived
    /// from the wall-clock of whole rounds (`threads` batches issued
    /// concurrently per round).  Per-thread wall time must never be summed into
    /// a per-op figure — that conflates latency with occupancy.
    pub fn from_concurrent(
        system: &str,
        threads: usize,
        batch_size: usize,
        per_op: &[MeasuredLatency],
        rounds: &[MeasuredLatency],
    ) -> Self {
        assert!(!per_op.is_empty() && !rounds.is_empty(), "need measurements");
        let (mean_ms, p50, p95, p99) = latency_distribution(per_op);
        let total_keys = (threads * batch_size * rounds.len()) as f64;
        let round_seconds: f64 = rounds.iter().map(|r| r.total().as_secs_f64()).sum();
        LookupThroughputRecord {
            system: system.to_string(),
            threads,
            batch_size,
            samples: per_op.len(),
            total_ms: mean_ms,
            p50_ms: p50,
            p95_ms: p95,
            p99_ms: p99,
            keys_per_second: if round_seconds > 0.0 {
                total_keys / round_seconds
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Mean plus nearest-rank p50/p95 (in ms) over a set of raw millisecond samples,
/// with p99 reported only when the sample count supports a distinct nearest-rank
/// p99 (see [`P99_MIN_SAMPLES`]).  Shared by the per-batch latency records and
/// the open-loop server section, so every percentile in `BENCH_lookup.json`
/// follows the same honesty rule.
pub fn distribution_ms(samples_ms: &[f64]) -> (f64, f64, f64, Option<f64>) {
    assert!(!samples_ms.is_empty(), "need at least one sample");
    let mut sorted_ms = samples_ms.to_vec();
    sorted_ms.sort_by(|a, b| a.total_cmp(b));
    let percentile = |p: f64| {
        let rank = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
        sorted_ms[rank.min(sorted_ms.len() - 1)]
    };
    let mean_ms = sorted_ms.iter().sum::<f64>() / sorted_ms.len() as f64;
    let p99 = (sorted_ms.len() >= P99_MIN_SAMPLES).then(|| percentile(99.0));
    (mean_ms, percentile(50.0), percentile(95.0), p99)
}

/// [`distribution_ms`] over measured latencies.
fn latency_distribution(samples: &[MeasuredLatency]) -> (f64, f64, f64, Option<f64>) {
    let ms: Vec<f64> = samples.iter().map(MeasuredLatency::total_ms).collect();
    distribution_ms(&ms)
}

/// One inference micro-benchmark cell: ns/row through one dense layer shape,
/// packed-panel kernel vs. the pre-kernel reference path, so the kernel's
/// contribution to lookup latency is visible separately from end-to-end
/// numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceKernelRecord {
    /// Layer shape as `k x n` (input × output width).
    pub shape: String,
    /// Activation name (`relu`, `linear`, ...).
    pub activation: String,
    /// Rows pushed through the layer per measured pass.
    pub rows: usize,
    /// Active kernel name (`avx2+fma` or `scalar`).
    pub kernel: String,
    /// Nanoseconds per row through the packed-panel kernel.
    pub packed_ns_per_row: f64,
    /// Nanoseconds per row through the reference path
    /// (`matmul` + bias broadcast + activation, the pre-kernel hot path).
    pub reference_ns_per_row: f64,
}

impl InferenceKernelRecord {
    /// Reference-over-packed speedup factor.
    pub fn speedup(&self) -> f64 {
        if self.packed_ns_per_row > 0.0 {
            self.reference_ns_per_row / self.packed_ns_per_row
        } else {
            f64::INFINITY
        }
    }
}

/// One cold-start measurement: snapshot a store, drop it, reopen it from the
/// file and run one single-partition batch — the lazy-loading story measured,
/// not asserted.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStartRecord {
    /// Paper-style system name (`DM-Z`, ...).
    pub system: String,
    /// Rows in the snapshotted store.
    pub rows: usize,
    /// Auxiliary partitions left on disk for lazy serving.
    pub partitions: usize,
    /// Total snapshot size in bytes.
    pub file_bytes: u64,
    /// Bytes `open` read eagerly (header + manifest + model + existence).
    pub eager_bytes: u64,
    /// Wall time of `Snapshot::open` in milliseconds.
    pub open_ms: f64,
    /// Wall time of the first batch (confined to one partition) in milliseconds.
    pub first_batch_ms: f64,
    /// Keys in that first batch.
    pub first_batch_keys: usize,
    /// Total snapshot bytes read by open + first batch (eager + the one
    /// partition frame the batch pulled in).
    pub bytes_read_before_first_batch: u64,
}

impl ColdStartRecord {
    /// Fraction of the snapshot read before the first batch completed.
    pub fn read_fraction(&self) -> f64 {
        if self.file_bytes == 0 {
            return 0.0;
        }
        self.bytes_read_before_first_batch as f64 / self.file_bytes as f64
    }
}

/// One cell of the open-loop server saturation sweep: requests issued at a fixed
/// offered load (open-loop — arrivals are scheduled by rate, *not* gated on
/// completions), served either through the coalescing `dm-server` front-end or
/// as uncoalesced per-request pipeline calls.  Per-request latency is measured
/// from the request's **scheduled** arrival time, so a saturated server shows
/// its queueing honestly instead of the coordinated-omission flattery a
/// closed-loop harness produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerLoadRecord {
    /// `"coalesced"` (through `QueryServer`) or `"direct"` (per-request
    /// `lookup_batch_into` on the caller thread).
    pub mode: String,
    /// Coalescing window in microseconds (0 for direct mode).
    pub window_us: f64,
    /// Batch-size trigger of the coalescer (0 for direct mode).
    pub max_batch_keys: usize,
    /// Offered load in keys per second, summed across client threads.
    pub offered_kps: f64,
    /// Achieved (completed) load in keys per second.
    pub achieved_kps: f64,
    /// Issuing client threads.
    pub clients: usize,
    /// Keys per request (the paper's point-lookup traffic is 1–10).
    pub keys_per_request: usize,
    /// Completed requests behind the latency distribution.
    pub samples: usize,
    /// Mean per-request latency (scheduled arrival → completion) in ms.
    pub mean_ms: f64,
    /// Median per-request latency in ms.
    pub p50_ms: f64,
    /// 95th-percentile per-request latency in ms.
    pub p95_ms: f64,
    /// 99th-percentile per-request latency in ms (omitted below
    /// [`P99_MIN_SAMPLES`] samples).
    pub p99_ms: Option<f64>,
    /// Requests rejected by admission control during the run.
    pub shed: u64,
    /// Batches the coalescer formed (0 for direct mode).
    pub batches: u64,
    /// Mean requests merged per batch (1.0 for direct mode).
    pub mean_coalesce_width: f64,
}

/// Per-stage latency distribution for one pipeline stage, read from the
/// process-wide `dm_obs` stage histograms after a measured section.  Values in
/// milliseconds; percentiles carry the histogram's ≤ 12.5% bucket error.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatencyRecord {
    /// Stage slug (`existence`, `inference`, `probe`, ...).
    pub stage: String,
    /// Spans recorded for the stage over the measured section.
    pub count: u64,
    /// Median span duration in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile span duration in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile span duration in milliseconds.
    pub p99_ms: f64,
    /// Largest span duration in milliseconds (exact, not bucketed).
    pub max_ms: f64,
}

impl StageLatencyRecord {
    /// Builds a record from a stage's histogram snapshot; `None` when the
    /// stage recorded nothing over the section.
    pub fn from_snapshot(stage: dm_obs::Stage, snap: &dm_obs::HistogramSnapshot) -> Option<Self> {
        (snap.count() > 0).then(|| StageLatencyRecord {
            stage: stage.slug().to_string(),
            count: snap.count(),
            p50_ms: snap.p50() as f64 / 1e6,
            p95_ms: snap.p95() as f64 / 1e6,
            p99_ms: snap.p99() as f64 / 1e6,
            max_ms: snap.max() as f64 / 1e6,
        })
    }
}

/// The measured cost of observability itself: the same batch driven with
/// recording on and with the `DM_OBS` kill switch off.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOverheadRecord {
    /// Measured repetitions per mode.
    pub samples: usize,
    /// Throughput with stage tracing recording, keys per second.
    pub obs_on_kps: f64,
    /// Throughput with recording compiled to no-ops, keys per second.
    pub obs_off_kps: f64,
}

impl ObsOverheadRecord {
    /// Relative throughput cost of observability in percent (positive =
    /// recording is slower).
    pub fn delta_pct(&self) -> f64 {
        if self.obs_off_kps > 0.0 {
            (self.obs_off_kps - self.obs_on_kps) / self.obs_off_kps * 100.0
        } else {
            0.0
        }
    }
}

/// The `observability` section of `BENCH_lookup.json`: per-stage latency
/// percentiles for the standard DM-Z row plus the obs-on vs obs-off overhead.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservabilityReport {
    /// System the stages were sampled from (`DM-Z`).
    pub system: String,
    /// Keys per measured batch.
    pub batch_size: usize,
    /// Per-stage distributions, pipeline order, silent stages omitted.
    pub stages: Vec<StageLatencyRecord>,
    /// Measured recording overhead.
    pub overhead: ObsOverheadRecord,
}

/// One measured drift episode for the `health` section of `BENCH_lookup.json`:
/// off-pattern updates drive the drift signals up, the advisor recommends a
/// retrain with a predicted aux shrink, `maintenance()` acts on it, and the
/// actual shrink lands next to the prediction — the advise→act loop measured,
/// not asserted.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEpisodeRecord {
    /// System under test (`DM-Z`).
    pub system: String,
    /// Rows in the store before the storm.
    pub rows: usize,
    /// Off-pattern updates applied during the storm.
    pub update_rows: usize,
    /// Delta-overlay share of the aux table at advice time.
    pub overlay_ratio: f64,
    /// Write-time misprediction EMA at advice time.
    pub mispredict_ema: f64,
    /// Primary advice slug at the peak of the storm (`retrain` expected).
    pub advice: String,
    /// The advisor's `expected_aux_shrink_bytes` prediction.
    pub predicted_shrink_bytes: u64,
    /// Aux-table bytes immediately before maintenance.
    pub aux_bytes_before: u64,
    /// Aux-table bytes immediately after maintenance.
    pub aux_bytes_after: u64,
    /// Wall time of the `maintenance()` call in milliseconds.
    pub maintenance_ms: f64,
    /// Whether the post-maintenance report is back to `Healthy`.
    pub healthy_after: bool,
}

impl HealthEpisodeRecord {
    /// Aux bytes actually reclaimed by maintenance.
    pub fn measured_shrink_bytes(&self) -> u64 {
        self.aux_bytes_before.saturating_sub(self.aux_bytes_after)
    }
}

/// The `health` section of `BENCH_lookup.json`: what the workload-health layer
/// itself costs on the hot path, plus one end-to-end drift episode.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSection {
    /// Obs-on vs obs-off lookup throughput with the health layer active (heat
    /// touches, windowed recording, drift accounting) — the ≤ 1% budget the
    /// telemetry ships under.
    pub overhead: ObsOverheadRecord,
    /// The measured drift → advise → retrain → shrink episode.
    pub episode: HealthEpisodeRecord,
}

/// Serializes throughput records as a `BENCH_lookup.json` document so successive PRs
/// can diff per-backend batch-lookup throughput mechanically.  (Hand-rolled JSON —
/// the offline build environment has no serde.)
pub fn lookup_records_to_json(
    scale: &BenchScale,
    records: &[LookupThroughputRecord],
    cold_start: &[ColdStartRecord],
    inference: &[InferenceKernelRecord],
    server: &[ServerLoadRecord],
    observability: Option<&ObservabilityReport>,
    health: Option<&HealthSection>,
) -> String {
    fn escape(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn finite(v: f64) -> f64 {
        if v.is_finite() { v } else { f64::MAX }
    }
    // p99 is omitted, never invented, when the sample count can't support it.
    fn p99_field(p99: Option<f64>) -> String {
        match p99 {
            Some(v) => format!("\"p99_ms\": {:.6}, ", if v.is_finite() { v } else { f64::MAX }),
            None => String::new(),
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"lookup_batch\",\n");
    out.push_str(&format!("  \"scale_factor\": {},\n", scale.factor));
    out.push_str("  \"results\": [\n");
    for (i, record) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"threads\": {}, \"batch_size\": {}, \"samples\": {}, \"total_ms\": {:.6}, \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, {}\"keys_per_second\": {:.3}}}{}\n",
            escape(&record.system),
            record.threads,
            record.batch_size,
            record.samples,
            finite(record.total_ms),
            finite(record.p50_ms),
            finite(record.p95_ms),
            p99_field(record.p99_ms),
            finite(record.keys_per_second),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"server\": [\n");
    for (i, record) in server.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"window_us\": {:.1}, \"max_batch_keys\": {}, \"offered_kps\": {:.0}, \"achieved_kps\": {:.0}, \"clients\": {}, \"keys_per_request\": {}, \"samples\": {}, \"mean_ms\": {:.6}, \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, {}\"shed\": {}, \"batches\": {}, \"mean_coalesce_width\": {:.2}}}{}\n",
            escape(&record.mode),
            finite(record.window_us),
            record.max_batch_keys,
            finite(record.offered_kps),
            finite(record.achieved_kps),
            record.clients,
            record.keys_per_request,
            record.samples,
            finite(record.mean_ms),
            finite(record.p50_ms),
            finite(record.p95_ms),
            p99_field(record.p99_ms),
            record.shed,
            record.batches,
            finite(record.mean_coalesce_width),
            if i + 1 == server.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"inference\": [\n");
    for (i, record) in inference.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"activation\": \"{}\", \"rows\": {}, \"kernel\": \"{}\", \"packed_ns_per_row\": {:.2}, \"reference_ns_per_row\": {:.2}, \"speedup\": {:.2}}}{}\n",
            escape(&record.shape),
            escape(&record.activation),
            record.rows,
            escape(&record.kernel),
            finite(record.packed_ns_per_row),
            finite(record.reference_ns_per_row),
            finite(record.speedup()),
            if i + 1 == inference.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    match observability {
        Some(obs) => {
            out.push_str("  \"observability\": {\n");
            out.push_str(&format!(
                "    \"system\": \"{}\", \"batch_size\": {},\n",
                escape(&obs.system),
                obs.batch_size
            ));
            out.push_str("    \"stages\": [\n");
            for (i, stage) in obs.stages.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"stage\": \"{}\", \"count\": {}, \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"max_ms\": {:.6}}}{}\n",
                    escape(&stage.stage),
                    stage.count,
                    finite(stage.p50_ms),
                    finite(stage.p95_ms),
                    finite(stage.p99_ms),
                    finite(stage.max_ms),
                    if i + 1 == obs.stages.len() { "" } else { "," }
                ));
            }
            out.push_str("    ],\n");
            out.push_str(&format!(
                "    \"overhead\": {{\"samples\": {}, \"obs_on_kps\": {:.3}, \"obs_off_kps\": {:.3}, \"delta_pct\": {:.3}}}\n",
                obs.overhead.samples,
                finite(obs.overhead.obs_on_kps),
                finite(obs.overhead.obs_off_kps),
                finite(obs.overhead.delta_pct()),
            ));
            out.push_str("  },\n");
        }
        None => out.push_str("  \"observability\": null,\n"),
    }
    match health {
        Some(section) => {
            out.push_str("  \"health\": {\n");
            out.push_str(&format!(
                "    \"overhead\": {{\"samples\": {}, \"obs_on_kps\": {:.3}, \"obs_off_kps\": {:.3}, \"delta_pct\": {:.3}}},\n",
                section.overhead.samples,
                finite(section.overhead.obs_on_kps),
                finite(section.overhead.obs_off_kps),
                finite(section.overhead.delta_pct()),
            ));
            let e = &section.episode;
            out.push_str(&format!(
                "    \"episode\": {{\"system\": \"{}\", \"rows\": {}, \"update_rows\": {}, \"overlay_ratio\": {:.4}, \"mispredict_ema\": {:.4}, \"advice\": \"{}\", \"predicted_shrink_bytes\": {}, \"aux_bytes_before\": {}, \"aux_bytes_after\": {}, \"measured_shrink_bytes\": {}, \"maintenance_ms\": {:.3}, \"healthy_after\": {}}}\n",
                escape(&e.system),
                e.rows,
                e.update_rows,
                finite(e.overlay_ratio),
                finite(e.mispredict_ema),
                escape(&e.advice),
                e.predicted_shrink_bytes,
                e.aux_bytes_before,
                e.aux_bytes_after,
                e.measured_shrink_bytes(),
                finite(e.maintenance_ms),
                e.healthy_after,
            ));
            out.push_str("  },\n");
        }
        None => out.push_str("  \"health\": null,\n"),
    }
    out.push_str("  \"cold_start\": [\n");
    for (i, record) in cold_start.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"system\": \"{}\", \"rows\": {}, \"partitions\": {}, \"file_bytes\": {}, \"eager_bytes\": {}, \"open_ms\": {:.6}, \"first_batch_ms\": {:.6}, \"first_batch_keys\": {}, \"bytes_read_before_first_batch\": {}, \"read_fraction\": {:.4}}}{}\n",
            escape(&record.system),
            record.rows,
            record.partitions,
            record.file_bytes,
            record.eager_bytes,
            finite(record.open_ms),
            finite(record.first_batch_ms),
            record.first_batch_keys,
            record.bytes_read_before_first_batch,
            finite(record.read_fraction()),
            if i + 1 == cold_start.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_lookup.json` at the workspace root (where `Cargo.lock` lives —
/// cargo runs bench binaries from the package directory) and returns the path
/// written.  Falls back to the current directory outside a cargo invocation.
pub fn write_lookup_json(
    scale: &BenchScale,
    records: &[LookupThroughputRecord],
    cold_start: &[ColdStartRecord],
    inference: &[InferenceKernelRecord],
    server: &[ServerLoadRecord],
    observability: Option<&ObservabilityReport>,
    health: Option<&HealthSection>,
) -> std::io::Result<std::path::PathBuf> {
    let mut dir = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let mut found = false;
    for _ in 0..4 {
        if dir.join("Cargo.lock").exists() {
            found = true;
            break;
        }
        if !dir.pop() {
            break;
        }
    }
    if !found {
        dir = std::path::PathBuf::from(".");
    }
    let path = dir.join("BENCH_lookup.json");
    std::fs::write(
        &path,
        lookup_records_to_json(
            scale,
            records,
            cold_start,
            inference,
            server,
            observability,
            health,
        ),
    )?;
    Ok(path)
}

/// Runs the cold-start protocol for one store: snapshot to `path`, drop the
/// store, time `Snapshot::open`, then time one batch confined to the first
/// auxiliary partition, and account for exactly how many snapshot bytes were
/// touched along the way.
pub fn measure_cold_start(
    dm: dm_core::DeepMapping,
    path: &std::path::Path,
) -> Result<ColdStartRecord, dm_persist::PersistError> {
    use dm_persist::Snapshot;
    let system = dm.config().paper_name();
    let rows = dm.len();
    Snapshot::write(&dm, path)?;
    drop(dm);

    let open_start = Instant::now();
    let (reopened, stats) = Snapshot::open_with_stats(path)?;
    let open_ms = open_start.elapsed().as_secs_f64() * 1e3;

    // One batch confined to the first partition's key range: the shape a
    // point-lookup service sees right after a cold start.
    let directory = reopened.aux_table().partition_directory();
    let first_keys: Vec<u64> = directory
        .first()
        .map(|p| (p.min_key..=p.max_key).take(256).collect())
        .unwrap_or_else(|| vec![0]);
    let batch_start = Instant::now();
    reopened
        .lookup_batch(&first_keys)
        .map_err(|err| dm_persist::PersistError::Core(err.to_string()))?;
    let first_batch_ms = batch_start.elapsed().as_secs_f64() * 1e3;
    let lazy_read = reopened.metrics().snapshot().bytes_read;
    Ok(ColdStartRecord {
        system,
        rows,
        partitions: stats.partition_count,
        file_bytes: stats.file_bytes,
        eager_bytes: stats.eager_bytes,
        open_ms,
        first_batch_ms,
        first_batch_keys: first_keys.len(),
        bytes_read_before_first_batch: stats.eager_bytes + lazy_read,
    })
}

/// Storage size of a system in megabytes (compressed/on-disk footprint).
pub fn storage_mb(system: &SystemUnderTest) -> f64 {
    system.store.stats().disk_bytes as f64 / (1024.0 * 1024.0)
}

/// Table/figure printing helpers shared by the bench targets.
pub mod report {
    /// Prints a header banner naming the experiment being reproduced.
    pub fn banner(experiment: &str, description: &str) {
        println!();
        println!("================================================================================");
        println!("{experiment}: {description}");
        println!("================================================================================");
    }

    /// Prints one table row of `(label, cells)` with fixed-width columns.
    pub fn row(label: &str, cells: &[String]) {
        let mut line = format!("{label:<28}");
        for cell in cells {
            line.push_str(&format!("{cell:>14}"));
        }
        println!("{line}");
    }

    /// Formats a latency in milliseconds, marking absurd values as "failed".
    pub fn latency_cell(ms: f64) -> String {
        if ms > 1e12 {
            "failed".to_string()
        } else if ms >= 100.0 {
            format!("{ms:.0}")
        } else {
            format!("{ms:.2}")
        }
    }

    /// Formats a size in MB.
    pub fn size_cell(mb: f64) -> String {
        if mb >= 100.0 {
            format!("{mb:.0}")
        } else if mb >= 1.0 {
            format!("{mb:.1}")
        } else {
            format!("{mb:.3}")
        }
    }

    /// Formats a ratio/percentage cell.
    pub fn ratio_cell(ratio: f64) -> String {
        format!("{:.3}", ratio)
    }

    /// One-line wall-vs-phase-sum report, keeping the two time meanings apart:
    /// `wall_nanos` is measured on the caller thread around the whole batch,
    /// while the phase sum adds CPU time across all pool tasks and can exceed
    /// wall under parallelism.
    pub fn wall_vs_phases_line(snapshot: &dm_storage::LatencyBreakdown) -> String {
        format!(
            "time: {:.2} ms wall / {:.2} ms phase-sum (CPU across tasks; > wall means parallel overlap)",
            snapshot.wall_nanos as f64 / 1e6,
            snapshot.total().as_secs_f64() * 1e3,
        )
    }

    /// One-line buffer-pool / runtime observability summary for a measured system,
    /// from its metrics snapshot.
    pub fn pool_counters_line(snapshot: &dm_storage::LatencyBreakdown) -> String {
        format!(
            "pool: {} hits / {} misses / {} evictions / {} single-flight waits; exec: {} tasks / {} steals; prefetch: {} tasks / {} hits / {:.2} ms overlapped",
            snapshot.pool_hits,
            snapshot.pool_misses,
            snapshot.pool_evictions,
            snapshot.pool_single_flight_waits,
            snapshot.exec_tasks,
            snapshot.exec_steals,
            snapshot.prefetch_tasks,
            snapshot.prefetch_hits,
            snapshot.prefetch_overlap_nanos as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_data::SyntheticConfig;

    #[test]
    fn scale_reads_env_and_clamps() {
        let scale = BenchScale { factor: 0.002 };
        assert_eq!(scale.rows(1_500_000), 3_000);
        assert!(scale.rows(10) >= 1024);
        assert!(scale.batch(100_000) >= 100);
        assert!(scale.batch(100_000) <= 100_000);
    }

    #[test]
    fn machine_profiles_cover_the_three_paper_machines() {
        let small = MachineProfile::small(1_000_000, 0.3);
        assert_eq!(small.memory_budget_bytes, 300_000);
        assert_eq!(MachineProfile::medium().name, "medium");
        assert_eq!(MachineProfile::large().memory_budget_bytes, usize::MAX);
    }

    #[test]
    fn system_matrix_builds_and_answers_queries() {
        let dataset = SyntheticConfig::multi_high(2_000).generate();
        let machine = MachineProfile::large();
        let mut systems = build_baselines(&dataset, &machine);
        systems.extend(build_deepmapping_pair(&dataset, &machine));
        if let Some(ds) = build_deepsqueeze(&dataset, &machine) {
            systems.push(ds);
        }
        assert!(systems.len() >= 10);
        let keys: Vec<u64> = (0..500u64).collect();
        for system in &mut systems {
            let latency = measure_lookup(system, &keys);
            assert!(latency.total_ms() >= 0.0);
            assert!(storage_mb(system) > 0.0, "system {}", system.name);
        }
        // The exact stores must agree with each other (DS is lossy and excluded).
        let reference = systems[0].store.lookup_batch(&keys).unwrap();
        for system in systems.iter().filter(|s| s.name != "DS") {
            assert_eq!(system.store.lookup_batch(&keys).unwrap(), reference, "{}", system.name);
        }
    }

    #[test]
    fn lookup_json_is_machine_readable() {
        let scale = BenchScale { factor: 0.005 };
        let records = vec![
            LookupThroughputRecord::from_measurement(
                "DM-Z",
                1_000,
                MeasuredLatency {
                    wall: Duration::from_millis(2),
                    simulated_io: Duration::from_millis(1),
                },
            ),
            LookupThroughputRecord::from_measurement("ABC-\"Z\"", 100, MeasuredLatency::default()),
        ];
        let cold = vec![ColdStartRecord {
            system: "DM-Z".into(),
            rows: 30_000,
            partitions: 12,
            file_bytes: 400_000,
            eager_bytes: 50_000,
            open_ms: 1.25,
            first_batch_ms: 0.4,
            first_batch_keys: 256,
            bytes_read_before_first_batch: 64_000,
        }];
        let inference = vec![InferenceKernelRecord {
            shape: "35x100".into(),
            activation: "relu".into(),
            rows: 4096,
            kernel: "avx2+fma".into(),
            packed_ns_per_row: 120.0,
            reference_ns_per_row: 600.0,
        }];
        let server = vec![ServerLoadRecord {
            mode: "coalesced".into(),
            window_us: 100.0,
            max_batch_keys: 256,
            offered_kps: 100_000.0,
            achieved_kps: 98_000.0,
            clients: 4,
            keys_per_request: 1,
            samples: 49_000,
            mean_ms: 0.4,
            p50_ms: 0.35,
            p95_ms: 0.9,
            p99_ms: Some(1.4),
            shed: 0,
            batches: 400,
            mean_coalesce_width: 122.5,
        }];
        let obs = ObservabilityReport {
            system: "DM-Z".into(),
            batch_size: 25_000,
            stages: vec![StageLatencyRecord {
                stage: "inference".into(),
                count: 33,
                p50_ms: 0.8,
                p95_ms: 1.1,
                p99_ms: 1.3,
                max_ms: 1.31,
            }],
            overhead: ObsOverheadRecord {
                samples: 33,
                obs_on_kps: 99_000.0,
                obs_off_kps: 100_000.0,
            },
        };
        let health = HealthSection {
            overhead: ObsOverheadRecord {
                samples: 33,
                obs_on_kps: 99_500.0,
                obs_off_kps: 100_000.0,
            },
            episode: HealthEpisodeRecord {
                system: "DM-Z".into(),
                rows: 10_000,
                update_rows: 4_000,
                overlay_ratio: 0.68,
                mispredict_ema: 0.62,
                advice: "retrain".into(),
                predicted_shrink_bytes: 23_000,
                aux_bytes_before: 122_000,
                aux_bytes_after: 30_000,
                maintenance_ms: 85.0,
                healthy_after: true,
            },
        };
        let json = lookup_records_to_json(
            &scale,
            &records,
            &cold,
            &inference,
            &server,
            Some(&obs),
            Some(&health),
        );
        assert!(json.contains("\"benchmark\": \"lookup_batch\""));
        assert!(json.contains("\"observability\": {"));
        assert!(json.contains("\"stage\": \"inference\""));
        assert!(json.contains("\"obs_on_kps\": 99000.000"));
        assert!(json.contains("\"delta_pct\": 1.000"));
        assert!((obs.overhead.delta_pct() - 1.0).abs() < 1e-9);
        assert!(json.contains("\"health\": {"));
        assert!(json.contains("\"advice\": \"retrain\""));
        assert!(json.contains("\"measured_shrink_bytes\": 92000"));
        assert_eq!(health.episode.measured_shrink_bytes(), 92_000);
        assert!(json.contains("\"healthy_after\": true"));
        assert!(json.contains("\"delta_pct\": 0.500"));
        let without =
            lookup_records_to_json(&scale, &records, &cold, &inference, &server, None, None);
        assert!(without.contains("\"observability\": null"));
        assert!(without.contains("\"health\": null"));
        assert!(json.contains("\"cold_start\""));
        assert!(json.contains("\"inference\""));
        assert!(json.contains("\"shape\": \"35x100\""));
        assert!(json.contains("\"speedup\": 5.00"));
        assert!((inference[0].speedup() - 5.0).abs() < 1e-9);
        assert!(json.contains("\"eager_bytes\": 50000"));
        assert!(json.contains("\"read_fraction\": 0.1600"));
        assert!((cold[0].read_fraction() - 0.16).abs() < 1e-9);
        assert!(json.contains("\"system\": \"DM-Z\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"batch_size\": 1000"));
        assert!(json.contains("\"p50_ms\""));
        assert!(json.contains("\"p95_ms\""));
        assert!(json.contains("\"mode\": \"coalesced\""));
        assert!(json.contains("\"mean_coalesce_width\": 122.50"));
        assert!(json.contains("\"p99_ms\": 1.400000"));
        assert!(json.contains("\\\"Z\\\""), "quotes must be escaped: {json}");
        // Throughput of the 3 ms / 1000-key batch is ~333k keys/s.
        assert!((records[0].keys_per_second - 333_333.3).abs() < 1_000.0);
        // A single measurement degenerates to flat p50/p95 — and p99 is
        // *omitted*, not invented, below the supported sample count.
        assert_eq!(records[0].p50_ms, records[0].total_ms);
        assert_eq!(records[0].p99_ms, None);
        let result_rows: String = json
            .lines()
            .skip_while(|l| !l.contains("\"results\""))
            .take_while(|l| !l.contains("\"server\""))
            .collect();
        assert!(
            !result_rows.contains("p99_ms"),
            "under-sampled rows must omit p99: {result_rows}"
        );
        // A zero-latency measurement must not emit non-JSON tokens like `inf`
        // (as a value; the "inference" section name contains the substring).
        assert!(!json.contains(": inf"));
    }

    #[test]
    fn record_percentiles_summarize_a_sample_distribution() {
        let ms = |v: u64| MeasuredLatency {
            wall: Duration::from_millis(v),
            simulated_io: Duration::ZERO,
        };
        // 1..=20 ms, shuffled: p50 ≈ 11 ms, p95 ≈ 19 ms — and 20 samples is
        // below P99_MIN_SAMPLES, so p99 is withheld rather than aliased to p95.
        let samples: Vec<MeasuredLatency> =
            (1..=20u64).map(|v| ms(((v * 7) % 20) + 1)).collect();
        let record = LookupThroughputRecord::from_samples("DM-Z", 2, 1_000, &samples);
        assert_eq!(record.threads, 2);
        assert_eq!(record.samples, 20);
        assert!((record.total_ms - 10.5).abs() < 1e-6, "mean {}", record.total_ms);
        assert_eq!(record.p50_ms, 11.0);
        assert_eq!(record.p95_ms, 19.0);
        assert_eq!(record.p99_ms, None);
        // Aggregate throughput counts every thread's keys.
        assert!((record.keys_per_second - 2.0 * 1_000.0 / 0.0105).abs() < 1.0);
        // At P99_MIN_SAMPLES and beyond the nearest-rank p99 is a distinct
        // statistic again (1..=31 ms: p95 = 30, p99 = 31).
        let samples: Vec<MeasuredLatency> = (1..=31u64).map(ms).collect();
        let record = LookupThroughputRecord::from_samples("DM-Z", 1, 1_000, &samples);
        assert_eq!(record.p95_ms, 30.0);
        assert_eq!(record.p99_ms, Some(31.0));
        assert!(record.p50_ms <= record.p95_ms && record.p95_ms <= 31.0);
    }

    #[test]
    fn stage_record_reads_histogram_snapshots_and_skips_silent_stages() {
        let hist = dm_obs::Histogram::new();
        let empty = StageLatencyRecord::from_snapshot(dm_obs::Stage::Probe, &hist.snapshot());
        assert_eq!(empty, None, "silent stages are omitted, not zero-filled");
        hist.record_nanos(2_000_000);
        let record =
            StageLatencyRecord::from_snapshot(dm_obs::Stage::Probe, &hist.snapshot()).unwrap();
        assert_eq!(record.stage, "probe");
        assert_eq!(record.count, 1);
        assert_eq!(record.max_ms, 2.0, "max is exact");
        assert!(record.p50_ms >= 2.0 && record.p50_ms <= 2.0 * 1.125);
    }

    #[test]
    fn wall_vs_phases_line_keeps_both_time_meanings() {
        let metrics = Metrics::new();
        metrics.add_time(dm_storage::Phase::NeuralNetwork, Duration::from_millis(8));
        metrics.add_wall(Duration::from_millis(5));
        let line = report::wall_vs_phases_line(&metrics.snapshot());
        assert!(line.contains("5.00 ms wall"), "{line}");
        assert!(line.contains("8.00 ms phase-sum"), "{line}");
    }

    #[test]
    fn pool_counters_line_reads_the_snapshot() {
        let metrics = Metrics::new();
        metrics.add_pool_hit();
        metrics.add_pool_miss();
        metrics.add_pool_single_flight_wait();
        metrics.add_exec(5, 2, 100);
        metrics.add_prefetch(3, 2, 1_500_000);
        let line = report::pool_counters_line(&metrics.snapshot());
        assert!(line.contains("1 hits"));
        assert!(line.contains("1 misses"));
        assert!(line.contains("1 single-flight waits"));
        assert!(line.contains("5 tasks"));
        assert!(line.contains("2 steals"));
        assert!(line.contains("3 tasks / 2 hits / 1.50 ms overlapped"));
    }

    /// The multi-threaded record must keep per-op latency and aggregate
    /// throughput separate: adding issuing threads must not inflate the
    /// latency fields even though every thread's wall-clock overlaps.
    #[test]
    fn concurrent_records_separate_per_op_latency_from_aggregate_throughput() {
        let ms = |v: u64| MeasuredLatency {
            wall: Duration::from_millis(v),
            simulated_io: Duration::ZERO,
        };
        // 4 threads × 2 rounds, each batch measured at 10 ms by its thread;
        // each round's wall is also ~10 ms because the batches overlap.
        let per_op = vec![ms(10); 8];
        let rounds = vec![ms(10); 2];
        let record = LookupThroughputRecord::from_concurrent("DM-Z", 4, 1_000, &per_op, &rounds);
        assert_eq!(record.threads, 4);
        assert!((record.total_ms - 10.0).abs() < 1e-9, "per-op mean stays 10 ms");
        assert_eq!(record.p95_ms, 10.0);
        assert_eq!(record.p99_ms, None, "8 samples cannot support a p99");
        // 4 threads * 1000 keys * 2 rounds / 20 ms = 400k keys/s aggregate.
        assert!((record.keys_per_second - 400_000.0).abs() < 1.0);
        // The same measurements fed through the single-issuer constructor would
        // have conflated occupancy with latency; from_concurrent must not.
        let conflated = LookupThroughputRecord::from_samples("DM-Z", 4, 1_000, &per_op);
        assert!(conflated.keys_per_second > record.keys_per_second / 2.0);
        assert_eq!(record.total_ms, conflated.total_ms);
    }

    #[test]
    fn report_cells_format_reasonably() {
        assert_eq!(report::latency_cell(5.0), "5.00");
        assert_eq!(report::latency_cell(1234.0), "1234");
        assert_eq!(report::latency_cell(1e13), "failed");
        assert_eq!(report::size_cell(0.5), "0.500");
        assert_eq!(report::size_cell(12.34), "12.3");
        assert_eq!(report::ratio_cell(0.25), "0.250");
    }
}
