//! Table III: storage size and query latency after inserting growing volumes of data
//! that FOLLOWS the original distribution (multi-column synthetic datasets).
//!
//! The paper inserts 0–600 MB into a 1 GB dataset and compares DM-Z (never retrains),
//! DM-Z1 (retrains once 200 MB has been inserted), AB, ABC-Z, HB and HBC-Z.  Because
//! the inserted data follows the learned distribution, DeepMapping's model generalizes
//! to much of it and the auxiliary table grows slowly — the storage gap over the
//! baselines widens with every increment.  Here the base dataset is scaled down and
//! increments are 10 % of it; DM-Z1 retrains after the second increment, as in the
//! paper.

use dm_bench::sweeps::{run_table, SweepKind};
use dm_bench::{report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Table III",
        "storage and query latency after inserting data that follows the original distribution",
    );
    run_table(&scale, SweepKind::InsertInDistribution);
}
