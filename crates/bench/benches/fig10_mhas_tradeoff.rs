//! Figure 10: progression of the compression-ratio vs latency trade-off during the
//! MHAS search (TPC-H part table).
//!
//! Each dot in the paper's figure is one sampled architecture, colored by search
//! stage; early samples scatter widely, later samples cluster in a small
//! low-ratio/low-latency region.  This harness prints each sampled architecture's
//! (stage, compression ratio, estimated latency, parameter count) and a per-stage
//! dispersion summary that makes the clustering visible in text form.

use dm_bench::{report, BenchScale};
use dm_core::encoder::MappingSchema;
use dm_core::{DeepMappingConfig, MhasConfig, MhasSearch, SearchSample};
use dm_data::tpch::TpchConfig;
use dm_data::TpchGenerator;

fn stage_of(sample: &SearchSample, iterations: usize, stages: usize) -> usize {
    (sample.iteration * stages / iterations.max(1)).min(stages - 1)
}

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Figure 10",
        &format!(
            "compression ratio vs latency of sampled architectures across MHAS search stages (TPC-H part, scale {})",
            scale.factor
        ),
    );
    let dataset = TpchGenerator::new(TpchConfig::scale(scale.factor)).part();
    let rows = dataset.rows();
    let schema = MappingSchema::infer(&rows, 0).expect("schema");
    let config = MhasConfig {
        iterations: 48,
        model_epochs: 1,
        controller_every: 4,
        sample_rows: 2048,
        ..MhasConfig::default()
    };
    let mut search = MhasSearch::new(&schema, config.clone(), 0xf10).expect("search");
    let outcome = search
        .run(&rows, &DeepMappingConfig::default())
        .expect("search run");

    let stages = 4usize;
    report::row(
        "sample",
        &[
            "stage".to_string(),
            "ratio".to_string(),
            "latency(ms)".to_string(),
            "params".to_string(),
        ],
    );
    for sample in &outcome.history {
        report::row(
            &format!("iter {}", sample.iteration),
            &[
                format!("{}", stage_of(sample, config.iterations, stages)),
                report::ratio_cell(sample.compression_ratio),
                report::latency_cell(sample.estimated_latency_ms),
                format!("{}", sample.parameters),
            ],
        );
    }

    println!();
    report::row(
        "stage summary",
        &[
            "mean ratio".to_string(),
            "ratio spread".to_string(),
            "mean lat".to_string(),
            "samples".to_string(),
        ],
    );
    for stage in 0..stages {
        let members: Vec<&SearchSample> = outcome
            .history
            .iter()
            .filter(|s| stage_of(s, config.iterations, stages) == stage)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mean_ratio =
            members.iter().map(|s| s.compression_ratio).sum::<f64>() / members.len() as f64;
        let spread = members
            .iter()
            .map(|s| (s.compression_ratio - mean_ratio).abs())
            .fold(0.0f64, f64::max);
        let mean_lat =
            members.iter().map(|s| s.estimated_latency_ms).sum::<f64>() / members.len() as f64;
        report::row(
            &format!("stage {stage}"),
            &[
                report::ratio_cell(mean_ratio),
                report::ratio_cell(spread),
                report::latency_cell(mean_lat),
                format!("{}", members.len()),
            ],
        );
    }
    println!();
    println!("(later stages should show lower mean ratio and smaller spread — the clustering of Figure 10)");
}
