//! Per-backend batch-lookup throughput, emitted both as a printed table and as the
//! machine-readable `BENCH_lookup.json` report so successive PRs can track the
//! lookup-path performance trajectory mechanically.
//!
//! Each system is measured over repeated batches, so the JSON carries mean and
//! p50/p95/p99 per-batch latency, and each row is followed by the buffer-pool /
//! runtime observability counters (hits, misses, evictions, single-flight waits,
//! exec tasks/steals).  A second section re-measures the DeepMapping backend with
//! 1/2/4 OS threads hammering one `Arc<DeepMapping>` concurrently — the scaling
//! story the `dm-exec` runtime and the sharded single-flight buffer pool exist
//! for.
//!
//! Run with `cargo bench -p dm-bench --bench lookup_throughput`; the JSON lands at
//! the workspace root.

use dm_bench::{
    build_baselines, build_deepmapping_pair, build_deepmapping_store, build_deepsqueeze,
    measure_cold_start, measure_lookup_samples, report, write_lookup_json, BenchScale,
    ColdStartRecord, LookupThroughputRecord, MachineProfile, MeasuredLatency,
};
use dm_compress::Codec;
use dm_core::{DeepMappingBuilder, MappingSchema, SearchStrategy, TrainingConfig, KEY_HEADROOM};
use dm_data::{LookupWorkload, SyntheticConfig};
use dm_nn::{MultiTaskSpec, TaskHeadSpec};
use dm_storage::LookupBuffer;
use std::sync::Arc;
use std::time::Instant;

/// Measured batch repetitions per (system, batch size) cell.
const SAMPLES: usize = 9;
/// Batch rounds each thread issues in the multi-threaded section.
const MT_ROUNDS: usize = 4;

fn main() {
    let scale = BenchScale::from_env();
    let dataset = SyntheticConfig::multi_high(scale.rows(2_000_000)).generate();
    let machine = MachineProfile::large();

    report::banner(
        "BENCH_lookup",
        "per-backend batch-lookup throughput (in-memory machine profile)",
    );
    println!(
        "dataset: {} rows x {} value columns (scale {})",
        dataset.num_rows(),
        dataset.num_value_columns(),
        scale.factor
    );

    let mut systems = build_baselines(&dataset, &machine);
    systems.extend(build_deepmapping_pair(&dataset, &machine));
    if let Some(ds) = build_deepsqueeze(&dataset, &machine) {
        systems.push(ds);
    }

    let batch_sizes = [1_000usize, scale.batch(100_000)];
    let mut header: Vec<String> = Vec::new();
    for &batch in &batch_sizes {
        header.push(format!("B={batch}"));
        header.push("p95".to_string());
        header.push("keys/s".to_string());
    }
    report::row("system", &header);

    let mut records: Vec<LookupThroughputRecord> = Vec::new();
    for system in &mut systems {
        let mut cells = Vec::new();
        let mut counters = Vec::new();
        for &batch in &batch_sizes {
            let keys = LookupWorkload::hits_only(batch).generate(&dataset);
            let samples = measure_lookup_samples(system, &keys, SAMPLES);
            counters.push(format!(
                "  B={batch}: {}",
                report::pool_counters_line(&system.metrics.snapshot())
            ));
            let record = LookupThroughputRecord::from_samples(&system.name, 1, batch, &samples);
            cells.push(report::latency_cell(record.total_ms));
            cells.push(report::latency_cell(record.p95_ms));
            cells.push(format!("{:.0}", record.keys_per_second));
            records.push(record);
        }
        report::row(&system.name, &cells);
        for line in counters {
            println!("{line}");
        }
    }

    // Multi-threaded scaling: T OS threads hammer one shared Arc<DeepMapping>
    // (each with its own reusable LookupBuffer), so concurrent batches exercise
    // the sharded single-flight pool and the parallel pipeline stages together.
    report::banner(
        "BENCH_lookup (multi-threaded)",
        "DM backend, 1/2/4 OS threads over one shared Arc<DeepMapping>",
    );
    let training = TrainingConfig {
        epochs: 30,
        batch_size: 512,
        ..TrainingConfig::default()
    };
    let dm = Arc::new(build_deepmapping_store(
        &dataset,
        Codec::Lz,
        &machine,
        training,
    ));
    let name = dm.config().paper_name();
    let batch = scale.batch(100_000);
    let keys = LookupWorkload::hits_only(batch).generate(&dataset);
    report::row("threads", &["B".into(), "ms/round".into(), "keys/s".into()]);
    for &threads in &[1usize, 2, 4] {
        // Warm the pool and per-thread buffers once outside the timed region.
        let mut warm = LookupBuffer::new();
        dm.lookup_batch_into(&keys, &mut warm).expect("warmup");
        let mut samples: Vec<MeasuredLatency> = Vec::with_capacity(MT_ROUNDS);
        for _ in 0..MT_ROUNDS {
            dm.metrics().reset();
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let dm = Arc::clone(&dm);
                    let keys = &keys;
                    s.spawn(move || {
                        let mut buffer = LookupBuffer::new();
                        dm.lookup_batch_into(keys, &mut buffer).expect("lookup");
                    });
                }
            });
            // Simulated disk time accumulates across the round's threads, the
            // same accounting the single-thread sweep applies per batch.
            samples.push(MeasuredLatency {
                wall: start.elapsed(),
                simulated_io: std::time::Duration::from_nanos(
                    dm.metrics().snapshot().simulated_io_nanos,
                ),
            });
        }
        let record = LookupThroughputRecord::from_samples(&name, threads, batch, &samples);
        report::row(
            &format!("{name} x{threads}"),
            &[
                format!("{batch}"),
                report::latency_cell(record.total_ms),
                format!("{:.0}", record.keys_per_second),
            ],
        );
        println!(
            "  {}",
            report::pool_counters_line(&dm.metrics().snapshot())
        );
        // The threads=1 run is printed for context but not recorded: its
        // methodology (fresh store, thread spawn, round wall-clock) differs from
        // the sweep's, and the JSON already carries the canonical
        // (DM-Z, threads=1) row.  Consumers key on (system, threads, batch).
        if threads > 1 {
            records.push(record);
        }
    }

    // Cold start: snapshot a store whose auxiliary partitions dominate the file
    // (low-correlation data, deliberately small fixed model), drop it, reopen it
    // from the file and serve one single-partition batch — measuring how little
    // of the snapshot the lazy open actually reads.
    report::banner(
        "BENCH_lookup (cold start)",
        "snapshot open time, time-to-first-batch, bytes read vs. snapshot size",
    );
    let cold_records = match run_cold_start(&scale) {
        Ok(record) => {
            report::row(
                "system",
                &[
                    "open ms".into(),
                    "1st batch ms".into(),
                    "read/total".into(),
                ],
            );
            report::row(
                &record.system,
                &[
                    report::latency_cell(record.open_ms),
                    report::latency_cell(record.first_batch_ms),
                    format!(
                        "{}/{} ({:.1}%)",
                        record.bytes_read_before_first_batch,
                        record.file_bytes,
                        100.0 * record.read_fraction()
                    ),
                ],
            );
            vec![record]
        }
        Err(err) => {
            eprintln!("cold-start section failed: {err}");
            Vec::new()
        }
    };

    match write_lookup_json(&scale, &records, &cold_records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(err) => eprintln!("\nfailed to write BENCH_lookup.json: {err}"),
    }
}

/// Builds the cold-start store: low-correlation rows (the auxiliary table holds
/// nearly everything, so the snapshot is partition-dominated — the honest
/// setting for a lazy-loading claim) with a deliberately small fixed
/// architecture, then snapshots/reopens it through `measure_cold_start`.
fn run_cold_start(scale: &BenchScale) -> Result<ColdStartRecord, Box<dyn std::error::Error>> {
    let rows = SyntheticConfig::multi_low(scale.rows(2_000_000).max(30_000))
        .generate()
        .rows();
    let schema = MappingSchema::infer(&rows, KEY_HEADROOM)?;
    let spec = MultiTaskSpec {
        input_dim: schema.input_dim(),
        shared_hidden: vec![32],
        heads: schema
            .cardinalities
            .iter()
            .map(|&card| TaskHeadSpec::direct(card as usize))
            .collect(),
    };
    let dm = DeepMappingBuilder::dm_z()
        .training(TrainingConfig {
            epochs: 4,
            batch_size: 4096,
            ..TrainingConfig::default()
        })
        .search(SearchStrategy::Fixed(spec))
        .partition_bytes(32 * 1024)
        .build(&rows)?;
    let dir = std::env::temp_dir().join(format!("dm-bench-cold-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("cold_start.dmss");
    let record = measure_cold_start(dm, &path)?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(record)
}
