//! Per-backend batch-lookup throughput, emitted both as a printed table and as the
//! machine-readable `BENCH_lookup.json` report so successive PRs can track the
//! lookup-path performance trajectory mechanically.
//!
//! Run with `cargo bench -p dm-bench --bench lookup_throughput`; the JSON lands in
//! the invocation directory.

use dm_bench::{
    build_baselines, build_deepmapping_pair, build_deepsqueeze, measure_lookup, report,
    write_lookup_json, BenchScale, LookupThroughputRecord, MachineProfile,
};
use dm_data::{LookupWorkload, SyntheticConfig};

fn main() {
    let scale = BenchScale::from_env();
    let dataset = SyntheticConfig::multi_high(scale.rows(2_000_000)).generate();
    let machine = MachineProfile::large();

    report::banner(
        "BENCH_lookup",
        "per-backend batch-lookup throughput (in-memory machine profile)",
    );
    println!(
        "dataset: {} rows x {} value columns (scale {})",
        dataset.num_rows(),
        dataset.num_value_columns(),
        scale.factor
    );

    let mut systems = build_baselines(&dataset, &machine);
    systems.extend(build_deepmapping_pair(&dataset, &machine));
    if let Some(ds) = build_deepsqueeze(&dataset, &machine) {
        systems.push(ds);
    }

    let batch_sizes = [1_000usize, scale.batch(100_000)];
    let mut header: Vec<String> = Vec::new();
    for &batch in &batch_sizes {
        header.push(format!("B={batch}"));
        header.push("keys/s".to_string());
    }
    report::row("system", &header);

    let mut records: Vec<LookupThroughputRecord> = Vec::new();
    for system in &mut systems {
        let mut cells = Vec::new();
        for &batch in &batch_sizes {
            let keys = LookupWorkload::hits_only(batch).generate(&dataset);
            // Warm the buffer pool and the lookup arena, then measure.
            measure_lookup(system, &keys);
            let latency = measure_lookup(system, &keys);
            let record = LookupThroughputRecord::from_measurement(&system.name, batch, latency);
            cells.push(report::latency_cell(record.total_ms));
            cells.push(format!("{:.0}", record.keys_per_second));
            records.push(record);
        }
        report::row(&system.name, &cells);
    }

    match write_lookup_json(&scale, &records) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(err) => eprintln!("\nfailed to write BENCH_lookup.json: {err}"),
    }
}
