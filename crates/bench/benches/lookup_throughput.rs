//! Per-backend batch-lookup throughput, emitted both as a printed table and as the
//! machine-readable `BENCH_lookup.json` report so successive PRs can track the
//! lookup-path performance trajectory mechanically.
//!
//! Each system is measured over repeated batches, so the JSON carries mean and
//! p50/p95/p99 per-batch latency, and each row is followed by the buffer-pool /
//! runtime observability counters (hits, misses, evictions, single-flight waits,
//! exec tasks/steals).  A second section re-measures the DeepMapping backend with
//! 1/2/4 OS threads hammering one `Arc<DeepMapping>` concurrently — the scaling
//! story the `dm-exec` runtime and the sharded single-flight buffer pool exist
//! for.
//!
//! Run with `cargo bench -p dm-bench --bench lookup_throughput`; the JSON lands at
//! the workspace root.

use dm_bench::{
    build_baselines, build_deepmapping_pair, build_deepsqueeze, distribution_ms,
    measure_cold_start, measure_lookup_samples,
    open_loop::{self, OpenLoopConfig, OpenLoopOutcome},
    report, write_lookup_json, BenchScale, ColdStartRecord, HealthEpisodeRecord, HealthSection,
    InferenceKernelRecord, LookupThroughputRecord, MachineProfile, MeasuredLatency,
    ObsOverheadRecord, ObservabilityReport, ServerLoadRecord, StageLatencyRecord, SystemUnderTest,
};
use dm_core::{
    DeepMappingBuilder, MappingSchema, Quantization, SearchStrategy, TrainingConfig, KEY_HEADROOM,
};
use dm_data::{LookupWorkload, SyntheticConfig};
use dm_nn::{kernel, Activation, Matrix, MultiTaskSpec, TaskHeadSpec};
use dm_server::{QueryServer, ServerConfig};
use dm_storage::{DiskProfile, LookupBuffer, MutableStore, Row, TupleStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measured batch repetitions per (system, batch size) cell.  33 samples give
/// nearest-rank percentiles a distinct p99 rank (see
/// [`dm_bench::P99_MIN_SAMPLES`]); 9 samples made p99 alias to p95.
const SAMPLES: usize = 33;
/// Batch rounds each thread issues in the multi-threaded section; with 4
/// threads the per-op sample count stays above the p99 threshold.
const MT_ROUNDS: usize = 13;

fn main() {
    let scale = BenchScale::from_env();
    let dataset = SyntheticConfig::multi_high(scale.rows(2_000_000)).generate();
    let machine = MachineProfile::large();

    report::banner(
        "BENCH_lookup",
        "per-backend batch-lookup throughput (in-memory machine profile)",
    );
    println!(
        "dataset: {} rows x {} value columns (scale {})",
        dataset.num_rows(),
        dataset.num_value_columns(),
        scale.factor
    );

    let mut systems = build_baselines(&dataset, &machine);
    systems.extend(build_deepmapping_pair(&dataset, &machine));
    if let Some(ds) = build_deepsqueeze(&dataset, &machine) {
        systems.push(ds);
    }

    let batch_sizes = [1_000usize, scale.batch(100_000)];
    let mut header: Vec<String> = Vec::new();
    for &batch in &batch_sizes {
        header.push(format!("B={batch}"));
        header.push("p95".to_string());
        header.push("keys/s".to_string());
    }
    report::row("system", &header);

    let mut records: Vec<LookupThroughputRecord> = Vec::new();
    for system in &mut systems {
        let mut cells = Vec::new();
        let mut counters = Vec::new();
        for &batch in &batch_sizes {
            let keys = LookupWorkload::hits_only(batch).generate(&dataset);
            let samples = measure_lookup_samples(system, &keys, SAMPLES);
            counters.push(format!(
                "  B={batch}: {}",
                report::pool_counters_line(&system.metrics.snapshot())
            ));
            let record = LookupThroughputRecord::from_samples(&system.name, 1, batch, &samples);
            cells.push(report::latency_cell(record.total_ms));
            cells.push(report::latency_cell(record.p95_ms));
            cells.push(format!("{:.0}", record.keys_per_second));
            records.push(record);
        }
        report::row(&system.name, &cells);
        for line in counters {
            println!("{line}");
        }
    }

    // Multi-threaded scaling: T OS threads hammer one shared Arc<DeepMapping>
    // (each with its own reusable LookupBuffer), so concurrent batches exercise
    // the sharded single-flight pool and the parallel pipeline stages together.
    // Latency and throughput are kept apart: each thread times its *own*
    // batches (per-op latency percentiles), while aggregate keys/s comes from
    // the wall-clock of whole rounds — per-thread wall time is never summed
    // into a per-op figure.
    report::banner(
        "BENCH_lookup (multi-threaded)",
        "DM backend, 1/2/4 OS threads over one shared Arc<DeepMapping>",
    );
    let training = TrainingConfig {
        epochs: 30,
        batch_size: 512,
        ..TrainingConfig::default()
    };
    // A dedicated 2-thread dm-exec pool so the parallel pipeline stages —
    // including the stage-2/3 prefetch overlap — engage regardless of host
    // core count; the prefetch counters below are the observable.
    let dm = Arc::new(
        DeepMappingBuilder::dm_z()
            .memory_budget(machine.memory_budget_bytes)
            .disk_profile(machine.disk)
            .partition_bytes(32 * 1024)
            .quantization(Quantization::Int8)
            .training(training)
            .exec_threads(2)
            .build(&dataset.rows())
            .expect("DeepMapping build"),
    );
    let name = dm.config().paper_name();
    let batch = scale.batch(100_000);
    let keys = LookupWorkload::hits_only(batch).generate(&dataset);
    report::row(
        "threads",
        &[
            "B".into(),
            "per-op ms".into(),
            "p95".into(),
            "agg keys/s".into(),
        ],
    );
    for &threads in &[1usize, 2, 4] {
        // Warm the pool and per-thread buffers once outside the timed region.
        let mut warm = LookupBuffer::new();
        dm.lookup_batch_into(&keys, &mut warm).expect("warmup");
        let mut per_op: Vec<MeasuredLatency> = Vec::with_capacity(MT_ROUNDS * threads);
        let mut rounds: Vec<MeasuredLatency> = Vec::with_capacity(MT_ROUNDS);
        for _ in 0..MT_ROUNDS {
            dm.metrics().reset();
            let round_start = Instant::now();
            let batch_walls: Vec<Duration> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let dm = Arc::clone(&dm);
                        let keys = &keys;
                        s.spawn(move || {
                            let mut buffer = LookupBuffer::new();
                            let start = Instant::now();
                            dm.lookup_batch_into(keys, &mut buffer).expect("lookup");
                            start.elapsed()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("issuing thread"))
                    .collect()
            });
            // Simulated disk time accumulates on shared metrics across the
            // round's threads; the round keeps the full amount (aggregate
            // throughput) and each batch carries an even share, so per-op
            // latency means wall + simulated I/O on every row of the JSON —
            // threads=1 sweep and multi-threaded section alike.
            let round_io = Duration::from_nanos(dm.metrics().snapshot().simulated_io_nanos);
            rounds.push(MeasuredLatency {
                wall: round_start.elapsed(),
                simulated_io: round_io,
            });
            per_op.extend(batch_walls.into_iter().map(|wall| MeasuredLatency {
                wall,
                simulated_io: round_io / threads as u32,
            }));
        }
        let record = LookupThroughputRecord::from_concurrent(&name, threads, batch, &per_op, &rounds);
        report::row(
            &format!("{name} x{threads}"),
            &[
                format!("{batch}"),
                report::latency_cell(record.total_ms),
                report::latency_cell(record.p95_ms),
                format!("{:.0}", record.keys_per_second),
            ],
        );
        println!(
            "  {}",
            report::pool_counters_line(&dm.metrics().snapshot())
        );
        // The MT rows used to read like per-op latency grew with threads —
        // that was the phase sum (CPU across tasks) standing in for time.
        // Both meanings, side by side, from the last round's metrics:
        println!("  {}", report::wall_vs_phases_line(&dm.metrics().snapshot()));
        // The threads=1 run is printed for context but not recorded: its
        // methodology (fresh store, thread spawn, round wall-clock) differs from
        // the sweep's, and the JSON already carries the canonical
        // (DM-Z, threads=1) row.  Consumers key on (system, threads, batch).
        if threads > 1 {
            records.push(record);
        }
    }

    // Stage-2/3 overlap: the high-correlation dataset above leaves the aux
    // table nearly empty, so demonstrate the prefetch on a partition-dominated
    // low-correlation store instead — a cold batch spanning every partition
    // must show its loads overlapping inference via the prefetch counters.
    report::banner(
        "BENCH_lookup (stage-2/3 overlap)",
        "cold partition loads prefetched during inference (low-correlation store)",
    );
    match run_overlap_probe(&scale) {
        Ok(line) => println!("{line}"),
        Err(err) => eprintln!("overlap section failed: {err}"),
    }

    // Inference micro-kernels: ns/row per dense layer shape through the
    // packed-panel SIMD kernel vs the pre-kernel reference path, so the
    // kernel's contribution is visible separately from end-to-end lookups.
    report::banner(
        "BENCH_lookup (inference kernels)",
        "ns/row per dense layer shape: packed panels vs matmul+bias+activation",
    );
    let inference_records = run_inference_micro();
    report::row(
        "shape",
        &[
            "rows".into(),
            "packed ns/row".into(),
            "ref ns/row".into(),
            "speedup".into(),
            "kernel".into(),
        ],
    );
    for record in &inference_records {
        report::row(
            &format!("{} {}", record.shape, record.activation),
            &[
                format!("{}", record.rows),
                format!("{:.1}", record.packed_ns_per_row),
                format!("{:.1}", record.reference_ns_per_row),
                format!("{:.2}x", record.speedup()),
                record.kernel.clone(),
            ],
        );
    }

    // CACHE_CHUNK_ROWS sweep: serial cache-blocked inference over the MT store's
    // trained network at several chunk sizes, so retunes of the committed
    // constant are grounded in a measurement against the current kernels.
    report::banner(
        "BENCH_lookup (chunk sweep)",
        "serial forward ns/row by cache chunk size (committed CACHE_CHUNK_ROWS marked *)",
    );
    run_chunk_sweep(&dm, &keys);

    // Cold start: snapshot a store whose auxiliary partitions dominate the file
    // (low-correlation data, deliberately small fixed model), drop it, reopen it
    // from the file and serve one single-partition batch — measuring how little
    // of the snapshot the lazy open actually reads.
    report::banner(
        "BENCH_lookup (cold start)",
        "snapshot open time, time-to-first-batch, bytes read vs. snapshot size",
    );
    let cold_records = match run_cold_start(&scale) {
        Ok(record) => {
            report::row(
                "system",
                &[
                    "open ms".into(),
                    "1st batch ms".into(),
                    "read/total".into(),
                ],
            );
            report::row(
                &record.system,
                &[
                    report::latency_cell(record.open_ms),
                    report::latency_cell(record.first_batch_ms),
                    format!(
                        "{}/{} ({:.1}%)",
                        record.bytes_read_before_first_batch,
                        record.file_bytes,
                        100.0 * record.read_fraction()
                    ),
                ],
            );
            vec![record]
        }
        Err(err) => {
            eprintln!("cold-start section failed: {err}");
            Vec::new()
        }
    };

    // Open-loop server saturation: fixed offered load (not closed-loop), per-
    // request latency measured from the *scheduled* arrival, coalesced
    // QueryServer vs. uncoalesced per-request pipeline calls on the same
    // out-of-memory tenant.  The sweep exposes each mode's throughput knee and
    // the coalescing-window trade-off at low load.
    report::banner(
        "BENCH_lookup (server)",
        "open-loop offered-load sweep: coalescing QueryServer vs direct per-request calls",
    );
    let server_records = match run_server_sweep(&scale) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("server section failed: {err}");
            Vec::new()
        }
    };

    // Observability: per-stage latency percentiles for the standard DM-Z row,
    // plus the measured cost of recording them (the same batch driven with
    // tracing on, then with the kill switch off).
    report::banner(
        "BENCH_lookup (observability)",
        "per-stage p50/p95/p99 for DM-Z and the obs-on vs obs-off overhead",
    );
    let obs_report = systems
        .iter_mut()
        .find(|s| s.name == "DM-Z")
        .map(|dmz| run_observability_section(dmz, &dataset, scale.batch(100_000)));

    // Workload health: what the health layer (heat touches, windowed tails,
    // drift accounting) costs on the hot path, and one measured drift episode
    // — off-pattern updates drive the advisor to `Retrain`, maintenance acts
    // on it, and the aux shrink lands next to the advisor's prediction.
    report::banner(
        "BENCH_lookup (health)",
        "health-layer overhead and the drift -> advise -> retrain -> shrink episode",
    );
    let health_section = match run_health_section(&scale) {
        Ok(section) => Some(section),
        Err(err) => {
            eprintln!("health section failed: {err}");
            None
        }
    };

    match write_lookup_json(
        &scale,
        &records,
        &cold_records,
        &inference_records,
        &server_records,
        obs_report.as_ref(),
        health_section.as_ref(),
    ) {
        Ok(path) => println!("\nwrote {} ({} records)", path.display(), records.len()),
        Err(err) => eprintln!("\nfailed to write BENCH_lookup.json: {err}"),
    }
}

/// Drives the standard DM-Z row with stage tracing enabled, reads the
/// per-stage histograms back out, then reruns the identical batch with the
/// `DM_OBS` kill switch off so the report can state what the instrumentation
/// itself costs.  Stage histograms are process-wide, so the section resets
/// them first and owns them for its duration.
fn run_observability_section(
    system: &mut SystemUnderTest,
    dataset: &dm_data::Dataset,
    batch: usize,
) -> ObservabilityReport {
    let keys = LookupWorkload::hits_only(batch).generate(dataset);

    dm_obs::set_enabled(true);
    dm_obs::trace::reset_stage_histograms();
    let on_samples = measure_lookup_samples(system, &keys, SAMPLES);
    let stages: Vec<StageLatencyRecord> = dm_obs::Stage::all()
        .iter()
        .filter_map(|&stage| {
            StageLatencyRecord::from_snapshot(stage, &dm_obs::trace::stage_snapshot(stage))
        })
        .collect();

    dm_obs::set_enabled(false);
    let off_samples = measure_lookup_samples(system, &keys, SAMPLES);
    dm_obs::set_enabled(true);

    let kps = |samples: &[MeasuredLatency]| {
        LookupThroughputRecord::from_samples(&system.name, 1, batch, samples).keys_per_second
    };
    let overhead = ObsOverheadRecord {
        samples: SAMPLES,
        obs_on_kps: kps(&on_samples),
        obs_off_kps: kps(&off_samples),
    };

    println!("{} B={batch}, {SAMPLES} samples per mode\n", system.name);
    report::row(
        "stage",
        &[
            "count".to_string(),
            "p50 ms".to_string(),
            "p95 ms".to_string(),
            "p99 ms".to_string(),
            "max ms".to_string(),
        ],
    );
    for stage in &stages {
        report::row(
            &stage.stage,
            &[
                format!("{}", stage.count),
                format!("{:.4}", stage.p50_ms),
                format!("{:.4}", stage.p95_ms),
                format!("{:.4}", stage.p99_ms),
                format!("{:.4}", stage.max_ms),
            ],
        );
    }
    println!(
        "\nobs overhead: {:.0} keys/s traced vs {:.0} keys/s with DM_OBS=off ({:+.2}%)",
        overhead.obs_on_kps,
        overhead.obs_off_kps,
        overhead.delta_pct(),
    );

    ObservabilityReport {
        system: system.name.clone(),
        batch_size: batch,
        stages,
        overhead,
    }
}

/// Builds a correlated DM-Z store (the model memorizes nearly everything, so a
/// retrain has real aux bytes to reclaim), measures lookup throughput with the
/// health layer recording vs with `DM_OBS` off, then drives the full drift
/// episode: schema-valid off-pattern updates until the advisor says `Retrain`,
/// `maintenance()` acting on it, and the measured aux shrink.
fn run_health_section(scale: &BenchScale) -> Result<HealthSection, Box<dyn std::error::Error>> {
    let n = scale.rows(2_000_000).max(20_000) as u64;
    let rows: Vec<Row> = (0..n)
        .map(|k| Row::new(k, vec![((k / 16) % 5) as u32, ((k / 64) % 3) as u32]))
        .collect();
    let mut dm = DeepMappingBuilder::dm_z()
        .training(TrainingConfig {
            epochs: 8,
            batch_size: 2048,
            ..TrainingConfig::default()
        })
        .partition_bytes(32 * 1024)
        .quantization(Quantization::Int8)
        .build(&rows)?;

    // Overhead: the same evenly-spread hit batch, obs on vs off.  The on-path
    // includes everything the health layer adds to a lookup: heat touches on
    // pool access and the answer-mix drift accounting.
    let batch = (scale.batch(100_000) as u64).min(n);
    let stride = (n / batch).max(1);
    let keys: Vec<u64> = (0..batch).map(|i| i * stride).collect();
    let mut buffer = LookupBuffer::new();
    dm.lookup_batch_into(&keys, &mut buffer)?; // warm the pool and the arena
    let measure_kps = |dm: &dm_core::DeepMapping,
                           buffer: &mut LookupBuffer|
     -> Result<f64, Box<dyn std::error::Error>> {
        let mut samples_ms = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            dm.lookup_batch_into(&keys, buffer)?;
            samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let (mean_ms, _, _, _) = distribution_ms(&samples_ms);
        Ok(keys.len() as f64 / (mean_ms / 1e3))
    };
    dm_obs::set_enabled(true);
    let obs_on_kps = measure_kps(&dm, &mut buffer)?;
    dm_obs::set_enabled(false);
    let obs_off_kps = measure_kps(&dm, &mut buffer)?;
    dm_obs::set_enabled(true);
    let overhead = ObsOverheadRecord {
        samples: SAMPLES,
        obs_on_kps,
        obs_off_kps,
    };
    println!(
        "health-layer overhead: {:.0} keys/s on vs {:.0} keys/s off ({:+.2}%) over B={batch}",
        overhead.obs_on_kps,
        overhead.obs_off_kps,
        overhead.delta_pct(),
    );

    // The episode.  Update values stay inside the trained cardinalities
    // (schema-valid) but break the key correlation, so the model mispredicts
    // them and they pile up in the delta overlay.
    let update_rows = (n / 3).max(1_000);
    for chunk in keys_chunks(update_rows, 8) {
        let updates: Vec<Row> = chunk
            .map(|k| Row::new(k, vec![(k % 5) as u32, ((k * 3 + 1) % 3) as u32]))
            .collect();
        dm.update_rows(&updates)?;
    }
    let report = dm.health_report();
    let advice = report.primary();
    let predicted = match advice {
        dm_obs::Advice::Retrain {
            expected_aux_shrink_bytes,
            ..
        } => *expected_aux_shrink_bytes,
        _ => 0,
    };
    let aux_bytes_before = dm.aux_table().size_bytes() as u64;
    let episode_advice = advice.label().to_string();
    let overlay_ratio = report.drift.overlay_ratio();
    let mispredict_ema = report.drift.mispredict_ema;
    let start = Instant::now();
    dm.maintenance()?;
    let maintenance_ms = start.elapsed().as_secs_f64() * 1e3;
    let aux_bytes_after = dm.aux_table().size_bytes() as u64;
    let healthy_after = matches!(dm.health_report().primary(), dm_obs::Advice::Healthy);
    let episode = HealthEpisodeRecord {
        system: dm.config().paper_name(),
        rows: n as usize,
        update_rows: update_rows as usize,
        overlay_ratio,
        mispredict_ema,
        advice: episode_advice,
        predicted_shrink_bytes: predicted,
        aux_bytes_before,
        aux_bytes_after,
        maintenance_ms,
        healthy_after,
    };
    println!(
        "episode: {} off-pattern updates -> overlay {:.0}% / ema {:.2} -> advice '{}' (predicted shrink {}B)",
        episode.update_rows,
        episode.overlay_ratio * 100.0,
        episode.mispredict_ema,
        episode.advice,
        episode.predicted_shrink_bytes,
    );
    println!(
        "maintenance: {:.1} ms, aux {}B -> {}B (shrank {}B), healthy_after={}",
        episode.maintenance_ms,
        episode.aux_bytes_before,
        episode.aux_bytes_after,
        episode.measured_shrink_bytes(),
        episode.healthy_after,
    );
    Ok(HealthSection { overhead, episode })
}

/// Splits `0..total` into `parts` contiguous key ranges (the storm arrives as
/// batches, so the misprediction EMA folds more than once).
fn keys_chunks(total: u64, parts: u64) -> impl Iterator<Item = std::ops::Range<u64>> {
    let step = (total / parts).max(1);
    (0..parts).map(move |i| {
        let lo = i * step;
        let hi = if i + 1 == parts { total } else { (i + 1) * step };
        lo..hi
    })
}

/// Builds the server-sweep tenant: the paper's out-of-memory serving shape.
/// Low-correlation rows make the auxiliary table hold nearly everything
/// (26 partitions at 32 KiB), and a 96 KiB buffer-pool budget keeps only ~3 of
/// them resident — so an isolated single-key request pays a real partition
/// decompress (~100 µs) while a coalesced batch amortizes one decompress over
/// every request that landed in the same partition.  That is the regime the
/// coalescing server exists for; a cache-hot in-memory store would flatter
/// neither mode.
fn build_server_tenant(
    scale: &BenchScale,
) -> Result<(Arc<dyn TupleStore>, u64), Box<dyn std::error::Error>> {
    let rows = SyntheticConfig::multi_low(scale.rows(2_000_000).max(30_000))
        .generate()
        .rows();
    let key_space = rows.last().map(|r| r.key + 1).unwrap_or(1);
    let dm = DeepMappingBuilder::dm_z()
        .training(TrainingConfig {
            epochs: 4,
            batch_size: 4096,
            ..TrainingConfig::default()
        })
        .partition_bytes(32 * 1024)
        .memory_budget(96 * 1024)
        .quantization(Quantization::Int8)
        .disk_profile(DiskProfile::free())
        .exec_threads(2)
        .build(&rows)?;
    println!(
        "tenant: {} rows, {} aux partitions, 96 KiB pool budget (aux-dominated, out-of-memory)",
        rows.len(),
        dm.aux_table().partition_count()
    );
    Ok((Arc::new(dm), key_space))
}

/// One row of the server section from an open-loop outcome; `None` when the
/// cell completed nothing (a config error, not a measurement).
#[allow(clippy::too_many_arguments)]
fn server_cell_record(
    mode: &str,
    window_us: f64,
    max_batch_keys: usize,
    config: &OpenLoopConfig,
    outcome: &OpenLoopOutcome,
    shed: u64,
    batches: u64,
    mean_coalesce_width: f64,
) -> Option<ServerLoadRecord> {
    if outcome.latencies_ms.is_empty() {
        return None;
    }
    let (mean_ms, p50_ms, p95_ms, p99_ms) = distribution_ms(&outcome.latencies_ms);
    let record = ServerLoadRecord {
        mode: mode.to_string(),
        window_us,
        max_batch_keys,
        offered_kps: config.offered_keys_per_sec,
        achieved_kps: outcome.achieved_keys_per_sec(),
        clients: config.clients,
        keys_per_request: config.keys_per_request,
        samples: outcome.completed_requests,
        mean_ms,
        p50_ms,
        p95_ms,
        p99_ms,
        shed,
        batches,
        mean_coalesce_width,
    };
    report::row(
        &format!("{mode} win={}us", window_us as u64),
        &[
            format!("{:.0}", record.offered_kps),
            format!("{:.0}", record.achieved_kps),
            report::latency_cell(record.p50_ms),
            report::latency_cell(record.p95_ms),
            record
                .p99_ms
                .map(report::latency_cell)
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", record.mean_coalesce_width),
            format!("{}", record.shed),
        ],
    );
    Some(record)
}

/// Sweeps offered load (keys/s) across three coalescing windows and the direct
/// per-request baseline.  Every mode sees the identical open-loop arrival
/// schedule and key sequence; latency is measured from the scheduled arrival
/// (coordinated-omission corrected), so a saturated mode shows its backlog as
/// p99 instead of silently slowing the generator down.
fn run_server_sweep(scale: &BenchScale) -> Result<Vec<ServerLoadRecord>, Box<dyn std::error::Error>> {
    /// Generator threads; each keeps `PIPELINE_DEPTH` requests in flight in
    /// coalesced mode, so up to 4 x 256 = 1024 single-key requests — one full
    /// `MAX_BATCH` — can merge into a batch at saturation.
    const CLIENTS: usize = 4;
    const PIPELINE_DEPTH: usize = 256;
    const MAX_BATCH: usize = 1024;
    const CELL_DURATION: Duration = Duration::from_millis(400);
    /// Coalescing windows under sweep (the committed default is 100 µs).
    const WINDOWS_US: [u64; 3] = [50, 100, 400];
    /// Offered loads spanning the direct mode's knee (~10k keys/s on the
    /// reference box) through the coalesced capacity (~120k+ at MAX_BATCH=1024,
    /// where one partition decompress amortizes over every request that hit it).
    const OFFERED_KPS: [f64; 4] = [10_000.0, 40_000.0, 100_000.0, 160_000.0];

    let (store, key_space) = build_server_tenant(scale)?;
    // Fault in model weights and pool metadata once outside the timed cells.
    store.lookup_batch(&[0, key_space / 2])?;

    report::row(
        "mode",
        &[
            "offered k/s".into(),
            "achieved".into(),
            "p50 ms".into(),
            "p95".into(),
            "p99".into(),
            "width".into(),
            "shed".into(),
        ],
    );
    let mut records = Vec::new();
    for &offered in &OFFERED_KPS {
        for &window_us in &WINDOWS_US {
            let server = QueryServer::new(ServerConfig::coalescing(
                Duration::from_micros(window_us),
                MAX_BATCH,
            ));
            let tenant = server.register_store("bench", Arc::clone(&store))?;
            let config = OpenLoopConfig {
                offered_keys_per_sec: offered,
                duration: CELL_DURATION,
                clients: CLIENTS,
                keys_per_request: 1,
                pipeline_depth: PIPELINE_DEPTH,
            };
            let outcome = open_loop::run_coalesced(&server, tenant, &config, key_space);
            let stats = server.stats();
            server.shutdown();
            records.extend(server_cell_record(
                open_loop::Mode::Coalesced.label(),
                window_us as f64,
                MAX_BATCH,
                &config,
                &outcome,
                stats.requests_shed,
                stats.batches_formed,
                stats.mean_coalesce_width(),
            ));
        }
        let config = OpenLoopConfig {
            offered_keys_per_sec: offered,
            duration: CELL_DURATION,
            clients: CLIENTS,
            keys_per_request: 1,
            pipeline_depth: 1,
        };
        let outcome = open_loop::run_direct(&store, &config, key_space);
        records.extend(server_cell_record(
            open_loop::Mode::Direct.label(),
            0.0,
            0,
            &config,
            &outcome,
            0,
            0,
            1.0,
        ));
    }

    // The acceptance claim of this section, checked here so a regression is
    // loud in the bench output (the JSON diff is the mechanical record).
    let best = |mode: &str| {
        records
            .iter()
            .filter(|r| r.mode == mode && r.offered_kps >= 80_000.0)
            .map(|r| r.achieved_kps)
            .fold(0.0f64, f64::max)
    };
    let (coalesced, direct) = (best("coalesced"), best("direct"));
    if direct > 0.0 {
        println!(
            "\nsaturation: coalesced {:.0} keys/s vs direct {:.0} keys/s at equal offered load ({:.1}x)",
            coalesced,
            direct,
            coalesced / direct
        );
    }
    Ok(records)
}

/// Measures each representative DM layer shape through the packed-panel kernel
/// and through the pre-kernel reference path (`matmul` + bias broadcast +
/// activation), best-of-N to shed scheduler noise.
fn run_inference_micro() -> Vec<InferenceKernelRecord> {
    const ROWS: usize = 4_096;
    const REPS: usize = 9;
    // Shapes mirroring the default DM-Z architecture over the bench dataset:
    // trunk input, trunk interior, head hidden, head output.
    let shapes: [(usize, usize, Activation); 4] = [
        (35, 100, Activation::Relu),
        (100, 100, Activation::Relu),
        (100, 32, Activation::Relu),
        (32, 8, Activation::Linear),
    ];
    let fill = |rows: usize, cols: usize, salt: u64| {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let h = (r as u64 * 131 + c as u64 * 29 + salt).wrapping_mul(0x9E3779B97F4A7C15);
                m.set(r, c, ((h >> 40) as i32 % 1000) as f32 / 500.0 - 1.0);
            }
        }
        m
    };
    fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
        f(); // warm caches and the panel pack
        (0..reps)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_nanos() as f64
            })
            .fold(f64::INFINITY, f64::min)
    }
    let act_name = |act: Activation| {
        match act {
            Activation::Relu => "relu",
            Activation::Linear => "linear",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
        .to_string()
    };
    let mut records = Vec::new();
    for &(k, n, act) in &shapes {
        let x = fill(ROWS, k, 1);
        let w = fill(k, n, 2);
        let b = fill(1, n, 3);
        let panels = kernel::PackedPanels::pack(&w, Some(&b)).expect("pack");
        let packed_ns = best_of(REPS, || {
            let out = kernel::forward_packed(&x, 0, ROWS, &panels, act).expect("forward");
            std::hint::black_box(out.as_slice()[0]);
        });
        let reference_ns = best_of(REPS, || {
            let mut z = x.matmul(&w).expect("matmul");
            z.add_row_broadcast(&b).expect("bias");
            act.apply_in_place(&mut z);
            std::hint::black_box(z.as_slice()[0]);
        });
        records.push(InferenceKernelRecord {
            shape: format!("{k}x{n}"),
            activation: act_name(act),
            rows: ROWS,
            kernel: kernel::active().name().to_string(),
            packed_ns_per_row: packed_ns / ROWS as f64,
            reference_ns_per_row: reference_ns / ROWS as f64,
        });
        // The same shape through the int8 widening path (quantize-once weights,
        // per-row input quantization inside the kernel), against the same f32
        // reference so the speedup columns are directly comparable.
        let qpanels = kernel::QuantizedPanels::quantize(&w, Some(&b)).expect("quantize");
        let quant_ns = best_of(REPS, || {
            let out = kernel::forward_quantized(&x, 0, ROWS, &qpanels, act).expect("forward");
            std::hint::black_box(out.as_slice()[0]);
        });
        records.push(InferenceKernelRecord {
            shape: format!("{k}x{n}"),
            activation: act_name(act),
            rows: ROWS,
            kernel: format!("int8+{}", kernel::active().name()),
            packed_ns_per_row: quant_ns / ROWS as f64,
            reference_ns_per_row: reference_ns / ROWS as f64,
        });
    }
    records
}

/// Sweeps the serial cache-blocked forward pass over candidate chunk sizes on
/// the MT section's trained store (int8 path — what production inference runs),
/// printing ns/row per candidate.  This is the measurement behind the committed
/// `dm_nn::multitask::CACHE_CHUNK_ROWS` value; rerun it here when the kernels
/// change.  Chunking never changes predictions, only activation residency.
fn run_chunk_sweep(dm: &dm_core::DeepMapping, keys: &[u64]) {
    const REPS: usize = 7;
    let model = dm.model();
    let network = model.network();
    let x = model.schema().key_encoder.encode_batch(keys);
    let rows = x.rows();
    let mut out = vec![0u32; rows * network.num_tasks()];
    report::row("chunk rows", &["ns/row".into(), "batch ms".into()]);
    for &chunk in &[256usize, 512, 1024, 2048, 4096, 8192] {
        let mut best = f64::INFINITY;
        network
            .forward_flat_serial_chunked(&x, chunk, &mut out)
            .expect("warmup forward");
        for _ in 0..REPS {
            let start = Instant::now();
            network
                .forward_flat_serial_chunked(&x, chunk, &mut out)
                .expect("forward");
            best = best.min(start.elapsed().as_nanos() as f64);
        }
        std::hint::black_box(&out);
        let marker = if chunk == dm_nn::CACHE_CHUNK_ROWS { "*" } else { "" };
        report::row(
            &format!("{chunk}{marker}"),
            &[
                format!("{:.1}", best / rows as f64),
                format!("{:.2}", best / 1e6),
            ],
        );
    }
}

/// Builds a partition-dominated low-correlation store on a 2-thread dm-exec
/// pool, runs one cold batch spanning every partition, and reports how much of
/// the partition loading hid behind stage-2 inference.
fn run_overlap_probe(scale: &BenchScale) -> Result<String, Box<dyn std::error::Error>> {
    let rows = SyntheticConfig::multi_low(scale.rows(2_000_000).max(30_000))
        .generate()
        .rows();
    let max_key = rows.last().map(|r| r.key).unwrap_or(0);
    let dm = DeepMappingBuilder::dm_z()
        .training(TrainingConfig {
            epochs: 4,
            batch_size: 4096,
            ..TrainingConfig::default()
        })
        .partition_bytes(32 * 1024)
        .exec_threads(2)
        .build(&rows)?;
    let keys: Vec<u64> = (0..=max_key).step_by((max_key as usize / 8_192).max(1)).collect();
    dm.metrics().reset();
    let start = Instant::now();
    dm.lookup_batch(&keys)?;
    let wall = start.elapsed();
    let snap = dm.metrics().snapshot();
    Ok(format!(
        "cold batch of {} keys over {} partitions in {:.2} ms: {} prefetch tasks / {} hits, {:.2} ms of loads overlapped with inference\n  {}",
        keys.len(),
        dm.aux_table().partition_count(),
        wall.as_secs_f64() * 1e3,
        snap.prefetch_tasks,
        snap.prefetch_hits,
        snap.prefetch_overlap_nanos as f64 / 1e6,
        report::pool_counters_line(&snap),
    ))
}

/// Builds the cold-start store: low-correlation rows (the auxiliary table holds
/// nearly everything, so the snapshot is partition-dominated — the honest
/// setting for a lazy-loading claim) with a deliberately small fixed
/// architecture, then snapshots/reopens it through `measure_cold_start`.
fn run_cold_start(scale: &BenchScale) -> Result<ColdStartRecord, Box<dyn std::error::Error>> {
    let rows = SyntheticConfig::multi_low(scale.rows(2_000_000).max(30_000))
        .generate()
        .rows();
    let schema = MappingSchema::infer(&rows, KEY_HEADROOM)?;
    let spec = MultiTaskSpec {
        input_dim: schema.input_dim(),
        shared_hidden: vec![32],
        heads: schema
            .cardinalities
            .iter()
            .map(|&card| TaskHeadSpec::direct(card as usize))
            .collect(),
    };
    let dm = DeepMappingBuilder::dm_z()
        .training(TrainingConfig {
            epochs: 4,
            batch_size: 4096,
            ..TrainingConfig::default()
        })
        .search(SearchStrategy::Fixed(spec))
        .partition_bytes(32 * 1024)
        .build(&rows)?;
    let dir = std::env::temp_dir().join(format!("dm-bench-cold-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("cold_start.dmss");
    let record = measure_cold_start(dm, &path)?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(record)
}
