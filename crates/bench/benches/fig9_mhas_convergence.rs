//! Figure 9: compression ratio of sampled architectures over the MHAS search
//! (TPC-H tables).
//!
//! The paper plots the Eq.-1 compression ratio of the architectures the controller
//! samples, against the search iteration, for the TPC-H SF 1 tables: a flat region at
//! the start (sampled models cannot memorize much yet, so the auxiliary table
//! dominates and the ratio can exceed 1.0), then a steady improvement as controller
//! and shared weights co-train.  This harness prints the same series (smoothed with a
//! running average) for each table.

use dm_bench::{report, BenchScale};
use dm_core::{DeepMappingConfig, MhasConfig, MhasSearch};
use dm_core::encoder::MappingSchema;
use dm_data::tpch::{TpchConfig, TpchTable};
use dm_data::TpchGenerator;

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Figure 9",
        &format!(
            "compression ratio of sampled architectures during MHAS (TPC-H, scale {})",
            scale.factor
        ),
    );
    let generator = TpchGenerator::new(TpchConfig::scale(scale.factor));
    let mhas = MhasConfig {
        iterations: 40,
        model_epochs: 1,
        controller_every: 4,
        sample_rows: 2048,
        ..MhasConfig::default()
    };
    // Smoothing window, mirroring the paper's running average of 500 over 2000 iters.
    let window = 8usize;

    for table in [TpchTable::Orders, TpchTable::Part, TpchTable::Supplier, TpchTable::Customer] {
        let dataset = generator.table(table);
        let rows = dataset.rows();
        let schema = MappingSchema::infer(&rows, 0).expect("schema");
        let mut search = MhasSearch::new(&schema, mhas.clone(), 0xf19).expect("search");
        let outcome = search
            .run(&rows, &DeepMappingConfig::default())
            .expect("search run");

        println!();
        println!("--- {} ({} rows) ---", table.name(), dataset.num_rows());
        report::row(
            "iteration",
            &["ratio".to_string(), "smoothed".to_string(), "memorized".to_string()],
        );
        let ratios: Vec<f64> = outcome.history.iter().map(|s| s.compression_ratio).collect();
        for sample in &outcome.history {
            let start = sample.iteration.saturating_sub(window - 1);
            let smoothed: f64 = ratios[start..=sample.iteration].iter().sum::<f64>()
                / (sample.iteration - start + 1) as f64;
            report::row(
                &format!("{}", sample.iteration),
                &[
                    report::ratio_cell(sample.compression_ratio),
                    report::ratio_cell(smoothed),
                    format!("{:.2}", sample.memorization_rate),
                ],
            );
        }
        println!(
            "best ratio {:.3} with {} parameters",
            outcome.best_ratio,
            outcome
                .history
                .iter()
                .min_by(|a, b| a.compression_ratio.total_cmp(&b.compression_ratio))
                .map(|s| s.parameters)
                .unwrap_or(0)
        );
    }
    println!();
    println!("(the early flat/high region mirrors the paper: unsettled models leave most data in Taux)");
}
