//! Table IV: storage size and query latency after inserting growing volumes of data
//! that does NOT follow the original distribution (multi-column synthetic datasets).
//!
//! Mirrors Table III but the inserted values are uniform-random, so the model cannot
//! generalize to them: DM-Z's auxiliary table now grows with every increment
//! (especially on the high-correlation dataset, whose model was trained on a very
//! different distribution), while DM-Z1's retraining re-absorbs the new data into the
//! model and keeps the structure compact — the paper's demonstration that retraining
//! restores the compression ratio.

use dm_bench::sweeps::{run_table, SweepKind};
use dm_bench::{report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Table IV",
        "storage and query latency after inserting data that does NOT follow the original distribution",
    );
    run_table(&scale, SweepKind::InsertOffDistribution);
}
