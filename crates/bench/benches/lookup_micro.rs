//! Criterion micro-benchmark: per-batch lookup latency of DeepMapping vs the
//! compressed array baseline when everything fits in memory.
//!
//! Complements Table II: with ample memory the baselines stop paying I/O, so the
//! comparison reduces to inference + auxiliary search vs binary search — the regime
//! where the paper notes hash/array baselines can be competitive.  Run with
//! `cargo bench -p dm-bench --bench lookup_micro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dm_baselines::{PartitionedStore, PartitionedStoreConfig};
use dm_compress::Codec;
use dm_core::{DeepMappingBuilder, TrainingConfig};
use dm_data::{LookupWorkload, SyntheticConfig};
use dm_storage::{DiskProfile, LookupBuffer, Metrics, TupleStore};

fn bench_lookup(c: &mut Criterion) {
    let dataset = SyntheticConfig::multi_high(20_000).generate();
    let rows = dataset.rows();
    let value_columns = dataset.num_value_columns();

    let abc_z = PartitionedStore::build(
        &rows,
        value_columns,
        PartitionedStoreConfig::array(Codec::Lz).with_disk_profile(DiskProfile::free()),
        Metrics::new(),
    )
    .expect("ABC-Z build");

    let dm = DeepMappingBuilder::dm_z()
        .disk_profile(DiskProfile::free())
        .training(TrainingConfig {
            epochs: 25,
            batch_size: 4096,
            ..TrainingConfig::default()
        })
        .build(&rows)
        .expect("DM build");

    let mut group = c.benchmark_group("lookup_batch");
    for &batch in &[100usize, 1_000, 10_000] {
        let keys = LookupWorkload::hits_only(batch).generate(&dataset);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("ABC-Z", batch), &keys, |b, keys| {
            let mut buffer = LookupBuffer::new();
            b.iter(|| {
                abc_z
                    .lookup_batch_into(std::hint::black_box(keys), &mut buffer)
                    .expect("lookup")
            });
        });
        group.bench_with_input(BenchmarkId::new("DM-Z", batch), &keys, |b, keys| {
            let mut buffer = LookupBuffer::new();
            b.iter(|| {
                TupleStore::lookup_batch_into(&dm, std::hint::black_box(keys), &mut buffer)
                    .expect("lookup")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_lookup
}
criterion_main!(benches);
