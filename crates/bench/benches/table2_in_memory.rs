//! Table II: offline storage size and query latency when the dataset fits the memory
//! pool, on the small-, medium- and large-size machine profiles.
//!
//! The paper's observations reproduced here: when everything fits in memory the
//! latency gap narrows (the bottleneck is lookup work, not I/O), DeepMapping still
//! wins on storage, and on strongly key-correlated tables (customer_demographics) it
//! also wins on latency because almost nothing is ever fetched from the auxiliary
//! table.

use dm_bench::{
    build_baselines, build_deepmapping_pair, build_deepsqueeze, measure_lookup, report, storage_mb,
    BenchScale, MachineProfile,
};
use dm_data::tpcds::TpcdsConfig;
use dm_data::tpch::TpchConfig;
use dm_data::{LookupWorkload, TpcdsGenerator, TpchGenerator};

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Table II",
        &format!(
            "storage size and lookup latency, dataset fits the memory pool (scale {}, B=100K scaled)",
            scale.factor
        ),
    );
    let tpch = TpchGenerator::new(TpchConfig::scale(scale.factor));
    let tpcds = TpcdsGenerator::new(TpcdsConfig::scale(scale.factor));
    let batch = scale.batch(100_000);

    let workloads: Vec<(&str, dm_data::Dataset)> = vec![
        ("TPC-H orders", tpch.orders()),
        ("TPC-H part", tpch.part()),
        ("TPC-DS catalog_sales", tpcds.catalog_sales()),
        ("TPC-DS customer_demographics", tpcds.customer_demographics()),
        ("TPC-DS catalog_returns", tpcds.catalog_returns()),
    ];
    let machines = [
        ("latency-small", MachineProfile::small(usize::MAX, 1.0)),
        ("latency-medium", MachineProfile::medium()),
        ("latency-large", MachineProfile::large()),
    ];

    for (label, dataset) in workloads {
        println!();
        println!(
            "--- {label}: {} rows, {:.1} MB uncompressed ---",
            dataset.num_rows(),
            dataset.uncompressed_bytes() as f64 / (1024.0 * 1024.0)
        );
        let mut header = vec!["size (MB)".to_string()];
        header.extend(machines.iter().map(|(n, _)| format!("{n} (ms)")));
        report::row("system", &header);

        // Build per machine profile so the disk model matches; sizes are identical
        // across profiles, so report the small-machine size.
        let keys = LookupWorkload::hits_only(batch).generate(&dataset);
        // Collect per-system rows: name -> (size, [latency per machine]).
        let mut table: Vec<(String, f64, Vec<f64>)> = Vec::new();
        for (mi, (_, machine)) in machines.iter().enumerate() {
            let mut systems = build_baselines(&dataset, machine);
            systems.extend(build_deepmapping_pair(&dataset, machine));
            if let Some(ds) = build_deepsqueeze(&dataset, machine) {
                systems.push(ds);
            }
            for system in &mut systems {
                let latency = measure_lookup(system, &keys).total_ms();
                if mi == 0 {
                    table.push((system.name.clone(), storage_mb(system), vec![latency]));
                } else if let Some(row) = table.iter_mut().find(|(n, _, _)| *n == system.name) {
                    row.2.push(latency);
                }
            }
        }
        for (name, size, latencies) in table {
            let mut cells = vec![report::size_cell(size)];
            cells.extend(latencies.iter().map(|&l| report::latency_cell(l)));
            report::row(&name, &cells);
        }
    }
    println!();
    println!("(small = constrained pool + edge SSD, medium = NVMe, large = in-memory)");
}
