//! Quick-mode throughput regression gate against the committed
//! `BENCH_lookup.json`.
//!
//! Rebuilds the two most load-bearing systems of the lookup sweep — the `AB`
//! raw-array baseline (floor: nothing but memcpy-level work) and `DM-Z` (the
//! paper's system, the row this repo's perf work targets) — at the baseline's
//! own `scale_factor`, re-measures their single-threaded rows, and compares
//! keys/s against the committed numbers with a noise-aware band.
//!
//! **Warn-only by default**: the committed numbers come from one reference
//! box, so on CI or foreign hardware the gate reports drift without failing
//! the build.  `DM_GATE_STRICT=1` turns regressions into exit 1 (for the
//! reference box); `DM_GATE_TOLERANCE` (default 0.35) sets the band.
//!
//! Run with `cargo bench -p dm-bench --bench regression_gate`.

use dm_bench::{
    gate, measure_lookup_samples, report, BenchScale, LookupThroughputRecord, MachineProfile,
    SystemUnderTest,
};
use dm_compress::Codec;
use dm_core::{DeepMappingBuilder, Quantization, TrainingConfig};
use dm_data::{LookupWorkload, SyntheticConfig};
use dm_storage::Metrics;

/// Fewer reps than the full bench (this runs on every PR), but still enough
/// for a stable mean; the gate compares means, not tails.
const SAMPLES: usize = 15;
/// Systems the gate re-measures.  The full matrix takes minutes to build;
/// these two bound the sweep from below (AB) and cover our own system (DM-Z).
const GATED_SYSTEMS: [&str; 2] = ["AB", "DM-Z"];

fn main() {
    let Some(path) = gate::baseline_path() else {
        println!("regression gate: no committed BENCH_lookup.json found — nothing to compare");
        return;
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(err) => {
            println!("regression gate: cannot read {}: {err}", path.display());
            return;
        }
    };
    let baseline_rows = gate::parse_baseline(&json);
    let gated: Vec<_> = baseline_rows
        .iter()
        .filter(|r| r.threads == 1 && GATED_SYSTEMS.contains(&r.system.as_str()))
        .cloned()
        .collect();
    if gated.is_empty() {
        println!(
            "regression gate: {} has no single-threaded AB/DM-Z rows — nothing to compare",
            path.display()
        );
        return;
    }
    let scale = BenchScale {
        factor: gate::parse_scale_factor(&json).unwrap_or_else(|| BenchScale::from_env().factor),
    };
    let tolerance = gate::tolerance_from_env();
    let strict = std::env::var("DM_GATE_STRICT").map(|v| v == "1").unwrap_or(false);

    report::banner(
        "regression gate",
        "quick re-measure of AB / DM-Z vs the committed BENCH_lookup.json",
    );
    println!(
        "baseline: {} (scale {}), tolerance {:.0}%, {} gated rows, {}",
        path.display(),
        scale.factor,
        tolerance * 100.0,
        gated.len(),
        if strict { "strict" } else { "warn-only" }
    );

    // Same dataset family and machine profile as the committed sweep.
    let dataset = SyntheticConfig::multi_high(scale.rows(2_000_000)).generate();
    let machine = MachineProfile::large();
    let mut systems: Vec<SystemUnderTest> = Vec::new();
    {
        use dm_baselines::{PartitionedStore, PartitionedStoreConfig};
        let metrics = Metrics::new();
        let config = PartitionedStoreConfig::array(Codec::None)
            .with_memory_budget(machine.memory_budget_bytes)
            .with_disk_profile(machine.disk)
            .with_partition_bytes(64 * 1024);
        let store =
            PartitionedStore::build(&dataset.rows(), dataset.num_value_columns(), config, metrics.clone())
                .expect("AB build");
        systems.push(SystemUnderTest::new("AB", Box::new(store), metrics));
    }
    {
        let dm = DeepMappingBuilder::dm_z()
            .memory_budget(machine.memory_budget_bytes)
            .disk_profile(machine.disk)
            .partition_bytes(32 * 1024)
            .quantization(Quantization::Int8)
            .training(TrainingConfig {
                epochs: 30,
                batch_size: 512,
                ..TrainingConfig::default()
            })
            .build(&dataset.rows())
            .expect("DM-Z build");
        let metrics = dm.metrics().clone();
        systems.push(SystemUnderTest::new("DM-Z", Box::new(dm), metrics));
    }

    report::row(
        "row",
        &[
            "baseline k/s".into(),
            "measured".into(),
            "ratio".into(),
            "verdict".into(),
        ],
    );
    let mut regressions = 0usize;
    for row in &gated {
        let Some(system) = systems.iter_mut().find(|s| s.name == row.system) else {
            continue;
        };
        let keys = LookupWorkload::hits_only(row.batch_size).generate(&dataset);
        let samples = measure_lookup_samples(system, &keys, SAMPLES);
        let measured =
            LookupThroughputRecord::from_samples(&row.system, 1, row.batch_size, &samples);
        let comparison = gate::Comparison {
            baseline: row.clone(),
            measured_kps: measured.keys_per_second,
        };
        let regressed = comparison.regressed(tolerance);
        if regressed {
            regressions += 1;
        }
        report::row(
            &format!("{} B={}", row.system, row.batch_size),
            &[
                format!("{:.0}", row.keys_per_second),
                format!("{:.0}", comparison.measured_kps),
                format!("{:.2}", comparison.ratio()),
                if regressed { "WARN".into() } else { "ok".into() },
            ],
        );
    }

    // The health section ships under a ≤ 1% overhead budget; the committed
    // number is re-checked here so a baseline regenerated past the budget is
    // loud on the next gate run, not just buried in a JSON diff.
    if let Some(delta_pct) = gate::parse_health_overhead_pct(&json) {
        let over = delta_pct > 1.0;
        println!(
            "committed health-layer overhead: {delta_pct:+.3}% (budget 1%): {}",
            if over { "WARN" } else { "ok" }
        );
        if over {
            regressions += 1;
        }
    }

    if regressions > 0 {
        println!(
            "\nregression gate: {regressions} row(s) beyond the {:.0}% band{}",
            tolerance * 100.0,
            if strict { "" } else { " (warn-only; set DM_GATE_STRICT=1 to fail)" }
        );
        if strict {
            std::process::exit(1);
        }
    } else {
        println!("\nregression gate: all gated rows within the noise band");
    }
}
