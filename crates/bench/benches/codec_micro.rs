//! Criterion micro-benchmark: throughput and ratio of every codec on tabular payloads.
//!
//! Supports Section V-A4's compression-tuning discussion: the "Z" codec must be the
//! fast one, "L" the slow/high-ratio one, with "G" and "D" in between.  Run with
//! `cargo bench -p dm-bench --bench codec_micro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dm_compress::{Codec, CompressionStats};

/// A payload that looks like a serialized categorical partition: fixed-width rows
/// drawn from small domains, with mild long-range repetition.
fn tabular_payload(rows: usize) -> Vec<u8> {
    (0..rows as u32)
        .flat_map(|i| {
            let status = (i % 3) as u8;
            let priority = (i % 5) as u8;
            let clerk = (i % 97) as u8;
            let flag = ((i / 7) % 2) as u8;
            [status, priority, clerk, flag, 0, (i % 11) as u8, 0, 0]
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let payload = tabular_payload(32_768);
    let codecs: Vec<(&str, Codec)> = vec![
        ("dictionary(D)", Codec::Dictionary { record_width: 8 }),
        ("deflate(G)", Codec::Deflate),
        ("lz(Z)", Codec::Lz),
        ("lzhuff(L)", Codec::LzHuff),
    ];

    // Print the ratios once so the bench output documents the codec positioning.
    println!("codec compression ratios on a {}-byte tabular payload:", payload.len());
    for (name, codec) in &codecs {
        let stats = CompressionStats::measure(codec, &payload);
        println!("  {name:<14} ratio {:.3}", stats.ratio());
    }

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for (name, codec) in &codecs {
        group.bench_with_input(BenchmarkId::from_parameter(name), codec, |b, codec| {
            b.iter(|| codec.compress(std::hint::black_box(&payload)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for (name, codec) in &codecs {
        let compressed = codec.compress(&payload);
        group.bench_with_input(BenchmarkId::from_parameter(name), &compressed, |b, compressed| {
            b.iter(|| codec.decompress(std::hint::black_box(compressed)).expect("round trip"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_codecs
}
criterion_main!(benches);
