//! Figure 6: DeepMapping storage breakdown on the TPC-H tables.
//!
//! For every TPC-H table the paper shows (a) how the hybrid structure's footprint
//! splits across existence vector / model / auxiliary table and (b) what percentage of
//! tuples is stored in the model versus the auxiliary table, at SF 1 and SF 10.
//! The same breakdown is printed here at two scales (the benchmark scale and 4× it,
//! standing in for the paper's SF 1 vs SF 10 pair).

use dm_bench::{report, BenchScale};
use dm_compress::Codec;
use dm_core::{DeepMapping, DeepMappingConfig, TrainingConfig};
use dm_data::tpch::{TpchConfig, TpchTable};
use dm_data::TpchGenerator;
use dm_storage::DiskProfile;

fn breakdown_at_scale(scale_factor: f64, label: &str) {
    println!();
    println!("--- {label} (generator scale {scale_factor}) ---");
    report::row(
        "table",
        &[
            "exist %".to_string(),
            "model %".to_string(),
            "aux %".to_string(),
            "in model %".to_string(),
            "in aux %".to_string(),
            "ratio".to_string(),
        ],
    );
    let generator = TpchGenerator::new(TpchConfig::scale(scale_factor));
    let config = DeepMappingConfig::default()
        .with_codec(Codec::Lz)
        .with_partition_bytes(32 * 1024)
        .with_disk_profile(DiskProfile::free())
        .with_training(TrainingConfig {
            epochs: 40,
            batch_size: 512,
            ..TrainingConfig::default()
        });
    for table in TpchTable::all() {
        let dataset = generator.table(table);
        let dm = DeepMapping::build(&dataset.rows(), &config).expect("build");
        let breakdown = dm.storage_breakdown();
        let (exist, model, aux) = breakdown.share_percentages();
        let in_model = breakdown.memorized_fraction() * 100.0;
        report::row(
            table.name(),
            &[
                format!("{exist:.2}"),
                format!("{model:.2}"),
                format!("{aux:.2}"),
                format!("{in_model:.1}"),
                format!("{:.1}", 100.0 - in_model),
                report::ratio_cell(breakdown.compression_ratio()),
            ],
        );
    }
}

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Figure 6",
        "DeepMapping storage breakdown (existence vector / model / auxiliary table) and memorized-tuple share",
    );
    breakdown_at_scale(scale.factor, "scale A (stands in for SF=1)");
    breakdown_at_scale(scale.factor * 4.0, "scale B (stands in for SF=10)");
    println!();
    println!("(percentages of the hybrid structure footprint; 'in model %' = tuples not stored in Taux)");
}
