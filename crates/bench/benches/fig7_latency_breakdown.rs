//! Figure 7: breakdown of end-to-end lookup latency on the TPC-H tables
//! (small machine, B = 100 K scaled).
//!
//! The paper splits latency into existence check, neural-network inference, auxiliary
//! lookup, data loading + decompression, partition location and "other", and shows
//! that for DeepMapping the load/decompress component nearly disappears while it
//! dominates for the compressed baselines (and deserialization overwhelms the hash
//! baselines).  The same per-phase breakdown is printed here for a representative
//! system set.

use dm_bench::{
    build_baselines, build_deepmapping_pair, measure_lookup, report, BenchScale, MachineProfile,
};
use dm_data::tpch::{TpchConfig, TpchTable};
use dm_data::{LookupWorkload, TpchGenerator};
use dm_storage::Phase;

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Figure 7",
        &format!(
            "end-to-end latency breakdown per phase (scale {}, small machine, B=100K scaled)",
            scale.factor
        ),
    );
    let generator = TpchGenerator::new(TpchConfig::scale(scale.factor));
    let batch = scale.batch(100_000);
    let interesting = ["AB", "HB", "ABC-Z", "HBC-Z", "DM-Z"];

    for table in TpchTable::all() {
        let dataset = generator.table(table);
        let machine = MachineProfile::small(dataset.uncompressed_bytes(), 0.2);
        let keys = LookupWorkload::hits_only(batch).generate(&dataset);
        let mut systems = build_baselines(&dataset, &machine);
        systems.extend(build_deepmapping_pair(&dataset, &machine));

        println!();
        println!("--- {} ---", table.name());
        let mut header: Vec<String> = Phase::all().iter().map(|p| p.label().to_string()).collect();
        header.push("sim. I/O".to_string());
        header.push("total".to_string());
        report::row("system", &header);

        for system in systems
            .iter_mut()
            .filter(|s| interesting.contains(&s.name.as_str()))
        {
            let wall = measure_lookup(system, &keys);
            let snapshot = system.metrics.snapshot();
            let mut cells: Vec<String> = Phase::all()
                .iter()
                .map(|&p| report::latency_cell(snapshot.phase(p).as_secs_f64() * 1e3))
                .collect();
            cells.push(report::latency_cell(
                snapshot.simulated_io_nanos as f64 / 1e6,
            ));
            cells.push(report::latency_cell(wall.total_ms()));
            report::row(&system.name, &cells);
        }
    }
    println!();
    println!("(all values in milliseconds; 'sim. I/O' is the modelled disk time of partition loads)");
}
