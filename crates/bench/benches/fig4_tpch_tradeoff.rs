//! Figure 4: compression-ratio vs lookup-latency trade-off on TPC-H (small machine).
//!
//! The paper plots, for every TPC-H table and every system, the pair
//! (compression ratio, lookup latency) normalized so the uncompressed array-based
//! representation (AB) sits at (1.0, 1.0); points closer to the origin are better.
//! This harness prints the same scatter data, one row per (table, system).

use dm_bench::{
    build_baselines, build_deepmapping_pair, build_deepsqueeze, measure_lookup, report, storage_mb,
    BenchScale, MachineProfile,
};
use dm_data::tpch::{TpchConfig, TpchTable};
use dm_data::{LookupWorkload, TpchGenerator};

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Figure 4",
        &format!(
            "TPC-H trade-off between compression ratio and lookup latency (scale factor {}, small machine)",
            scale.factor
        ),
    );
    let generator = TpchGenerator::new(TpchConfig::scale(scale.factor));
    let batch = scale.batch(100_000);

    report::row(
        "table / system",
        &[
            "size (MB)".to_string(),
            "ratio".to_string(),
            "latency(ms)".to_string(),
            "lat. ratio".to_string(),
        ],
    );

    for table in TpchTable::all() {
        let dataset = generator.table(table);
        let uncompressed_mb = dataset.uncompressed_bytes() as f64 / (1024.0 * 1024.0);
        let machine = MachineProfile::small(dataset.uncompressed_bytes(), 0.3);
        let workload = LookupWorkload::hits_only(batch);
        let keys = workload.generate(&dataset);

        let mut systems = build_baselines(&dataset, &machine);
        systems.extend(build_deepmapping_pair(&dataset, &machine));
        if let Some(ds) = build_deepsqueeze(&dataset, &machine) {
            systems.push(ds);
        }

        // Latency of the uncompressed array baseline is the normalization reference.
        let mut reference_latency_ms = None;
        let mut rows = Vec::new();
        for system in &mut systems {
            let latency = measure_lookup(system, &keys);
            let size_mb = storage_mb(system);
            if system.name == "AB" {
                reference_latency_ms = Some(latency.total_ms().max(1e-6));
            }
            rows.push((system.name.clone(), size_mb, latency.total_ms()));
        }
        let reference_latency_ms = reference_latency_ms.unwrap_or(1.0);

        for (name, size_mb, latency_ms) in rows {
            report::row(
                &format!("{} / {}", table.name(), name),
                &[
                    report::size_cell(size_mb),
                    report::ratio_cell(size_mb / uncompressed_mb.max(1e-9)),
                    report::latency_cell(latency_ms),
                    report::ratio_cell(latency_ms / reference_latency_ms),
                ],
            );
        }
        println!();
    }
    println!("(ratio and lat. ratio are relative to the uncompressed array baseline AB = 1.0)");
}
