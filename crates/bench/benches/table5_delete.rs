//! Table V: storage size and query latency after deleting growing volumes of data
//! (multi-column synthetic datasets).
//!
//! Deletions in DeepMapping only flip existence bits and drop auxiliary entries
//! (Algorithm 4), so both storage and latency improve monotonically; the baselines
//! must rewrite partitions.  DM-Z1 additionally retrains after the second increment,
//! which re-optimizes the hybrid structure for the smaller dataset.

use dm_bench::sweeps::{run_table, SweepKind};
use dm_bench::{report, BenchScale};

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Table V",
        "storage and query latency after deleting growing volumes of data",
    );
    run_table(&scale, SweepKind::Delete);
}
