//! Figure 8: average per-tuple insertion time vs insertion batch size on the
//! multi-column low-correlation synthetic dataset.
//!
//! The paper shows DeepMapping's insertions (existence-bit set + one inference + an
//! auxiliary upsert for misclassified rows, no partition rewrites) are cheaper per
//! tuple than the array/hash baselines, which must load, modify, re-serialize and
//! re-compress partitions.

use dm_bench::{build_baselines, build_deepmapping_pair, report, BenchScale, MachineProfile};
use dm_data::{ModificationWorkload, SyntheticConfig};
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Figure 8",
        &format!(
            "average insertion time per tuple vs batch size, multi-column low-correlation synthetic (scale {})",
            scale.factor
        ),
    );
    let rows = scale.rows(2_000_000);
    let dataset = SyntheticConfig::multi_low(rows).generate();
    let machine = MachineProfile::small(dataset.uncompressed_bytes(), 0.3);
    let workload = ModificationWorkload::default();
    let interesting = ["AB", "HB", "ABC-Z", "HBC-Z", "DM-Z"];
    let batch_sizes = [1usize, 10, 100, 1_000, 10_000];

    let mut header: Vec<String> = batch_sizes.iter().map(|b| format!("batch {b}")).collect();
    header.insert(0, "".to_string());
    report::row("system", &header[1..]);

    let mut systems = build_baselines(&dataset, &machine);
    systems.extend(build_deepmapping_pair(&dataset, &machine));
    for system in systems
        .iter_mut()
        .filter(|s| interesting.contains(&s.name.as_str()))
    {
        let mut cells = Vec::new();
        let mut next_key_offset = 0u64;
        for &batch in &batch_sizes {
            // Fresh keys per batch so inserts never collide across measurements.
            let mut inserts = workload.insertion_batch_empirical(&dataset, batch);
            for row in &mut inserts {
                row.key += next_key_offset;
            }
            next_key_offset += batch as u64 + 1;
            let start = Instant::now();
            system.store.insert(&inserts).expect("insert");
            let elapsed = start.elapsed();
            let per_tuple_us = elapsed.as_secs_f64() * 1e6 / batch as f64;
            cells.push(format!("{per_tuple_us:.1}us"));
        }
        report::row(&system.name, &cells);
    }
    println!();
    println!("(average wall-clock time per inserted tuple; lower is better)");
}
