//! Table I: offline storage size and query latency when the dataset exceeds the
//! available memory pool (small machine).
//!
//! The paper's headline table: on a 4 GB machine with a 3 GB memory pool, DeepMapping
//! keeps its entire hybrid structure resident while every baseline keeps reloading and
//! decompressing evicted partitions, giving DM-Z/DM-L both the smallest storage and
//! the lowest latency (up to 15×/44× on the synthetic workloads).  Here the same
//! scenario is reproduced with the memory pool set to 20 % of each dataset's
//! uncompressed size.

use dm_bench::{
    build_baselines, build_deepmapping_pair, build_deepsqueeze, measure_lookup, report, storage_mb,
    BenchScale, MachineProfile,
};
use dm_data::tpch::TpchConfig;
use dm_data::{CropConfig, LookupWorkload, SyntheticConfig, TpchGenerator};

fn main() {
    let scale = BenchScale::from_env();
    report::banner(
        "Table I",
        &format!(
            "storage size and lookup latency, dataset exceeds the memory pool (scale {}, pool = 20% of data)",
            scale.factor
        ),
    );

    let synthetic_rows = scale.rows(2_000_000);
    let workloads: Vec<(&str, dm_data::Dataset)> = vec![
        (
            "TPC-H lineitem",
            TpchGenerator::new(TpchConfig::scale(scale.factor)).lineitem(),
        ),
        (
            "Synthetic single/low",
            SyntheticConfig::single_low(synthetic_rows).generate(),
        ),
        (
            "Synthetic single/high",
            SyntheticConfig::single_high(synthetic_rows).generate(),
        ),
        (
            "Synthetic multi/low",
            SyntheticConfig::multi_low(synthetic_rows).generate(),
        ),
        (
            "Synthetic multi/high",
            SyntheticConfig::multi_high(synthetic_rows).generate(),
        ),
        (
            "Real-world crop",
            // A 128x128 raster keeps the largest Table-I workload tractable on one core.
            CropConfig {
                width: 128,
                height: 128,
                ..CropConfig::small()
            }
            .generate(),
        ),
    ];

    let batch_sizes = [
        ("B=1K", scale.batch(1_000)),
        ("B=10K", scale.batch(10_000)),
        ("B=100K", scale.batch(100_000)),
    ];

    for (label, dataset) in workloads {
        println!();
        println!(
            "--- {label}: {} rows, {:.1} MB uncompressed ---",
            dataset.num_rows(),
            dataset.uncompressed_bytes() as f64 / (1024.0 * 1024.0)
        );
        let machine = MachineProfile::small(dataset.uncompressed_bytes(), 0.2);
        let mut systems = build_baselines(&dataset, &machine);
        systems.extend(build_deepmapping_pair(&dataset, &machine));
        let ds = build_deepsqueeze(&dataset, &machine);
        let ds_failed = ds.is_none();
        if let Some(ds) = ds {
            systems.push(ds);
        }

        let mut header = vec!["size (MB)".to_string()];
        header.extend(batch_sizes.iter().map(|(n, _)| format!("lat {n} (ms)")));
        report::row("system", &header);

        for system in &mut systems {
            let mut cells = vec![report::size_cell(storage_mb(system))];
            for &(_, batch) in &batch_sizes {
                let keys = LookupWorkload::hits_only(batch).generate(&dataset);
                let latency = measure_lookup(system, &keys);
                cells.push(report::latency_cell(latency.total_ms()));
            }
            report::row(&system.name, &cells);
        }
        if ds_failed {
            report::row("DS", &vec!["failed".to_string(); batch_sizes.len() + 1]);
        }
    }
    println!();
    println!("(latencies include the simulated disk I/O time of partition loads)");
}
