//! The append-only delta WAL (`<snapshot>.wal`).
//!
//! A snapshot is immutable once written; modifications between checkpoints
//! land here.  The ordering is apply-*then*-log: `PersistentStore` applies a
//! batch to the in-memory structure first (so a batch the store rejects never
//! enters the log) and then appends + fsyncs the record before acknowledging
//! the caller — in-memory state dies with the process, so durability only
//! requires the record to be on disk by the time the call returns success.
//! The next open replays the log into the store (inserted/updated rows land
//! back in the auxiliary delta overlay, deletions flip existence bits), and
//! `maintenance()` folds everything into a fresh snapshot and resets the log.
//!
//! ## Record format
//!
//! ```text
//! payload_len u32 | crc32(payload) u32 | payload
//! payload: op u8 (1 insert / 2 delete / 3 update) | count u32 | body
//!   insert/update body: per row  key u64 | n_cols u16 | values u32 × n_cols
//!   delete body:        per key  key u64
//! ```
//!
//! Replay stops at an incomplete record — or at a CRC-failing *final* record —
//! and reports the dropped byte count: a torn tail is the *expected* shape of
//! a crash, not an error.  Provable mid-log corruption, by contrast, fails
//! replay with a typed [`PersistError::Wal`]: a CRC-failing record with more
//! log *after* it (append-only logs tear only at the end, so that is bit rot,
//! and silently truncating it would drop acknowledged records), or a
//! crc-valid record with an unknown op tag.

use crate::error::{PersistError, Result};
use dm_faults::{crash, Faults, WalAppendFault};
use dm_nn::serialize::{ByteReader, ByteWriter};
use dm_storage::Row;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_UPDATE: u8 = 3;

/// One logged modification batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Rows passed to `MutableStore::insert`.
    Insert(Vec<Row>),
    /// Keys passed to `MutableStore::delete`.
    Delete(Vec<u64>),
    /// Rows passed to `MutableStore::update`.
    Update(Vec<Row>),
}

/// Outcome of a WAL replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Complete, CRC-valid records replayed.
    pub records: usize,
    /// Bytes dropped at the tail (torn final record after a crash; 0 on a
    /// clean log).
    pub dropped_tail_bytes: u64,
}

/// An open append handle on a WAL file.
#[derive(Debug)]
pub struct DeltaWal {
    file: File,
    path: PathBuf,
    /// Set when a failed append could not be rolled back: the log may end in a
    /// partial record, so further appends would land *behind* garbage and be
    /// unreachable at replay.  All subsequent appends are refused.
    poisoned: bool,
    /// Write-side fault injector (`DM_FAULTS` wal.* directives, or
    /// [`set_faults`](Self::set_faults) programmatically).  `None` in
    /// production: the hot path then pays one `Option` check per append/sync.
    faults: Option<Arc<Faults>>,
}

impl DeltaWal {
    /// Creates (or truncates) the WAL at `path`.  The truncation is fsynced
    /// before this returns: a caller that is about to write a fresh snapshot
    /// next to this WAL must know any stale records from a previous store
    /// incarnation are durably gone first.
    ///
    /// The handle is opened in append mode — every write goes to the current
    /// EOF regardless of the file cursor.  This matters because
    /// [`reset`](Self::reset) and the append rollback shrink the file (via a
    /// sibling write-mode handle; see the private `truncate_to`),
    /// which does *not* move a plain write cursor: a cursor-positioned handle
    /// would resume writing past the truncation point, leaving a zero-filled
    /// hole that replay reads as garbage.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let wal = DeltaWal {
            file,
            path,
            poisoned: false,
            faults: dm_faults::from_env(),
        };
        wal.truncate_to(0)?;
        Ok(wal)
    }

    /// Opens the WAL at `path` for appending, creating it if missing.  The
    /// caller is expected to have replayed it first (see [`DeltaWal::replay`]);
    /// a torn tail record, if any, is truncated away so new appends cannot be
    /// shadowed by garbage.
    pub fn open_append(path: impl Into<PathBuf>, replay: WalReplay) -> Result<Self> {
        let path = path.into();
        if replay.dropped_tail_bytes > 0 {
            let len = std::fs::metadata(&path)?.len();
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(len.saturating_sub(replay.dropped_tail_bytes))?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(DeltaWal {
            file,
            path,
            poisoned: false,
            faults: dm_faults::from_env(),
        })
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Installs (or replaces) the write-side fault injector — the programmatic
    /// activation path; the environment path is `DM_FAULTS` with `wal.*`
    /// directives, picked up at [`create`](Self::create) /
    /// [`open_append`](Self::open_append).
    pub fn set_faults(&mut self, faults: Arc<Faults>) {
        self.faults = Some(faults);
    }

    /// Appends one record (length + CRC + payload in a single write).
    ///
    /// A failed write is rolled back by truncating to the pre-append length,
    /// so a short write (ENOSPC, ...) cannot strand garbage mid-log that would
    /// make *later* successfully-appended records unreachable at replay.  If
    /// even the rollback fails, the handle is poisoned and refuses further
    /// appends — better loudly unavailable than silently lossy.
    pub fn append(&mut self, op: &WalOp) -> Result<()> {
        if self.poisoned {
            return Err(PersistError::Wal(
                "WAL poisoned by an earlier unrecoverable append failure".into(),
            ));
        }
        let payload = encode_op(op);
        // The record header stores the length as u32; a batch that encodes
        // past 4 GiB must be rejected here, before anything touches the file —
        // a wrapped length would be fsynced, acknowledged, and then destroy
        // the log's parseability at the next replay.
        let payload_len = u32::try_from(payload.len()).map_err(|_| {
            PersistError::Wal(format!(
                "batch encodes to {} bytes, past the 4 GiB record limit",
                payload.len()
            ))
        })?;
        let start = self.file.metadata()?.len();
        let mut record = ByteWriter::new();
        record.put_u32(payload_len);
        record.put_u32(dm_compress::crc32(&payload));
        record.put_bytes(&payload);
        let record = record.into_bytes();
        crash::site("wal.append.begin");
        if let Some(faults) = &self.faults {
            match faults.on_wal_append() {
                WalAppendFault::Pass => {}
                WalAppendFault::Fail => {
                    // Fails before touching the file — the clean ENOSPC shape.
                    return Err(PersistError::Io(
                        "injected fault: WAL append refused before writing".into(),
                    ));
                }
                WalAppendFault::Torn { keep_half } => {
                    // A crash mid-write: part of the record reaches the file
                    // and STAYS there (no rollback — a real crash cannot roll
                    // back either).  The handle poisons itself, exactly like a
                    // failed rollback, and replay treats the partial record as
                    // the expected torn tail.
                    let keep = if keep_half { record.len() / 2 } else { 0 };
                    let _ = self.file.write_all(&record[..keep]);
                    self.poisoned = true;
                    return Err(PersistError::Wal(
                        "injected fault: torn WAL append left a partial record".into(),
                    ));
                }
            }
        }
        if let Err(err) = self.file.write_all(&record) {
            if self.truncate_to(start).is_err() {
                self.poisoned = true;
            }
            return Err(err.into());
        }
        crash::site("wal.append.done");
        Ok(())
    }

    /// Forces appended records to stable storage.
    pub fn sync(&self) -> Result<()> {
        crash::site("wal.sync.begin");
        if let Some(faults) = &self.faults {
            if faults.on_wal_fsync() {
                return Err(PersistError::Io("injected fault: WAL fsync failed".into()));
            }
        }
        self.file.sync_data()?;
        crash::site("wal.sync.done");
        Ok(())
    }

    /// Durably shrinks the log to `len` bytes through a sibling write-mode
    /// handle: `set_len` on the append handle itself is not portable (Windows
    /// opens append handles without the permission `set_len` needs), and the
    /// append handle keeps writing to EOF regardless, so the two never
    /// disagree about where the next record lands.
    fn truncate_to(&self, len: u64) -> Result<()> {
        crash::site("wal.truncate.begin");
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(len)?;
        file.sync_all()?;
        crash::site("wal.truncate.done");
        Ok(())
    }

    /// Empties the log (after its contents were folded into a new snapshot).
    /// Appends go to EOF (the handle is in append mode), so the next record
    /// lands at offset 0 — no hole.  An emptied log is clean by construction,
    /// so a successful reset also lifts the poisoned state: whatever partial
    /// record the failed rollback stranded is gone.
    pub fn reset(&mut self) -> Result<()> {
        self.truncate_to(0)?;
        self.poisoned = false;
        Ok(())
    }

    /// Test hook: forces the handle into the poisoned state so callers can
    /// exercise their append-failure paths without needing a real ENOSPC.
    #[cfg(test)]
    pub(crate) fn poison_for_test(&mut self) {
        self.poisoned = true;
    }

    /// Reads and validates every record of the WAL at `path`.  A missing file
    /// replays as empty (a snapshot written before any mutation has no WAL yet).
    pub fn replay(path: impl AsRef<Path>) -> Result<(Vec<WalOp>, WalReplay)> {
        let bytes = match std::fs::read(path.as_ref()) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), WalReplay::default()))
            }
            Err(err) => return Err(err.into()),
        };
        let mut ops = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 8 {
                break; // torn record header
            }
            let payload_len =
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if remaining < 8 + payload_len {
                break; // torn payload
            }
            let payload = &bytes[pos + 8..pos + 8 + payload_len];
            if dm_compress::crc32(payload) != crc {
                // A CRC failure on the FINAL record is the expected shape of a
                // crash mid-append (length persisted, payload partially so).
                // With more log after it, the failure cannot be a tear — an
                // append-only log only tears at the end — so this is bit rot,
                // and truncating it away would silently drop the acknowledged
                // records behind it.
                if pos + 8 + payload_len < bytes.len() {
                    return Err(PersistError::Wal(format!(
                        "record at byte {pos} fails its CRC with {} bytes of log after it \
                         (mid-log corruption, not a torn tail)",
                        bytes.len() - (pos + 8 + payload_len)
                    )));
                }
                break; // torn tail
            }
            ops.push(decode_op(payload)?);
            pos += 8 + payload_len;
        }
        let replay = WalReplay {
            records: ops.len(),
            dropped_tail_bytes: (bytes.len() - pos) as u64,
        };
        Ok((ops, replay))
    }
}

fn encode_rows(w: &mut ByteWriter, rows: &[Row]) {
    w.put_u32(rows.len() as u32);
    for row in rows {
        w.put_u64(row.key);
        w.put_u16(row.values.len() as u16);
        for &value in &row.values {
            w.put_u32(value);
        }
    }
}

fn encode_op(op: &WalOp) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match op {
        WalOp::Insert(rows) => {
            w.put_u8(OP_INSERT);
            encode_rows(&mut w, rows);
        }
        WalOp::Delete(keys) => {
            w.put_u8(OP_DELETE);
            w.put_u32(keys.len() as u32);
            for &key in keys {
                w.put_u64(key);
            }
        }
        WalOp::Update(rows) => {
            w.put_u8(OP_UPDATE);
            encode_rows(&mut w, rows);
        }
    }
    w.into_bytes()
}

fn wal_err(detail: impl Into<String>) -> PersistError {
    PersistError::Wal(detail.into())
}

fn decode_rows(r: &mut ByteReader<'_>) -> Result<Vec<Row>> {
    let count = r.get_u32().map_err(|e| wal_err(e.to_string()))? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let key = r.get_u64().map_err(|e| wal_err(e.to_string()))?;
        let n_cols = r.get_u16().map_err(|e| wal_err(e.to_string()))? as usize;
        let mut values = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            values.push(r.get_u32().map_err(|e| wal_err(e.to_string()))?);
        }
        rows.push(Row::new(key, values));
    }
    Ok(rows)
}

fn decode_op(payload: &[u8]) -> Result<WalOp> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8().map_err(|e| wal_err(e.to_string()))?;
    let op = match tag {
        OP_INSERT => WalOp::Insert(decode_rows(&mut r)?),
        OP_DELETE => {
            let count = r.get_u32().map_err(|e| wal_err(e.to_string()))? as usize;
            let mut keys = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                keys.push(r.get_u64().map_err(|e| wal_err(e.to_string()))?);
            }
            WalOp::Delete(keys)
        }
        OP_UPDATE => WalOp::Update(decode_rows(&mut r)?),
        tag => return Err(wal_err(format!("unknown WAL op tag {tag}"))),
    };
    if r.remaining() != 0 {
        return Err(wal_err(format!(
            "{} trailing bytes inside a crc-valid record",
            r.remaining()
        )));
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "dm-persist-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert(vec![Row::new(1, vec![1, 2]), Row::new(2, vec![3, 4])]),
            WalOp::Delete(vec![7, 8, 9]),
            WalOp::Update(vec![Row::new(1, vec![9, 9])]),
            WalOp::Insert(Vec::new()),
        ]
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let path = temp_wal("round-trip");
        let mut wal = DeltaWal::create(&path).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        wal.sync().unwrap();
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops, sample_ops());
        assert_eq!(replay.records, 4);
        assert_eq!(replay.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_wal_replays_empty() {
        let (ops, replay) = DeltaWal::replay(temp_wal("missing")).unwrap();
        assert!(ops.is_empty());
        assert_eq!(replay, WalReplay::default());
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let path = temp_wal("torn");
        let mut wal = DeltaWal::create(&path).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-append: chop the last record's payload.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops, sample_ops()[..3].to_vec());
        assert_eq!(replay.records, 3);
        assert!(replay.dropped_tail_bytes > 0);
        // Reopening truncates the torn tail; a fresh append then replays cleanly.
        let mut wal = DeltaWal::open_append(&path, replay).unwrap();
        wal.append(&WalOp::Delete(vec![42])).unwrap();
        drop(wal);
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops.len(), 4);
        assert_eq!(ops[3], WalOp::Delete(vec![42]));
        assert_eq!(replay.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_log_bit_rot_is_a_hard_error_not_a_tear() {
        let path = temp_wal("bit-rot");
        let mut wal = DeltaWal::create(&path).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        // Flip one payload byte of the FIRST record: valid records follow it,
        // so this is provable corruption — truncating would drop them.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = DeltaWal::replay(&path).unwrap_err();
        assert!(
            matches!(err, PersistError::Wal(ref msg) if msg.contains("mid-log")),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_crc_valid_record_with_a_bad_op_is_a_hard_error() {
        let path = temp_wal("bad-op");
        let payload = [99u8]; // unknown tag
        let mut record = Vec::new();
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&dm_compress::crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        std::fs::write(&path, record).unwrap();
        let err = DeltaWal::replay(&path).unwrap_err();
        assert!(matches!(err, PersistError::Wal(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_reset_starts_at_offset_zero() {
        let path = temp_wal("reset-append");
        let mut wal = DeltaWal::create(&path).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        // The checkpoint path: reset, then keep appending on the SAME handle.
        // A cursor-positioned handle would write the next record at the old
        // offset, leaving a zero-filled hole that replay reads as garbage.
        wal.reset().unwrap();
        wal.append(&WalOp::Delete(vec![5])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Delete(vec![5])]);
        assert_eq!(replay.records, 1);
        assert_eq!(replay.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_truncates_a_preexisting_wal() {
        let path = temp_wal("create-truncates");
        let mut wal = DeltaWal::create(&path).unwrap();
        wal.append(&WalOp::Delete(vec![1, 2])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        drop(DeltaWal::create(&path).unwrap());
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert!(ops.is_empty());
        assert_eq!(replay, WalReplay::default());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_wal("reset");
        let mut wal = DeltaWal::create(&path).unwrap();
        wal.append(&WalOp::Delete(vec![1])).unwrap();
        wal.reset().unwrap();
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert!(ops.is_empty());
        assert_eq!(replay.records, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_torn_append_poisons_and_leaves_a_replayable_prefix() {
        let path = temp_wal("injected-torn");
        let mut wal = DeltaWal::create(&path).unwrap();
        wal.set_faults(Faults::new(
            dm_faults::FaultPlan::seeded(11).with_wal_torn_nth(2),
        ));
        wal.append(&WalOp::Delete(vec![1])).unwrap();
        let err = wal.append(&WalOp::Delete(vec![2])).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        // The tear cannot be rolled back (a real crash would not), so the
        // handle refuses to append behind the stranded partial record.
        assert!(wal.append(&WalOp::Delete(vec![3])).is_err());
        drop(wal);
        // Replay sees the intact prefix and reports the tear as a torn tail.
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Delete(vec![1])]);
        assert!(replay.dropped_tail_bytes > 0);
        // Reopening truncates the tear; service resumes cleanly.
        let mut wal = DeltaWal::open_append(&path, replay).unwrap();
        wal.append(&WalOp::Delete(vec![9])).unwrap();
        drop(wal);
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Delete(vec![1]), WalOp::Delete(vec![9])]);
        assert_eq!(replay.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_append_refusal_is_clean_and_injected_fsync_failure_surfaces() {
        let path = temp_wal("injected-fail");
        let mut wal = DeltaWal::create(&path).unwrap();
        wal.set_faults(Faults::new(
            dm_faults::FaultPlan::seeded(11)
                .with_wal_append_fail_nth(1)
                .with_wal_fsync_fail_nth(1),
        ));
        let err = wal.append(&WalOp::Delete(vec![1])).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // A refused append wrote nothing: the next append succeeds.
        wal.append(&WalOp::Delete(vec![2])).unwrap();
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        // The nth-call trigger is one-shot: the retried sync goes through.
        wal.sync().unwrap();
        drop(wal);
        let (ops, replay) = DeltaWal::replay(&path).unwrap();
        assert_eq!(ops, vec![WalOp::Delete(vec![2])]);
        assert_eq!(replay.dropped_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
