//! The snapshot manifest: everything `open` needs before touching a partition.
//!
//! The manifest is one CRC-protected blob right after the header.  It carries the
//! store configuration, the mapping schema (key encoder + cardinalities), the
//! decode labels, the live counters, the auxiliary overlay (delta rows +
//! tombstones — small by design, so they ride along eagerly) and the section
//! table: lengths and CRC-32s of the model and existence sections plus the
//! per-partition directory (key range, row count, frame length, frame CRC).
//! Section *offsets* are never stored — they are the cumulative sums of the
//! recorded lengths in a fixed order, which keeps the encoding single-pass and
//! makes an inconsistent length instantly detectable against the file size.

use crate::error::{PersistError, Result};
use dm_core::{
    AuxPartitionInfo, DeepMappingConfig, MappingSchema, MhasConfig, Quantization, SearchStrategy,
    TrainingConfig,
};
use dm_nn::serialize::{ByteReader, ByteWriter};
use dm_nn::{KeyEncoder, MultiTaskSpec, TaskHeadSpec};
use dm_storage::{DiskProfile, Row};
use std::time::Duration;

/// Search-strategy tags.
const SEARCH_DEFAULT: u8 = 0;
const SEARCH_FIXED: u8 = 1;
const SEARCH_MHAS: u8 = 2;

/// `usize::MAX` budgets are serialized as this sentinel so 32-/64-bit builds
/// agree on "unbounded".
const UNBOUNDED: u64 = u64::MAX;

/// Directory entry of one compressed partition inside the snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionEntry {
    /// Key range + row count (mirrors [`AuxPartitionInfo`]).
    pub info: AuxPartitionInfo,
    /// Compressed frame length in bytes.
    pub frame_len: u64,
    /// CRC-32 of the frame bytes.
    pub frame_crc: u32,
}

/// The decoded manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Store configuration the structure was built with.
    pub config: DeepMappingConfig,
    /// Mapping schema (key encoder + per-column cardinalities).
    pub schema: MappingSchema,
    /// Per-column decode labels (`fdecode`).
    pub decode_labels: Vec<Vec<String>>,
    /// Live tuple count.
    pub tuple_count: u64,
    /// Tuples memorized by the model.
    pub memorized_tuples: u64,
    /// Retrains since the original build.
    pub retrain_count: u64,
    /// Value columns per row.
    pub value_columns: u32,
    /// Partition directory in file order (entry `i` ↔ partition id `i`).
    pub partitions: Vec<PartitionEntry>,
    /// Auxiliary delta-overlay rows.
    pub delta: Vec<Row>,
    /// Auxiliary tombstoned keys.
    pub tombstones: Vec<u64>,
    /// Model section length / CRC-32.
    pub model_len: u64,
    /// CRC-32 of the model section.
    pub model_crc: u32,
    /// Existence section length / CRC-32.
    pub exist_len: u64,
    /// CRC-32 of the existence section.
    pub exist_crc: u32,
}

fn rd<T>(res: dm_nn::Result<T>) -> Result<T> {
    res.map_err(|err| PersistError::Corrupt {
        section: "manifest",
        detail: err.to_string(),
    })
}

fn corrupt(detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt {
        section: "manifest",
        detail: detail.into(),
    }
}

fn put_str(w: &mut ByteWriter, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut ByteReader<'_>) -> Result<String> {
    let len = rd(r.get_u32())? as usize;
    if len > 1 << 24 {
        return Err(corrupt(format!("implausible string length {len}")));
    }
    let bytes = rd(r.get_bytes(len))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("label is not valid UTF-8"))
}

fn put_budget(w: &mut ByteWriter, bytes: usize) {
    w.put_u64(if bytes == usize::MAX { UNBOUNDED } else { bytes as u64 });
}

fn get_budget(r: &mut ByteReader<'_>) -> Result<usize> {
    let raw = rd(r.get_u64())?;
    Ok(if raw == UNBOUNDED {
        usize::MAX
    } else {
        usize::try_from(raw).unwrap_or(usize::MAX)
    })
}

fn put_spec(w: &mut ByteWriter, spec: &MultiTaskSpec) {
    w.put_u32(spec.input_dim as u32);
    w.put_u32(spec.shared_hidden.len() as u32);
    for &width in &spec.shared_hidden {
        w.put_u32(width as u32);
    }
    w.put_u32(spec.heads.len() as u32);
    for head in &spec.heads {
        w.put_u32(head.hidden.len() as u32);
        for &width in &head.hidden {
            w.put_u32(width as u32);
        }
        w.put_u32(head.classes as u32);
    }
}

fn get_spec(r: &mut ByteReader<'_>) -> Result<MultiTaskSpec> {
    let input_dim = rd(r.get_u32())? as usize;
    let n_shared = rd(r.get_u32())? as usize;
    if n_shared > 64 {
        return Err(corrupt("implausible shared layer count"));
    }
    let mut shared_hidden = Vec::with_capacity(n_shared);
    for _ in 0..n_shared {
        shared_hidden.push(rd(r.get_u32())? as usize);
    }
    let n_heads = rd(r.get_u32())? as usize;
    if n_heads > 4096 {
        return Err(corrupt("implausible head count"));
    }
    let mut heads = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        let n_hidden = rd(r.get_u32())? as usize;
        if n_hidden > 64 {
            return Err(corrupt("implausible private layer count"));
        }
        let mut hidden = Vec::with_capacity(n_hidden);
        for _ in 0..n_hidden {
            hidden.push(rd(r.get_u32())? as usize);
        }
        let classes = rd(r.get_u32())? as usize;
        heads.push(TaskHeadSpec { hidden, classes });
    }
    Ok(MultiTaskSpec {
        input_dim,
        shared_hidden,
        heads,
    })
}

fn put_config(w: &mut ByteWriter, config: &DeepMappingConfig) {
    let (codec_tag, record_width) = match config.codec {
        dm_compress::Codec::Dictionary { record_width } => (config.codec.tag(), record_width as u32),
        _ => (config.codec.tag(), 0),
    };
    w.put_u8(codec_tag);
    w.put_u32(record_width);
    w.put_u64(config.partition_bytes as u64);
    put_budget(w, config.memory_budget_bytes);
    w.put_u64(config.disk_profile.read_bandwidth.to_bits());
    w.put_u64(config.disk_profile.read_latency.as_nanos() as u64);
    w.put_u64(config.training.epochs as u64);
    w.put_u64(config.training.batch_size as u64);
    w.put_f32(config.training.learning_rate);
    w.put_f32(config.training.lr_decay);
    w.put_f32(config.training.loss_tolerance);
    match &config.search {
        SearchStrategy::DefaultArchitecture => w.put_u8(SEARCH_DEFAULT),
        SearchStrategy::Fixed(spec) => {
            w.put_u8(SEARCH_FIXED);
            put_spec(w, spec);
        }
        SearchStrategy::Mhas(mhas) => {
            w.put_u8(SEARCH_MHAS);
            w.put_u64(mhas.iterations as u64);
            w.put_u64(mhas.model_epochs as u64);
            w.put_u64(mhas.controller_every as u64);
            w.put_u64(mhas.batch_size as u64);
            w.put_u64(mhas.sample_rows as u64);
            w.put_u32(mhas.layer_sizes.len() as u32);
            for &size in &mhas.layer_sizes {
                w.put_u32(size as u32);
            }
            w.put_u64(mhas.controller_hidden as u64);
            w.put_f32(mhas.entropy_bonus);
        }
    }
    match config.retrain_aux_bytes {
        Some(bytes) => {
            w.put_u8(1);
            w.put_u64(bytes as u64);
        }
        None => {
            w.put_u8(0);
            w.put_u64(0);
        }
    }
    match config.exec_threads {
        Some(threads) => {
            w.put_u8(1);
            w.put_u64(threads as u64);
        }
        None => {
            w.put_u8(0);
            w.put_u64(0);
        }
    }
    w.put_u64(config.seed);
    // v3 addition: the arithmetic mode.  v2 decoders never see this byte
    // (v2 files simply do not contain it); our decoder reads it only when the
    // header said v3.
    w.put_u8(config.quantization.tag());
}

fn get_config(r: &mut ByteReader<'_>, version: u16) -> Result<DeepMappingConfig> {
    let codec_tag = rd(r.get_u8())?;
    let record_width = rd(r.get_u32())? as usize;
    let codec = dm_compress::Codec::from_tag(codec_tag, record_width)
        .ok_or_else(|| corrupt(format!("unknown codec tag {codec_tag}")))?;
    let partition_bytes = rd(r.get_u64())? as usize;
    let memory_budget_bytes = get_budget(r)?;
    let read_bandwidth = f64::from_bits(rd(r.get_u64())?);
    let read_latency = Duration::from_nanos(rd(r.get_u64())?);
    let training = TrainingConfig {
        epochs: rd(r.get_u64())? as usize,
        batch_size: rd(r.get_u64())? as usize,
        learning_rate: rd(r.get_f32())?,
        lr_decay: rd(r.get_f32())?,
        loss_tolerance: rd(r.get_f32())?,
    };
    let search = match rd(r.get_u8())? {
        SEARCH_DEFAULT => SearchStrategy::DefaultArchitecture,
        SEARCH_FIXED => SearchStrategy::Fixed(get_spec(r)?),
        SEARCH_MHAS => {
            let iterations = rd(r.get_u64())? as usize;
            let model_epochs = rd(r.get_u64())? as usize;
            let controller_every = rd(r.get_u64())? as usize;
            let batch_size = rd(r.get_u64())? as usize;
            let sample_rows = rd(r.get_u64())? as usize;
            let n_sizes = rd(r.get_u32())? as usize;
            if n_sizes > 256 {
                return Err(corrupt("implausible MHAS layer-size count"));
            }
            let mut layer_sizes = Vec::with_capacity(n_sizes);
            for _ in 0..n_sizes {
                layer_sizes.push(rd(r.get_u32())? as usize);
            }
            let controller_hidden = rd(r.get_u64())? as usize;
            let entropy_bonus = rd(r.get_f32())?;
            SearchStrategy::Mhas(MhasConfig {
                iterations,
                model_epochs,
                controller_every,
                batch_size,
                sample_rows,
                layer_sizes,
                controller_hidden,
                entropy_bonus,
            })
        }
        tag => return Err(corrupt(format!("unknown search-strategy tag {tag}"))),
    };
    let retrain_flag = rd(r.get_u8())?;
    let retrain_bytes = rd(r.get_u64())? as usize;
    let exec_flag = rd(r.get_u8())?;
    let exec_threads = rd(r.get_u64())? as usize;
    let seed = rd(r.get_u64())?;
    // v2 manifests predate quantization; every v2 store is f32 by
    // construction, so the missing field decodes to `F32` — this is the whole
    // of the v2 → v3 compatibility shim.
    let quantization = if version >= 3 {
        let tag = rd(r.get_u8())?;
        Quantization::from_tag(tag)
            .ok_or_else(|| corrupt(format!("unknown quantization tag {tag}")))?
    } else {
        Quantization::F32
    };
    Ok(DeepMappingConfig {
        codec,
        partition_bytes,
        memory_budget_bytes,
        disk_profile: DiskProfile {
            read_bandwidth,
            read_latency,
        },
        training,
        search,
        retrain_aux_bytes: (retrain_flag == 1).then_some(retrain_bytes),
        exec_threads: (exec_flag == 1).then_some(exec_threads),
        seed,
        quantization,
    })
}

fn put_schema(w: &mut ByteWriter, schema: &MappingSchema) {
    w.put_u32(schema.key_encoder.bits() as u32);
    w.put_u32(schema.key_encoder.moduli().len() as u32);
    for &m in schema.key_encoder.moduli() {
        w.put_u64(m);
    }
    w.put_u32(schema.key_encoder.ramp_periods().len() as u32);
    for &p in schema.key_encoder.ramp_periods() {
        w.put_u64(p);
    }
    w.put_u32(schema.cardinalities.len() as u32);
    for &card in &schema.cardinalities {
        w.put_u32(card);
    }
}

fn get_schema(r: &mut ByteReader<'_>) -> Result<MappingSchema> {
    let bits = rd(r.get_u32())? as usize;
    let n_moduli = rd(r.get_u32())? as usize;
    if bits == 0 || bits > 64 || n_moduli > 64 {
        return Err(corrupt("implausible key-encoder shape"));
    }
    let mut moduli = Vec::with_capacity(n_moduli);
    for _ in 0..n_moduli {
        let m = rd(r.get_u64())?;
        // Each modulus contributes `m` one-hot features: zero would panic at
        // the first `key % 0` and a huge value inflates input_dim to OOM
        // scale.  Legitimate moduli are small primes (see PERIODIC_MODULI).
        if m == 0 || m > 4096 {
            return Err(corrupt("implausible one-hot modulus"));
        }
        moduli.push(m);
    }
    let n_ramps = rd(r.get_u32())? as usize;
    if n_ramps > 64 {
        return Err(corrupt("implausible ramp count"));
    }
    let mut ramps = Vec::with_capacity(n_ramps);
    for _ in 0..n_ramps {
        ramps.push(rd(r.get_u64())?);
    }
    let n_cols = rd(r.get_u32())? as usize;
    if n_cols == 0 || n_cols > 4096 {
        return Err(corrupt("implausible column count"));
    }
    let mut cardinalities = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        cardinalities.push(rd(r.get_u32())?);
    }
    Ok(MappingSchema {
        key_encoder: KeyEncoder::from_parts(bits, moduli, &ramps),
        cardinalities,
    })
}

impl Manifest {
    /// Encodes the manifest into its CRC-protected blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_config(&mut w, &self.config);
        put_schema(&mut w, &self.schema);
        w.put_u32(self.decode_labels.len() as u32);
        for column in &self.decode_labels {
            w.put_u32(column.len() as u32);
            for label in column {
                put_str(&mut w, label);
            }
        }
        w.put_u64(self.tuple_count);
        w.put_u64(self.memorized_tuples);
        w.put_u64(self.retrain_count);
        w.put_u32(self.value_columns);
        w.put_u32(self.partitions.len() as u32);
        for entry in &self.partitions {
            w.put_u64(entry.info.min_key);
            w.put_u64(entry.info.max_key);
            w.put_u64(entry.info.rows as u64);
            w.put_u64(entry.frame_len);
            w.put_u32(entry.frame_crc);
        }
        w.put_u32(self.delta.len() as u32);
        for row in &self.delta {
            w.put_u64(row.key);
            for &value in &row.values {
                w.put_u32(value);
            }
        }
        w.put_u32(self.tombstones.len() as u32);
        for &key in &self.tombstones {
            w.put_u64(key);
        }
        w.put_u64(self.model_len);
        w.put_u32(self.model_crc);
        w.put_u64(self.exist_len);
        w.put_u32(self.exist_crc);
        w.into_bytes()
    }

    /// Decodes a manifest blob (the caller has already verified its CRC).
    /// `version` is the snapshot header's version — the manifest layout is
    /// version-dependent (v3 appended the quantization tag to the config),
    /// so the caller must pass the version it already gated on.
    pub fn decode(bytes: &[u8], version: u16) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let config = get_config(&mut r, version)?;
        let schema = get_schema(&mut r)?;
        let n_label_cols = rd(r.get_u32())? as usize;
        if n_label_cols > 4096 {
            return Err(corrupt("implausible decode-label column count"));
        }
        let mut decode_labels = Vec::with_capacity(n_label_cols);
        for _ in 0..n_label_cols {
            let n_labels = rd(r.get_u32())? as usize;
            if n_labels > 1 << 24 {
                return Err(corrupt("implausible label count"));
            }
            let mut column = Vec::with_capacity(n_labels);
            for _ in 0..n_labels {
                column.push(get_str(&mut r)?);
            }
            decode_labels.push(column);
        }
        let tuple_count = rd(r.get_u64())?;
        let memorized_tuples = rd(r.get_u64())?;
        let retrain_count = rd(r.get_u64())?;
        let value_columns = rd(r.get_u32())?;
        if value_columns == 0 || value_columns > 4096 {
            return Err(corrupt("implausible value-column count"));
        }
        // Derivable state must agree with its source of truth: delta rows and
        // the aux table are reconstituted `value_columns` wide, the model and
        // lookup path serve `cardinalities.len()` columns — a mismatch would
        // pass every CRC and still produce wrong-arity rows.
        if value_columns as usize != schema.cardinalities.len() {
            return Err(corrupt(
                "value-column count disagrees with the schema's column count",
            ));
        }
        let n_partitions = rd(r.get_u32())? as usize;
        if n_partitions > 1 << 24 {
            return Err(corrupt("implausible partition count"));
        }
        let mut partitions = Vec::with_capacity(n_partitions);
        for _ in 0..n_partitions {
            let min_key = rd(r.get_u64())?;
            let max_key = rd(r.get_u64())?;
            let rows = rd(r.get_u64())? as usize;
            let frame_len = rd(r.get_u64())?;
            let frame_crc = rd(r.get_u32())?;
            if min_key > max_key || rows == 0 || frame_len == 0 {
                return Err(corrupt("malformed partition directory entry"));
            }
            partitions.push(PartitionEntry {
                info: AuxPartitionInfo {
                    min_key,
                    max_key,
                    rows,
                },
                frame_len,
                frame_crc,
            });
        }
        let n_delta = rd(r.get_u32())? as usize;
        if n_delta > 1 << 28 {
            return Err(corrupt("implausible delta-row count"));
        }
        let mut delta = Vec::with_capacity(n_delta);
        for _ in 0..n_delta {
            let key = rd(r.get_u64())?;
            let mut values = Vec::with_capacity(value_columns as usize);
            for _ in 0..value_columns {
                values.push(rd(r.get_u32())?);
            }
            delta.push(Row::new(key, values));
        }
        let n_tombstones = rd(r.get_u32())? as usize;
        if n_tombstones > 1 << 28 {
            return Err(corrupt("implausible tombstone count"));
        }
        let mut tombstones = Vec::with_capacity(n_tombstones);
        for _ in 0..n_tombstones {
            tombstones.push(rd(r.get_u64())?);
        }
        let model_len = rd(r.get_u64())?;
        let model_crc = rd(r.get_u32())?;
        let exist_len = rd(r.get_u64())?;
        let exist_crc = rd(r.get_u32())?;
        if r.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", r.remaining())));
        }
        Ok(Manifest {
            config,
            schema,
            decode_labels,
            tuple_count,
            memorized_tuples,
            retrain_count,
            value_columns,
            partitions,
            delta,
            tombstones,
            model_len,
            model_crc,
            exist_len,
            exist_crc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest(search: SearchStrategy) -> Manifest {
        let rows: Vec<Row> = (0..64u64)
            .map(|k| Row::new(k, vec![(k % 3) as u32, ((k / 5) % 4) as u32]))
            .collect();
        Manifest {
            config: DeepMappingConfig::dm_l()
                .with_search(search)
                .with_retrain_threshold(12_345)
                .with_exec_threads(3)
                .with_seed(77),
            schema: MappingSchema::infer(&rows, 1 << 10).unwrap(),
            decode_labels: vec![vec!["a".into(), "b\"c\\".into()], Vec::new()],
            tuple_count: 64,
            memorized_tuples: 60,
            retrain_count: 2,
            value_columns: 2,
            partitions: vec![
                PartitionEntry {
                    info: AuxPartitionInfo {
                        min_key: 0,
                        max_key: 30,
                        rows: 10,
                    },
                    frame_len: 512,
                    frame_crc: 0xDEAD_BEEF,
                },
                PartitionEntry {
                    info: AuxPartitionInfo {
                        min_key: 33,
                        max_key: 63,
                        rows: 11,
                    },
                    frame_len: 600,
                    frame_crc: 42,
                },
            ],
            delta: vec![Row::new(5, vec![1, 2]), Row::new(99, vec![3, 0])],
            tombstones: vec![7, 12],
            model_len: 4_096,
            model_crc: 1,
            exist_len: 128,
            exist_crc: 2,
        }
    }

    fn assert_round_trip(manifest: &Manifest) {
        let bytes = manifest.encode();
        let decoded = Manifest::decode(&bytes, 3).unwrap();
        assert_eq!(decoded.config, manifest.config);
        assert_eq!(decoded.schema, manifest.schema);
        assert_eq!(decoded.decode_labels, manifest.decode_labels);
        assert_eq!(decoded.tuple_count, manifest.tuple_count);
        assert_eq!(decoded.memorized_tuples, manifest.memorized_tuples);
        assert_eq!(decoded.retrain_count, manifest.retrain_count);
        assert_eq!(decoded.value_columns, manifest.value_columns);
        assert_eq!(decoded.partitions, manifest.partitions);
        assert_eq!(decoded.delta, manifest.delta);
        assert_eq!(decoded.tombstones, manifest.tombstones);
        assert_eq!(decoded.model_len, manifest.model_len);
        assert_eq!(decoded.model_crc, manifest.model_crc);
        assert_eq!(decoded.exist_len, manifest.exist_len);
        assert_eq!(decoded.exist_crc, manifest.exist_crc);
    }

    #[test]
    fn manifest_round_trips_for_every_search_strategy() {
        assert_round_trip(&sample_manifest(SearchStrategy::DefaultArchitecture));
        assert_round_trip(&sample_manifest(SearchStrategy::Fixed(MultiTaskSpec {
            input_dim: 10,
            shared_hidden: vec![16, 8],
            heads: vec![TaskHeadSpec::with_hidden(vec![12], 5), TaskHeadSpec::direct(7)],
        })));
        assert_round_trip(&sample_manifest(SearchStrategy::Mhas(MhasConfig::quick())));
    }

    #[test]
    fn quantized_configs_round_trip_and_v2_manifests_decode_as_f32() {
        // Int8 survives a v3 round trip.
        let mut manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        manifest.config.quantization = Quantization::Int8;
        assert_round_trip(&manifest);

        // A v2 manifest is byte-identical to a v3 one minus the quantization
        // tag.  Locate the tag without hard-coding the config layout: encode
        // the same manifest under both modes and diff — the single differing
        // byte *is* the tag.  Pin f32 explicitly — `sample_manifest` inherits
        // the `DM_QUANTIZATION` env default, and the diff scan needs the two
        // manifests to actually differ.
        let mut f32_manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        f32_manifest.config.quantization = Quantization::F32;
        let v3_bytes = f32_manifest.encode();
        let int8_bytes = manifest.encode();
        assert_eq!(v3_bytes.len(), int8_bytes.len());
        let diffs: Vec<usize> = v3_bytes
            .iter()
            .zip(&int8_bytes)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1, "modes must differ in exactly the tag byte");
        let tag_at = diffs[0];
        assert_eq!(v3_bytes[tag_at], Quantization::F32.tag());
        let mut v2_bytes = v3_bytes.clone();
        v2_bytes.remove(tag_at);
        let decoded = Manifest::decode(&v2_bytes, 2).unwrap();
        assert_eq!(decoded.config, f32_manifest.config);
        assert_eq!(decoded.config.quantization, Quantization::F32);
        // The same bytes misread as v3 must fail (a field short), never
        // silently half-parse.
        assert!(Manifest::decode(&v2_bytes, 3).is_err());

        // An unknown tag value is rejected, not defaulted.
        let mut bad = v3_bytes.clone();
        bad[tag_at] = 0x7F;
        assert!(matches!(
            Manifest::decode(&bad, 3),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn unbounded_budgets_survive_the_sentinel() {
        let mut manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        manifest.config.memory_budget_bytes = usize::MAX;
        manifest.config.disk_profile = DiskProfile::free(); // infinite bandwidth
        assert_round_trip(&manifest);
    }

    #[test]
    fn hostile_schema_and_column_counts_are_rejected() {
        // A zero one-hot modulus would panic (`key % 0`) at the first lookup;
        // a huge one inflates input_dim to OOM scale.  Both must die at decode.
        let mut manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        manifest.schema.key_encoder = KeyEncoder::from_parts(8, vec![0], &[]);
        assert!(matches!(
            Manifest::decode(&manifest.encode(), 3),
            Err(PersistError::Corrupt { .. })
        ));
        let mut manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        manifest.schema.key_encoder = KeyEncoder::from_parts(8, vec![1 << 33], &[]);
        assert!(matches!(
            Manifest::decode(&manifest.encode(), 3),
            Err(PersistError::Corrupt { .. })
        ));
        // value_columns is derivable from the schema; a disagreement would
        // reconstitute wrong-arity rows from a CRC-clean file.
        let mut manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        manifest.value_columns = 3; // the sample schema has 2 columns
        assert!(matches!(
            Manifest::decode(&manifest.encode(), 3),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncated_and_trailing_manifests_are_rejected() {
        let bytes = sample_manifest(SearchStrategy::DefaultArchitecture).encode();
        assert!(Manifest::decode(&bytes[..bytes.len() / 2], 3).is_err());
        assert!(Manifest::decode(&[], 3).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Manifest::decode(&extended, 3),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn malformed_directory_entries_are_rejected() {
        let mut manifest = sample_manifest(SearchStrategy::DefaultArchitecture);
        manifest.partitions[0].info.min_key = 999; // > max_key
        assert!(Manifest::decode(&manifest.encode(), 3).is_err());
    }
}
