//! The versioned single-file snapshot format, with lazy partition serving.
//!
//! ## File layout
//!
//! ```text
//! offset 0   header (28 bytes, fixed):
//!              magic "DMSS" | version u16 | reserved u16
//!              | file_len u64 | manifest_len u64 | manifest_crc u32
//! then       manifest        (see crate::manifest — config, schema, decode
//!                             labels, counters, overlay, section table)
//! then       model section   (dm_nn::serialize bytes, CRC in manifest)
//! then       existence section (BitVec::to_bytes, CRC in manifest)
//! then       partition frames, one per directory entry, in directory order
//!            (self-describing dm_compress frames, copied verbatim; per-frame
//!             CRC in the manifest directory)
//! ```
//!
//! All integers are little-endian.  Offsets are never stored: every section's
//! position is the cumulative sum of the lengths recorded before it, so a
//! mangled length immediately contradicts `file_len` and surfaces as a typed
//! [`PersistError`] at open instead of a misread later.
//!
//! ## Laziness
//!
//! [`Snapshot::open`] reads the header, the manifest, the model and the
//! existence/overlay state eagerly — everything *except* the partition frames,
//! which usually dominate the file.  Partitions are served on demand by a
//! [`FilePartitionSource`] plugged into the store's sharded single-flight
//! buffer pool: a cold partition costs exactly one positional read plus one
//! decompression, concurrent misses on different partitions proceed in
//! parallel, and racing readers of the same partition deduplicate into a
//! single load.
//!
//! ## Compatibility policy
//!
//! The header version is bumped on any incompatible layout change; `open`
//! rejects unknown versions with [`PersistError::UnsupportedVersion`] rather
//! than guessing.  Additive evolution (new trailing manifest fields) is a new
//! version too — the manifest decoder intentionally rejects trailing bytes so
//! mixed-version files cannot half-parse — but *within* that rule an older
//! version may stay openable when its contents are still servable bit-for-bit:
//!
//! * **v1 → v2** changed the model's arithmetic recipe (packed-panel fused
//!   multiply-adds).  A v1 aux table memorizes the mispredictions of the old
//!   arithmetic, so v1 files are **rejected** — serving them would silently
//!   return wrong tuples.
//! * **v2 → v3** added the quantization descriptor to the manifest config and
//!   int8 layer support to the model section.  The f32 arithmetic is
//!   untouched, so v2 files (always f32) are **still opened and served
//!   unchanged**: the missing descriptor decodes as `Quantization::F32`.
//!   New snapshots are always written as v3.

use crate::error::{PersistError, Result};
use crate::manifest::{Manifest, PartitionEntry};
use dm_core::{
    AuxTable, AuxTableSnapshot, DecodeMap, DeepMapping, DeepMappingParts, MappingModel,
};
use dm_nn::serialize::{ByteReader, ByteWriter};
use dm_storage::{BitVec, FileExtent, FilePartitionSource, Metrics};
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DMSS";
/// The version written by [`Snapshot::write`].  v3 added the quantization
/// descriptor to the manifest config (and int8 layers to the model section);
/// see the module docs for the full version history.
const VERSION: u16 = 3;
/// The oldest version [`Snapshot::open`] still accepts.  v2 files predate
/// quantization but their f32 arithmetic is unchanged, so they serve
/// bit-identically.  v1 files memorized their aux table under a *different*
/// arithmetic recipe (pre-packed-panel kernels) and are rejected with
/// [`PersistError::UnsupportedVersion`] — serving one would silently return
/// wrong tuples for keys whose prediction drifted.
const MIN_VERSION: u16 = 2;
/// magic(4) + version(2) + reserved(2) + file_len(8) + manifest_len(8) + manifest_crc(4)
const HEADER_LEN: u64 = 28;

/// What [`Snapshot::write`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Bytes a subsequent open will read eagerly (header + manifest + model +
    /// existence).
    pub eager_bytes: u64,
    /// Bytes held by the lazily served partition frames.
    pub partition_bytes: u64,
    /// Number of partition frames.
    pub partition_count: usize,
}

/// What [`Snapshot::open_with_stats`] read before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenStats {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Bytes read eagerly during open (header + manifest + model + existence);
    /// everything else is served lazily through the buffer pool.
    pub eager_bytes: u64,
    /// Number of partitions left on disk for lazy serving.
    pub partition_count: usize,
}

/// Namespace for snapshot I/O.  See the module docs for the file layout.
#[derive(Debug)]
pub struct Snapshot;

impl Snapshot {
    /// Serializes `dm` into a single snapshot file at `path`, atomically: the
    /// bytes land in a sibling temp file which is fsynced and then renamed over
    /// `path`, so a crash mid-write never leaves a half-snapshot under the
    /// final name.
    pub fn write(dm: &DeepMapping, path: impl AsRef<Path>) -> Result<SnapshotStats> {
        Self::stage(dm, path.as_ref())?.commit()
    }

    /// The write half of [`write`](Self::write) without the rename: the full
    /// snapshot is written and fsynced at a sibling temp path but not yet
    /// visible under `path`.  `PersistentStore::create` uses this to order the
    /// stale-WAL truncation between the expensive (failure-prone) section
    /// writes and the cheap rename — if staging fails, whatever previously
    /// lived at `path` (snapshot *and* WAL) is untouched and fully
    /// recoverable.
    pub(crate) fn stage(dm: &DeepMapping, path: &Path) -> Result<StagedSnapshot> {
        let model_bytes = dm.model().to_bytes();
        let exist_bytes = dm.existence().to_bytes();
        let aux = dm.aux_table().to_snapshot();
        // Pass 1 over the partition frames: directory entries (length + CRC)
        // only, each frame dropped after hashing so checkpointing a large
        // (possibly file-backed) store never holds more than one frame in
        // memory.  Pass 2 below streams the same frames into the file.
        let partition_count = dm.aux_table().partition_count();
        let mut partitions = Vec::with_capacity(partition_count);
        for idx in 0..partition_count {
            let frame = dm.aux_table().partition_frame(idx)?;
            partitions.push(PartitionEntry {
                info: frame.info,
                frame_len: frame.frame.len() as u64,
                frame_crc: dm_compress::crc32(&frame.frame),
            });
        }
        let manifest = Manifest {
            config: dm.config().clone(),
            schema: dm.model().schema().clone(),
            decode_labels: dm.decode_map().labels().to_vec(),
            tuple_count: dm.len() as u64,
            memorized_tuples: dm.memorized_tuples() as u64,
            retrain_count: dm.retrain_count() as u64,
            value_columns: aux.value_columns as u32,
            partitions,
            delta: aux.delta,
            tombstones: aux.tombstones,
            model_len: model_bytes.len() as u64,
            model_crc: dm_compress::crc32(&model_bytes),
            exist_len: exist_bytes.len() as u64,
            exist_crc: dm_compress::crc32(&exist_bytes),
        };
        let manifest_bytes = manifest.encode();
        let partition_bytes: u64 = manifest.partitions.iter().map(|p| p.frame_len).sum();
        let file_len = HEADER_LEN
            + manifest_bytes.len() as u64
            + model_bytes.len() as u64
            + exist_bytes.len() as u64
            + partition_bytes;

        let mut header = ByteWriter::new();
        header.put_bytes(MAGIC);
        header.put_u16(VERSION);
        header.put_u16(0);
        header.put_u64(file_len);
        header.put_u64(manifest_bytes.len() as u64);
        header.put_u32(dm_compress::crc32(&manifest_bytes));
        let header = header.into_bytes();
        debug_assert_eq!(header.len() as u64, HEADER_LEN);

        let tmp_path = temp_sibling(path);
        dm_faults::crash::site("snapshot.stage.begin");
        let mut file = File::create(&tmp_path)?;
        let write_result = (|| -> Result<()> {
            file.write_all(&header)?;
            file.write_all(&manifest_bytes)?;
            file.write_all(&model_bytes)?;
            file.write_all(&exist_bytes)?;
            // Pass 2: stream each frame, re-fetched one at a time.  The store
            // is borrowed shared for the whole write, so the frames cannot
            // have changed since pass 1 — but verify anyway: a length drift
            // here would corrupt the file silently.
            for (idx, entry) in manifest.partitions.iter().enumerate() {
                let frame = dm.aux_table().partition_frame(idx)?;
                if frame.frame.len() as u64 != entry.frame_len {
                    return Err(PersistError::Corrupt {
                        section: "partition frames",
                        detail: format!(
                            "partition {idx} changed size mid-write ({} vs {} bytes)",
                            frame.frame.len(),
                            entry.frame_len
                        ),
                    });
                }
                file.write_all(&frame.frame)?;
            }
            file.sync_all()?;
            dm_faults::crash::site("snapshot.stage.synced");
            Ok(())
        })();
        drop(file);
        if let Err(err) = write_result {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(err);
        }
        Ok(StagedSnapshot {
            tmp_path: Some(tmp_path),
            final_path: path.to_path_buf(),
            stats: SnapshotStats {
                file_bytes: file_len,
                eager_bytes: file_len - partition_bytes,
                partition_bytes,
                partition_count: manifest.partitions.len(),
            },
        })
    }

    /// Opens a snapshot, loading only the manifest, model and existence state
    /// eagerly; auxiliary partitions stay in the file and are decompressed on
    /// first touch through the store's buffer pool.
    pub fn open(path: impl AsRef<Path>) -> Result<DeepMapping> {
        Ok(Self::open_with_stats(path)?.0)
    }

    /// [`open`](Self::open), also reporting how many bytes the open itself read —
    /// the counter behind the cold-start bench's lazy-loading claim.
    pub fn open_with_stats(path: impl AsRef<Path>) -> Result<(DeepMapping, OpenStats)> {
        let path = path.as_ref();
        let actual_len = std::fs::metadata(path)?.len();
        let mut file = File::open(path)?;

        // Header.
        if actual_len < HEADER_LEN {
            return Err(PersistError::Truncated {
                section: "header",
                expected: HEADER_LEN,
                actual: actual_len,
            });
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        let mut r = ByteReader::new(&header);
        let magic = r.get_bytes(4).expect("header length checked");
        if magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.get_u16().expect("header length checked");
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let _reserved = r.get_u16().expect("header length checked");
        let file_len = r.get_u64().expect("header length checked");
        let manifest_len = r.get_u64().expect("header length checked");
        let manifest_crc = r.get_u32().expect("header length checked");
        if actual_len < file_len {
            return Err(PersistError::Truncated {
                section: "file body",
                expected: file_len,
                actual: actual_len,
            });
        }
        if actual_len > file_len {
            return Err(PersistError::Corrupt {
                section: "file body",
                detail: format!("{} trailing bytes after declared end", actual_len - file_len),
            });
        }

        // The manifest length must fit inside the (already cross-checked) file
        // length BEFORE it sizes an allocation: a single corrupted header field
        // must surface as a typed error, not an OOM abort.
        if manifest_len > file_len - HEADER_LEN {
            return Err(PersistError::Corrupt {
                section: "header",
                detail: format!(
                    "manifest length {manifest_len} does not fit in the {file_len}-byte file"
                ),
            });
        }

        // Manifest.
        let manifest_bytes = read_section(&mut file, manifest_len, "manifest")?;
        if dm_compress::crc32(&manifest_bytes) != manifest_crc {
            return Err(PersistError::ChecksumMismatch {
                section: "manifest",
            });
        }
        let manifest = Manifest::decode(&manifest_bytes, version)?;
        // Checked sums: corrupted lengths must not wrap around and accidentally
        // match `file_len` — and this check runs before `model_len`/`exist_len`
        // size any allocation, so every section length is bounded by the real
        // file size by the time it is read.
        let overflow = || PersistError::Corrupt {
            section: "section table",
            detail: "section lengths overflow u64".into(),
        };
        let partition_bytes = manifest
            .partitions
            .iter()
            .try_fold(0u64, |acc, p| acc.checked_add(p.frame_len))
            .ok_or_else(overflow)?;
        let declared_len = [manifest.model_len, manifest.exist_len, partition_bytes]
            .into_iter()
            .try_fold(HEADER_LEN + manifest_len, u64::checked_add)
            .ok_or_else(overflow)?;
        if declared_len != file_len {
            return Err(PersistError::Corrupt {
                section: "section table",
                detail: format!(
                    "sections sum to {declared_len} bytes but the file declares {file_len}"
                ),
            });
        }

        // Eager sections: model, then existence.
        let model_bytes = read_section(&mut file, manifest.model_len, "model")?;
        if dm_compress::crc32(&model_bytes) != manifest.model_crc {
            return Err(PersistError::ChecksumMismatch { section: "model" });
        }
        let exist_bytes = read_section(&mut file, manifest.exist_len, "existence")?;
        if dm_compress::crc32(&exist_bytes) != manifest.exist_crc {
            return Err(PersistError::ChecksumMismatch {
                section: "existence",
            });
        }
        let network = dm_nn::serialize::deserialize_multitask(&model_bytes)?;
        let model = MappingModel::from_parts(manifest.schema.clone(), network)?;
        let exist = BitVec::from_bytes(&exist_bytes)?;

        // Lazy partitions: extents begin right after the eager sections.
        let mut extents = HashMap::with_capacity(manifest.partitions.len());
        let mut offset = HEADER_LEN + manifest_len + manifest.model_len + manifest.exist_len;
        for (id, entry) in manifest.partitions.iter().enumerate() {
            extents.insert(
                id as u64,
                FileExtent {
                    offset,
                    len: entry.frame_len,
                    crc32: entry.frame_crc,
                },
            );
            offset += entry.frame_len;
        }
        // Rewind so the source owns a clean handle (positional reads ignore the
        // cursor on Unix, but the fallback path starts from a known state).
        file.seek(SeekFrom::Start(0))?;
        let source = Arc::new(FilePartitionSource::new(file, extents));

        let metrics = Metrics::new();
        let aux = AuxTable::open_from_source(
            source,
            AuxTableSnapshot {
                codec: manifest.config.codec,
                partition_bytes: manifest.config.partition_bytes,
                memory_budget_bytes: manifest.config.memory_budget_bytes,
                disk_profile: manifest.config.disk_profile,
                value_columns: manifest.value_columns as usize,
                partitions: manifest.partitions.iter().map(|p| p.info).collect(),
                delta: manifest.delta,
                tombstones: manifest.tombstones,
            },
            metrics,
        );
        let dm = DeepMapping::from_parts(DeepMappingParts {
            config: manifest.config,
            model,
            aux,
            exist,
            decode_map: DecodeMap::from_labels(manifest.decode_labels),
            tuple_count: manifest.tuple_count as usize,
            memorized_tuples: manifest.memorized_tuples as usize,
            retrain_count: manifest.retrain_count as usize,
        });
        let eager_bytes = HEADER_LEN + manifest_len + manifest.model_len + manifest.exist_len;
        Ok((
            dm,
            OpenStats {
                file_bytes: file_len,
                eager_bytes,
                partition_count: manifest.partitions.len(),
            },
        ))
    }
}

/// A fully written, fsynced snapshot that is not yet visible under its final
/// name (see [`Snapshot::stage`]).  Dropping it uncommitted removes the temp
/// file.
#[derive(Debug)]
pub(crate) struct StagedSnapshot {
    /// `Some` until committed; the `Drop` cleanup keys off it.
    tmp_path: Option<std::path::PathBuf>,
    final_path: std::path::PathBuf,
    stats: SnapshotStats,
}

impl StagedSnapshot {
    /// Renames the staged file over the final path and makes the rename itself
    /// durable by fsyncing the parent directory — a power failure after this
    /// returns cannot resurface the *old* snapshot next to an already-reset
    /// WAL (losing the folded mutations).
    pub(crate) fn commit(mut self) -> Result<SnapshotStats> {
        let tmp = self.tmp_path.take().expect("staged snapshot committed twice");
        dm_faults::crash::site("snapshot.commit.begin");
        if let Err(err) = std::fs::rename(&tmp, &self.final_path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(err.into());
        }
        dm_faults::crash::site("snapshot.commit.renamed");
        sync_parent_dir(&self.final_path)?;
        dm_faults::crash::site("snapshot.commit.done");
        Ok(self.stats)
    }
}

impl Drop for StagedSnapshot {
    fn drop(&mut self) {
        if let Some(tmp) = &self.tmp_path {
            let _ = std::fs::remove_file(tmp);
        }
    }
}

/// Extension methods on [`DeepMapping`] so callers can write
/// `DeepMapping::open(path)` / `dm.write_snapshot(path)` without naming
/// [`Snapshot`] (the facade prelude re-exports this trait).
pub trait SnapshotExt: Sized {
    /// Opens a snapshot file written by [`write_snapshot`](Self::write_snapshot).
    fn open(path: impl AsRef<Path>) -> Result<Self>;

    /// Writes this store into a single snapshot file, atomically.
    fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<SnapshotStats>;
}

impl SnapshotExt for DeepMapping {
    fn open(path: impl AsRef<Path>) -> Result<Self> {
        Snapshot::open(path)
    }

    fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<SnapshotStats> {
        Snapshot::write(self, path)
    }
}

fn read_section(file: &mut File, len: u64, section: &'static str) -> Result<Vec<u8>> {
    if len > 1 << 40 {
        return Err(PersistError::Corrupt {
            section,
            detail: format!("implausible section length {len}"),
        });
    }
    let mut bytes = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < bytes.len() {
        match file.read(&mut bytes[filled..]) {
            Ok(0) => {
                // End of file mid-section: truncation, reported with how much
                // of the section was actually present.
                return Err(PersistError::Truncated {
                    section,
                    expected: len,
                    actual: filled as u64,
                });
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            // A genuine I/O failure (EIO, ...) is not truncation — say so.
            Err(err) => return Err(PersistError::Io(format!("reading {section}: {err}"))),
        }
    }
    Ok(bytes)
}

/// Fsyncs the directory containing `path`, making a completed rename durable.
/// Directories cannot be fsynced on every platform; treat a failure to *open*
/// the directory as best-effort, but surface real sync errors.
fn sync_parent_dir(path: &Path) -> Result<()> {
    let parent = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => return Ok(()),
    };
    match File::open(parent) {
        Ok(dir) => {
            dir.sync_all()?;
            Ok(())
        }
        // Some platforms/filesystems refuse to open directories; the rename
        // already succeeded, so do not fail the snapshot over this.
        Err(_) => Ok(()),
    }
}

/// A sibling temp path for atomic replacement (same directory, so the rename
/// stays on one filesystem).
pub(crate) fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}
