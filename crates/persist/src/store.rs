//! A durable store: a snapshot-backed [`DeepMapping`] plus its delta WAL.
//!
//! [`PersistentStore`] is the deployment wrapper the quickstart example and the
//! restart tests drive: reads delegate straight to the inner store (same
//! `TupleStore` surface, same lazy partition serving), each write batch is
//! applied and then logged + fsynced to the WAL before the call returns (apply
//! first, so a batch the store *rejects* never enters the log), and
//! `maintenance()` retrains, rewrites the snapshot atomically (temp file +
//! rename + directory fsync) and resets the WAL — the fold-in step of
//! Section IV-D mapped onto real files.
//!
//! Crash model: the snapshot file is immutable between checkpoints and replaced
//! atomically, so it is always internally consistent; the WAL absorbs everything
//! since the last checkpoint, and replay is idempotent with respect to contents
//! (re-inserting an existing row acts as an update with the same values), so a
//! crash between checkpoint-rename and WAL-reset double-applies harmlessly.

use crate::error::Result;
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::wal::{DeltaWal, WalOp, WalReplay};
use dm_core::DeepMapping;
use dm_storage::{LookupBuffer, MutableStore, Row, StoreStats, TupleStore};
use std::path::{Path, PathBuf};

/// A [`DeepMapping`] store whose state survives process restarts.
#[derive(Debug)]
pub struct PersistentStore {
    dm: DeepMapping,
    wal: DeltaWal,
    snapshot_path: PathBuf,
    replay: WalReplay,
}

/// The WAL that pairs with a snapshot path: `<file name>.wal` in the same
/// directory.
pub fn wal_path_for(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.file_name().unwrap_or_default().to_os_string();
    name.push(".wal");
    snapshot.with_file_name(name)
}

impl PersistentStore {
    /// Persists a freshly built store: writes the snapshot at `path` and starts
    /// an empty WAL next to it.
    pub fn create(dm: DeepMapping, path: impl Into<PathBuf>) -> Result<Self> {
        let snapshot_path = path.into();
        Snapshot::write(&dm, &snapshot_path)?;
        let wal = DeltaWal::create(wal_path_for(&snapshot_path))?;
        Ok(PersistentStore {
            dm,
            wal,
            snapshot_path,
            replay: WalReplay::default(),
        })
    }

    /// Restores a store from its snapshot + WAL: opens the snapshot lazily,
    /// replays every complete WAL record into the structure (inserted/updated
    /// rows land in the auxiliary delta overlay, deletions flip existence
    /// bits), and keeps the WAL open for further appends.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let snapshot_path = path.into();
        let mut dm = Snapshot::open(&snapshot_path)?;
        let wal_path = wal_path_for(&snapshot_path);
        let (ops, replay) = DeltaWal::replay(&wal_path)?;
        for op in &ops {
            apply(&mut dm, op)?;
        }
        let wal = DeltaWal::open_append(wal_path, replay)?;
        Ok(PersistentStore {
            dm,
            wal,
            snapshot_path,
            replay,
        })
    }

    /// The wrapped store (shared read surface — safe to hand out).
    pub fn store(&self) -> &DeepMapping {
        &self.dm
    }

    /// Unwraps into the in-memory store, leaving the files on disk as-is.
    pub fn into_store(self) -> DeepMapping {
        self.dm
    }

    /// The snapshot file this store checkpoints to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// What the last [`open`](Self::open) replayed from the WAL.
    pub fn last_replay(&self) -> WalReplay {
        self.replay
    }

    /// Folds the current state into a fresh snapshot (atomically: temp file +
    /// rename) and resets the WAL.  Called by [`MutableStore::maintenance`]
    /// after retraining; also useful on its own as a cheap checkpoint that
    /// skips the retrain.
    pub fn checkpoint(&mut self) -> Result<SnapshotStats> {
        let stats = Snapshot::write(&self.dm, &self.snapshot_path)?;
        self.wal.reset()?;
        Ok(stats)
    }

    /// Applies the mutation first, then logs it.  In-memory state dies with the
    /// process, so durability needs only "logged before the call returns
    /// success" — and validating via the real apply first means a *rejected*
    /// batch (e.g. wrong column count) never enters the WAL, so replay-on-open
    /// can only ever see operations that succeeded against this exact state.
    fn apply_then_log(&mut self, op: WalOp) -> dm_storage::Result<()> {
        apply(&mut self.dm, &op).map_err(dm_storage::StorageError::from)?;
        self.wal.append(&op).map_err(dm_storage::StorageError::from)?;
        self.wal.sync().map_err(dm_storage::StorageError::from)
    }
}

fn apply(dm: &mut DeepMapping, op: &WalOp) -> Result<()> {
    match op {
        WalOp::Insert(rows) => dm.insert_rows(rows)?,
        WalOp::Delete(keys) => dm.delete_keys(keys)?,
        WalOp::Update(rows) => dm.update_rows(rows)?,
    }
    Ok(())
}

impl TupleStore for PersistentStore {
    fn name(&self) -> &str {
        self.dm.name()
    }

    fn lookup_batch_into(&self, keys: &[u64], out: &mut LookupBuffer) -> dm_storage::Result<()> {
        TupleStore::lookup_batch_into(&self.dm, keys, out)
    }

    fn stats(&self) -> StoreStats {
        TupleStore::stats(&self.dm)
    }

    fn scan_range(&self, lo: u64, hi: u64) -> dm_storage::Result<Vec<Row>> {
        TupleStore::scan_range(&self.dm, lo, hi)
    }
}

impl MutableStore for PersistentStore {
    fn insert(&mut self, rows: &[Row]) -> dm_storage::Result<()> {
        self.apply_then_log(WalOp::Insert(rows.to_vec()))
    }

    fn delete(&mut self, keys: &[u64]) -> dm_storage::Result<()> {
        self.apply_then_log(WalOp::Delete(keys.to_vec()))
    }

    fn update(&mut self, rows: &[Row]) -> dm_storage::Result<()> {
        self.apply_then_log(WalOp::Update(rows.to_vec()))
    }

    /// Retrain + checkpoint: the off-peak fold-in.  The WAL is only reset after
    /// the new snapshot has been renamed into place.
    fn maintenance(&mut self) -> dm_storage::Result<()> {
        self.dm.retrain().map_err(dm_storage::StorageError::from)?;
        self.checkpoint().map_err(dm_storage::StorageError::from)?;
        Ok(())
    }
}
