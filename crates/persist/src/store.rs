//! A durable store: a snapshot-backed [`DeepMapping`] plus its delta WAL.
//!
//! [`PersistentStore`] is the deployment wrapper the quickstart example and the
//! restart tests drive: reads delegate straight to the inner store (same
//! `TupleStore` surface, same lazy partition serving), each write batch is
//! applied and then logged + fsynced to the WAL before the call returns (apply
//! first, so a batch the store *rejects* never enters the log), and
//! `maintenance()` retrains, rewrites the snapshot atomically (temp file +
//! rename + directory fsync) and resets the WAL — the fold-in step of
//! Section IV-D mapped onto real files.
//!
//! Crash model: the snapshot file is immutable between checkpoints and replaced
//! atomically, so it is always internally consistent; the WAL absorbs everything
//! since the last checkpoint, and replay is idempotent with respect to contents
//! (re-inserting an existing row acts as an update with the same values), so a
//! crash between checkpoint-rename and WAL-reset double-applies harmlessly.

use crate::error::{PersistError, Result};
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::wal::{DeltaWal, WalOp, WalReplay};
use dm_core::DeepMapping;
use dm_storage::{LookupBuffer, MutableStore, Row, StoreStats, TupleStore};
use std::path::{Path, PathBuf};

/// A [`DeepMapping`] store whose state survives process restarts.
#[derive(Debug)]
pub struct PersistentStore {
    dm: DeepMapping,
    wal: DeltaWal,
    snapshot_path: PathBuf,
    replay: WalReplay,
    /// Set when a mutation was applied in memory but could not be made durable
    /// (WAL append or fsync failed): the served state now diverges from what a
    /// restart would restore.  Reads and writes are refused until a successful
    /// [`checkpoint`](Self::checkpoint) re-synchronizes disk with memory —
    /// better loudly unavailable than silently serving rows that vanish on
    /// restart.
    poisoned: bool,
}

/// The WAL that pairs with a snapshot path: `<file name>.wal` in the same
/// directory.
pub fn wal_path_for(snapshot: &Path) -> PathBuf {
    let mut name = snapshot.file_name().unwrap_or_default().to_os_string();
    name.push(".wal");
    snapshot.with_file_name(name)
}

impl PersistentStore {
    /// Persists a freshly built store: writes the snapshot at `path` and starts
    /// an empty WAL next to it.
    ///
    /// Ordering matters twice over when a previous store incarnation lives at
    /// `path`.  The snapshot is fully *staged* (written + fsynced at a temp
    /// path) first, so a create that fails during the big, failure-prone write
    /// (ENOSPC halfway through) leaves the old snapshot AND its WAL untouched
    /// and fully recoverable.  Then the stale WAL is truncated (and fsynced)
    /// *before* the rename makes the new snapshot visible: a crash between the
    /// two must never pair the fresh snapshot with the old incarnation's log —
    /// the next open would replay another store's mutations into this one.
    /// That ordering leaves one narrow lossy window, crash or failure, in the
    /// small truncate→rename tail: old snapshot + already-emptied WAL, which
    /// reopens as the old store minus its un-checkpointed tail — degraded, but
    /// never the silent cross-store replay.
    pub fn create(dm: DeepMapping, path: impl Into<PathBuf>) -> Result<Self> {
        let snapshot_path = path.into();
        remove_stale_temp_snapshots(&snapshot_path);
        let staged = Snapshot::stage(&dm, &snapshot_path)?;
        dm_faults::crash::site("create.staged");
        let wal = DeltaWal::create(wal_path_for(&snapshot_path))?;
        dm_faults::crash::site("create.wal_ready");
        staged.commit()?;
        Ok(PersistentStore {
            dm,
            wal,
            snapshot_path,
            replay: WalReplay::default(),
            poisoned: false,
        })
    }

    /// Restores a store from its snapshot + WAL: opens the snapshot lazily,
    /// replays every complete WAL record into the structure (inserted/updated
    /// rows land in the auxiliary delta overlay, deletions flip existence
    /// bits), and keeps the WAL open for further appends.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let snapshot_path = path.into();
        remove_stale_temp_snapshots(&snapshot_path);
        let mut dm = Snapshot::open(&snapshot_path)?;
        let wal_path = wal_path_for(&snapshot_path);
        let (ops, replay) = DeltaWal::replay(&wal_path)?;
        for op in &ops {
            apply(&mut dm, op)?;
        }
        let wal = DeltaWal::open_append(wal_path, replay)?;
        Ok(PersistentStore {
            dm,
            wal,
            snapshot_path,
            replay,
            poisoned: false,
        })
    }

    /// The wrapped store (shared read surface — safe to hand out).  Note that
    /// this bypasses the poison guard (see [`is_poisoned`](Self::is_poisoned)):
    /// after a failed WAL append the inner store may hold mutations that are
    /// not durable.
    pub fn store(&self) -> &DeepMapping {
        &self.dm
    }

    /// Unwraps into the in-memory store, leaving the files on disk as-is.
    pub fn into_store(self) -> DeepMapping {
        self.dm
    }

    /// The snapshot file this store checkpoints to.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// What the last [`open`](Self::open) replayed from the WAL.
    pub fn last_replay(&self) -> WalReplay {
        self.replay
    }

    /// Whether a failed WAL append left the in-memory state ahead of durable
    /// state (see [`checkpoint`](Self::checkpoint) to recover).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Folds the current state into a fresh snapshot (atomically: temp file +
    /// rename) and resets the WAL.  Called by [`MutableStore::maintenance`]
    /// after retraining; also useful on its own as a cheap checkpoint that
    /// skips the retrain.
    ///
    /// A successful checkpoint also clears the poisoned state: the snapshot
    /// captures the *entire* in-memory structure, so once it is renamed into
    /// place and the WAL is reset, durable state matches served state again.
    pub fn checkpoint(&mut self) -> Result<SnapshotStats> {
        dm_faults::crash::site("checkpoint.begin");
        let stats = Snapshot::write(&self.dm, &self.snapshot_path)?;
        dm_faults::crash::site("checkpoint.snapshot_committed");
        self.wal.reset()?;
        self.poisoned = false;
        dm_faults::crash::site("checkpoint.done");
        Ok(stats)
    }

    /// Installs a fault injector on the delta WAL, steering the write-side
    /// failure points (`wal.append_fail_nth`, `wal.torn_nth`,
    /// `wal.fsync_fail_nth` in the [`dm_faults`] plan grammar).  Read-side
    /// faults are installed separately via the aux table's partition source
    /// (see `DeepMapping::inject_faults`).
    pub fn inject_wal_faults(&mut self, faults: std::sync::Arc<dm_faults::Faults>) {
        self.wal.set_faults(faults);
    }

    fn ensure_not_poisoned(&self) -> dm_storage::Result<()> {
        if self.poisoned {
            return Err(dm_storage::StorageError::from(PersistError::Wal(
                "store poisoned: a mutation was applied in memory but could not be logged \
                 durably; checkpoint() to re-synchronize, or reopen from disk"
                    .into(),
            )));
        }
        Ok(())
    }

    /// Validates, applies, then logs the mutation.  In-memory state dies with
    /// the process, so durability needs only "logged before the call returns
    /// success" — and validating + applying first means a *rejected* batch
    /// (e.g. wrong column count) never enters the WAL, so replay-on-open can
    /// only ever see operations that succeeded against this exact state.
    ///
    /// Failure handling distinguishes the two phases.  [`validate`] runs before
    /// any state is touched, so its rejections leave the store healthy.  Past
    /// that point a failure can strike with part of the batch already in
    /// memory — a partition read error halfway through delete's aux probes, a
    /// failed fold-in retrain after the rows landed, or the WAL append/fsync
    /// itself — and the caller is told the batch failed while memory already
    /// diverged from what a restart would restore.  Rolling back is not
    /// reliable (an insert over an existing key acts as an update, so the
    /// pre-image is gone), so the store poisons itself instead — reads and
    /// writes are refused until [`checkpoint`](Self::checkpoint) makes memory
    /// and disk agree again.
    fn apply_then_log(&mut self, op: WalOp) -> dm_storage::Result<()> {
        self.ensure_not_poisoned()?;
        validate(&self.dm, &op).map_err(dm_storage::StorageError::from)?;
        if let Err(err) = apply(&mut self.dm, &op) {
            self.poisoned = true;
            return Err(dm_storage::StorageError::from(err));
        }
        if let Err(err) = self.wal.append(&op).and_then(|()| self.wal.sync()) {
            self.poisoned = true;
            return Err(dm_storage::StorageError::from(err));
        }
        Ok(())
    }
}

/// The validation the apply path would reject, run BEFORE any state is
/// mutated: a batch failing here is a clean rejection — nothing applied,
/// nothing logged, the store stays healthy.  Delegates to the dry-run halves
/// the core mutators themselves run first, so the two can never drift; a
/// batch this passes only fails in `apply` through a genuine mid-apply fault
/// (I/O, retrain), which is exactly what the poison flag is for.  `delete`
/// accepts any key.
fn validate(dm: &DeepMapping, op: &WalOp) -> Result<()> {
    match op {
        WalOp::Insert(rows) => dm.validate_insert(rows)?,
        WalOp::Update(rows) => dm.validate_update(rows)?,
        WalOp::Delete(_) => {}
    }
    Ok(())
}

/// Best-effort removal of `<snapshot>.tmp.*` siblings that a crashed
/// checkpoint left behind — a crash mid-stage orphans a temp file up to the
/// full snapshot size, and nothing else ever reclaims it.  Only the
/// write-owning `PersistentStore` paths (create/open) call this; read-only
/// `Snapshot::open` callers may share the directory with a live writer whose
/// in-flight temp file must not be deleted.  (Two concurrent *writers* on one
/// snapshot path are already unsupported — they would rename over each other.)
fn remove_stale_temp_snapshots(path: &Path) {
    let (Some(dir), Some(name)) = (path.parent(), path.file_name()) else {
        return;
    };
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let mut prefix = name.to_os_string();
    prefix.push(".tmp.");
    let prefix = prefix.to_string_lossy().into_owned();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().starts_with(&prefix) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn apply(dm: &mut DeepMapping, op: &WalOp) -> Result<()> {
    match op {
        WalOp::Insert(rows) => dm.insert_rows(rows)?,
        WalOp::Delete(keys) => dm.delete_keys(keys)?,
        WalOp::Update(rows) => dm.update_rows(rows)?,
    }
    Ok(())
}

impl TupleStore for PersistentStore {
    fn name(&self) -> &str {
        self.dm.name()
    }

    fn lookup_batch_into(&self, keys: &[u64], out: &mut LookupBuffer) -> dm_storage::Result<()> {
        self.ensure_not_poisoned()?;
        TupleStore::lookup_batch_into(&self.dm, keys, out)
    }

    fn stats(&self) -> StoreStats {
        TupleStore::stats(&self.dm)
    }

    fn scan_range(&self, lo: u64, hi: u64) -> dm_storage::Result<Vec<Row>> {
        self.ensure_not_poisoned()?;
        TupleStore::scan_range(&self.dm, lo, hi)
    }
}

impl MutableStore for PersistentStore {
    fn insert(&mut self, rows: &[Row]) -> dm_storage::Result<()> {
        self.apply_then_log(WalOp::Insert(rows.to_vec()))
    }

    fn delete(&mut self, keys: &[u64]) -> dm_storage::Result<()> {
        self.apply_then_log(WalOp::Delete(keys.to_vec()))
    }

    fn update(&mut self, rows: &[Row]) -> dm_storage::Result<()> {
        self.apply_then_log(WalOp::Update(rows.to_vec()))
    }

    /// Retrain + checkpoint: the off-peak fold-in.  The WAL is only reset after
    /// the new snapshot has been renamed into place.
    fn maintenance(&mut self) -> dm_storage::Result<()> {
        self.dm.retrain().map_err(dm_storage::StorageError::from)?;
        self.checkpoint().map_err(dm_storage::StorageError::from)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_core::{DeepMappingBuilder, TrainingConfig};
    use dm_storage::DiskProfile;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dm-persist-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn build_store(n: u64) -> DeepMapping {
        let rows: Vec<Row> = (0..n)
            .map(|k| Row::new(k, vec![(k % 7) as u32, (k % 3) as u32]))
            .collect();
        DeepMappingBuilder::dm_z()
            .training(TrainingConfig {
                epochs: 2,
                batch_size: 256,
                ..TrainingConfig::default()
            })
            .partition_bytes(2 * 1024)
            .disk_profile(DiskProfile::free())
            .build(&rows)
            .expect("build DeepMapping")
    }

    /// A failed WAL append leaves memory ahead of disk: the store must refuse
    /// to serve (or accept) anything until a checkpoint re-synchronizes them,
    /// and the checkpoint must make the stranded mutation durable.
    #[test]
    fn failed_wal_append_poisons_the_store_until_checkpoint() {
        let dir = temp_dir("poison");
        let path = dir.join("poison.dmss");
        let mut store = PersistentStore::create(build_store(400), &path).expect("create");
        store.insert(&[Row::new(9_000, vec![1, 2])]).expect("logged insert");

        // Simulate ENOSPC at append time.
        store.wal.poison_for_test();
        let err = store.insert(&[Row::new(9_001, vec![3, 4])]).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(store.is_poisoned());
        // Served state would diverge from durable state — refuse loudly.
        assert!(store.lookup_batch(&[9_001]).is_err());
        assert!(store.scan_range(0, 10).is_err());
        assert!(store.insert(&[Row::new(9_002, vec![5, 6])]).is_err());

        // checkpoint() snapshots the full in-memory state (stranded row
        // included) and resets the WAL: memory and disk agree again.
        store.checkpoint().expect("checkpoint heals the store");
        assert!(!store.is_poisoned());
        assert_eq!(store.get(9_001).unwrap(), Some(vec![3, 4]));
        // The reset also un-poisons the WAL handle, so logging resumes.
        store.insert(&[Row::new(9_002, vec![5, 6])]).expect("post-heal insert");
        drop(store);

        let reopened = PersistentStore::open(&path).expect("reopen");
        assert_eq!(reopened.last_replay().records, 1);
        assert_eq!(reopened.get(9_000).unwrap(), Some(vec![1, 2]));
        assert_eq!(reopened.get(9_001).unwrap(), Some(vec![3, 4]));
        assert_eq!(reopened.get(9_002).unwrap(), Some(vec![5, 6]));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The reviewer-found hole: `create` → log writes → `checkpoint` (reset on
    /// the same handle) → more writes → reopen.  A cursor-positioned create
    /// handle would leave a zero-filled hole in the WAL and brick the store.
    #[test]
    fn checkpoint_on_a_created_store_keeps_the_wal_replayable() {
        let dir = temp_dir("create-checkpoint");
        let path = dir.join("ckpt.dmss");
        let mut store = PersistentStore::create(build_store(400), &path).expect("create");
        store.insert(&[Row::new(9_000, vec![1, 2])]).expect("insert");
        store.checkpoint().expect("checkpoint");
        store.insert(&[Row::new(9_001, vec![3, 4])]).expect("post-checkpoint insert");
        drop(store);

        let reopened = PersistentStore::open(&path).expect("reopen after checkpoint");
        assert_eq!(reopened.last_replay().records, 1);
        assert_eq!(reopened.get(9_000).unwrap(), Some(vec![1, 2]));
        assert_eq!(reopened.get(9_001).unwrap(), Some(vec![3, 4]));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A crash mid-stage orphans a `<name>.tmp.<pid>` sibling up to the full
    /// snapshot size; the write-owning open/create paths reclaim them.
    #[test]
    fn open_reclaims_orphaned_temp_snapshots() {
        let dir = temp_dir("orphan");
        let path = dir.join("orphan.dmss");
        drop(PersistentStore::create(build_store(300), &path).expect("create"));
        let orphan = path.with_file_name("orphan.dmss.tmp.99999");
        std::fs::write(&orphan, b"half a snapshot").unwrap();
        let _ = PersistentStore::open(&path).expect("open");
        assert!(!orphan.exists(), "orphaned temp snapshot not reclaimed");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A create that FAILS (as opposed to crashes) must leave the previous
    /// incarnation — snapshot and WAL, acknowledged mutations included —
    /// fully recoverable: the staging write runs before the WAL truncation.
    #[test]
    fn a_failed_create_leaves_the_previous_store_recoverable() {
        let dir = temp_dir("failed-create");
        let path = dir.join("keep.dmss");
        let mut old = PersistentStore::create(build_store(400), &path).expect("create old");
        old.insert(&[Row::new(9_000, vec![1, 2])]).expect("old insert");
        drop(old);

        // Force the staging write to fail: squat its temp path with a directory.
        let tmp = crate::snapshot::temp_sibling(&path);
        std::fs::create_dir_all(&tmp).unwrap();
        assert!(PersistentStore::create(build_store(200), &path).is_err());
        std::fs::remove_dir_all(&tmp).ok();

        let reopened = PersistentStore::open(&path).expect("old store recoverable");
        assert_eq!(reopened.last_replay().records, 1, "old WAL was destroyed");
        assert_eq!(reopened.get(9_000).unwrap(), Some(vec![1, 2]));
        assert_eq!(reopened.store().len(), 401);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Re-creating a store at a path where a previous incarnation left WAL
    /// records must not replay those foreign records into the new store.
    #[test]
    fn create_truncates_a_stale_wal_from_a_previous_incarnation() {
        let dir = temp_dir("stale-wal");
        let path = dir.join("stale.dmss");
        let mut old = PersistentStore::create(build_store(400), &path).expect("create old");
        old.insert(&[Row::new(9_000, vec![1, 2])]).expect("old insert");
        // Crash: the old store dies with a non-empty WAL.
        drop(old);

        let fresh = PersistentStore::create(build_store(200), &path).expect("create fresh");
        drop(fresh);
        let reopened = PersistentStore::open(&path).expect("reopen fresh");
        assert_eq!(reopened.last_replay().records, 0, "stale WAL records replayed");
        assert_eq!(reopened.get(9_000).unwrap(), None);
        assert_eq!(reopened.store().len(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }
}
