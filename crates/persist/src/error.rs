//! Typed errors for the persistence layer.
//!
//! Every failure mode a snapshot or WAL can hit maps to a distinct variant, so
//! callers (and tests) can tell *why* a file was rejected — truncation, bit rot
//! in a specific section, a version from the future — instead of getting a
//! panic or, worse, silently wrong query answers.

use std::fmt;

/// Errors produced while writing, opening or replaying persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system I/O failure (open/read/write/rename/sync).
    Io(String),
    /// The file does not start with the snapshot magic — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The file is shorter than its header/manifest declares — a torn or
    /// truncated write (e.g. a crash mid-snapshot, or `truncate(1)` in a test).
    Truncated {
        /// Which structure noticed the truncation.
        section: &'static str,
        /// Bytes the structure expected to be present.
        expected: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// A CRC-32-protected section does not match its recorded checksum.
    ChecksumMismatch {
        /// Which section failed its check.
        section: &'static str,
    },
    /// A structural invariant of the format is violated (bad tag, impossible
    /// length, trailing bytes, ...).
    Corrupt {
        /// Which section is malformed.
        section: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The WAL contains a record that is invalid *before* the torn tail (a
    /// crc-valid record with an unknown op, for example).
    Wal(String),
    /// The neural-network substrate rejected the deserialized model.
    Model(String),
    /// The core crate rejected the reassembled structure.
    Core(String),
    /// The storage substrate failed (pool/partition/bit-vector decode).
    Storage(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
            PersistError::BadMagic => write!(f, "not a DeepMapping snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::Truncated {
                section,
                expected,
                actual,
            } => write!(
                f,
                "snapshot truncated in {section}: expected {expected} bytes, found {actual}"
            ),
            PersistError::ChecksumMismatch { section } => {
                write!(f, "snapshot section {section} failed its CRC-32 check")
            }
            PersistError::Corrupt { section, detail } => {
                write!(f, "snapshot section {section} is corrupt: {detail}")
            }
            PersistError::Wal(msg) => write!(f, "delta WAL corrupt: {msg}"),
            PersistError::Model(msg) => write!(f, "snapshot model invalid: {msg}"),
            PersistError::Core(msg) => write!(f, "snapshot structure invalid: {msg}"),
            PersistError::Storage(msg) => write!(f, "snapshot storage error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err.to_string())
    }
}

impl From<dm_nn::NnError> for PersistError {
    fn from(err: dm_nn::NnError) -> Self {
        PersistError::Model(err.to_string())
    }
}

impl From<dm_core::CoreError> for PersistError {
    fn from(err: dm_core::CoreError) -> Self {
        PersistError::Core(err.to_string())
    }
}

impl From<dm_storage::StorageError> for PersistError {
    fn from(err: dm_storage::StorageError) -> Self {
        PersistError::Storage(err.to_string())
    }
}

impl From<dm_compress::CompressError> for PersistError {
    fn from(err: dm_compress::CompressError) -> Self {
        PersistError::Storage(err.to_string())
    }
}

/// Lossy conversion for the store-trait surface: `PersistentStore` implements
/// `MutableStore`, whose methods return `dm_storage::Result`.
impl From<PersistError> for dm_storage::StorageError {
    fn from(err: PersistError) -> Self {
        dm_storage::StorageError::Corrupt(err.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PersistError>;
