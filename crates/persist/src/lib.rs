//! # dm-persist — single-file snapshots with lazy partition serving and a delta WAL
//!
//! DeepMapping's pitch is that the hybrid structure *is* the storage format: a
//! compact model plus compressed auxiliary partitions, existence bits and decode
//! labels.  This crate gives that structure a deployable on-disk form:
//!
//! * [`Snapshot`] — a versioned single-file format: header + CRC-protected
//!   manifest (config, schema, decode labels, counters, overlay, per-partition
//!   directory) + model weights (via `dm_nn::serialize`) + existence bits +
//!   the compressed auxiliary partition frames copied verbatim.
//!   [`Snapshot::open`] (or `DeepMapping::open` via [`SnapshotExt`]) loads only
//!   the manifest/model/existence eagerly; partitions are served lazily through
//!   a [`dm_storage::FilePartitionSource`] plugged into the store's sharded
//!   single-flight buffer pool — a cold partition costs exactly one positional
//!   read + one decompression, fully parallel under `dm-exec`.
//! * [`DeltaWal`] — an append-only log (`<snapshot>.wal`) of
//!   insert/delete/update batches, CRC-per-record, torn-tail tolerant.
//! * [`PersistentStore`] — the two combined behind the standard
//!   `TupleStore`/`MutableStore` traits: each write batch is applied and then
//!   logged + fsynced before the call returns (apply first, so a rejected
//!   batch never poisons the log), `open` replays the log into the auxiliary
//!   delta overlay, and `maintenance()` retrains, rewrites the snapshot
//!   atomically (temp file + rename + directory fsync) and resets the log.
//!
//! Every failure mode is a typed [`PersistError`]: truncation, per-section CRC
//! mismatches, unknown versions, torn WAL records.  Corruption in a *lazily*
//! served partition surfaces on first touch as a storage-level corruption error
//! through the lookup path — never a panic, never a silently wrong answer.

pub mod error;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use error::{PersistError, Result};
pub use manifest::{Manifest, PartitionEntry};
pub use snapshot::{OpenStats, Snapshot, SnapshotExt, SnapshotStats};
pub use store::{wal_path_for, PersistentStore};
pub use wal::{DeltaWal, WalOp, WalReplay};
