//! Binary (de)serialization of models.
//!
//! DeepMapping's Eq.-1 objective charges the learned model by its *serialized* size,
//! and the lookup path deserializes the model once at load time (the paper ships an
//! ONNX file).  This module defines a small self-describing little-endian format:
//!
//! ```text
//! magic "DMNN" | version u16 | input_dim u32
//! | n_shared u32 | shared widths u32...
//! | n_heads u32 | per head: n_hidden u32, hidden widths u32..., classes u32
//! | per layer in (trunk, then heads in order):
//!     version 1:  activation u8, rows u32, cols u32, weight f32..., bias f32...
//!     version 2:  kind u8, then
//!       kind 0 (f32):  activation u8, rows u32, cols u32, weight f32..., bias f32...
//!       kind 1 (int8): activation u8, rows u32, cols u32, scales f32 × cols,
//!                      weight i8 (row-major rows·cols), bias f32 × cols
//! ```
//!
//! Version 1 is written for pure-f32 models (byte-identical to every earlier
//! release); version 2 is written exactly when any layer is int8-quantized.
//! Both versions deserialize.  An int8 layer stores the raw quantized weights
//! and per-column scales — the arithmetic source of truth — so the reloaded
//! layer's panels are byte-identical to the build-time ones (serving cannot
//! drift) and the model shrinks ~4× on disk.

use crate::layer::{Activation, Dense};
use crate::multitask::{MultiTaskModel, MultiTaskSpec, TaskHeadSpec};
use crate::tensor::Matrix;
use crate::NnError;

const MAGIC: &[u8; 4] = b"DMNN";
const VERSION: u16 = 1;
/// Version written when any layer carries int8 quantized weights.
const VERSION_QUANT: u16 = 2;
/// Per-layer kind tags used by [`VERSION_QUANT`] buffers.
const LAYER_F32: u8 = 0;
const LAYER_INT8: u8 = 1;

/// A streaming little-endian writer over a byte vector.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a u8.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f32.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor-based little-endian reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(NnError::Corrupt(format!(
                "unexpected end of buffer at offset {} (wanted {n} more bytes of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a u8.
    pub fn get_u8(&mut self) -> crate::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> crate::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> crate::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> crate::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian f32.
    pub fn get_f32(&mut self) -> crate::Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn write_dense(w: &mut ByteWriter, layer: &Dense, tagged: bool) {
    match layer.quantized() {
        Some(quant) if tagged => {
            w.put_u8(LAYER_INT8);
            w.put_u8(layer.activation().tag());
            w.put_u32(quant.k() as u32);
            w.put_u32(quant.n() as u32);
            for &s in quant.column_scales() {
                w.put_f32(s);
            }
            for q in quant.weights_row_major() {
                w.put_u8(q as u8);
            }
            for &v in layer.bias().as_slice() {
                w.put_f32(v);
            }
            return;
        }
        _ => {}
    }
    if tagged {
        w.put_u8(LAYER_F32);
    }
    w.put_u8(layer.activation().tag());
    w.put_u32(layer.weight().rows() as u32);
    w.put_u32(layer.weight().cols() as u32);
    for &v in layer.weight().as_slice() {
        w.put_f32(v);
    }
    for &v in layer.bias().as_slice() {
        w.put_f32(v);
    }
}

fn read_layer_shape(r: &mut ByteReader<'_>) -> crate::Result<(Activation, usize, usize)> {
    let act = Activation::from_tag(r.get_u8()?)
        .ok_or_else(|| NnError::Corrupt("unknown activation tag".into()))?;
    let rows = r.get_u32()? as usize;
    let cols = r.get_u32()? as usize;
    if rows == 0 || cols == 0 || rows.saturating_mul(cols) > 1 << 28 {
        return Err(NnError::Corrupt(format!(
            "implausible layer shape {rows}x{cols}"
        )));
    }
    Ok((act, rows, cols))
}

fn read_dense(r: &mut ByteReader<'_>, tagged: bool) -> crate::Result<Dense> {
    let kind = if tagged { r.get_u8()? } else { LAYER_F32 };
    match kind {
        LAYER_F32 => {
            let (act, rows, cols) = read_layer_shape(r)?;
            let mut weight = Matrix::zeros(rows, cols);
            for v in weight.as_mut_slice() {
                *v = r.get_f32()?;
            }
            let mut bias = Matrix::zeros(1, cols);
            for v in bias.as_mut_slice() {
                *v = r.get_f32()?;
            }
            Dense::from_parameters(weight, bias, act)
        }
        LAYER_INT8 => {
            let (act, rows, cols) = read_layer_shape(r)?;
            let mut scales = vec![0.0f32; cols];
            for s in &mut scales {
                *s = r.get_f32()?;
            }
            let raw = r.get_bytes(rows * cols)?;
            let q: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
            let mut bias = Matrix::zeros(1, cols);
            for v in bias.as_mut_slice() {
                *v = r.get_f32()?;
            }
            Dense::from_quantized_parameters(rows, cols, &q, &scales, bias, act)
        }
        other => Err(NnError::Corrupt(format!("unknown layer kind tag {other}"))),
    }
}

/// Serializes a multi-task model into a self-describing byte buffer.
pub fn serialize_multitask(model: &MultiTaskModel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    // Pure-f32 models keep writing version 1, byte-identical to earlier
    // releases; the tagged version 2 layout is used exactly when a layer
    // carries int8 panels.
    let tagged = model.is_quantized();
    w.put_u16(if tagged { VERSION_QUANT } else { VERSION });
    let spec = model.spec();
    w.put_u32(spec.input_dim as u32);
    w.put_u32(spec.shared_hidden.len() as u32);
    for &s in &spec.shared_hidden {
        w.put_u32(s as u32);
    }
    w.put_u32(spec.heads.len() as u32);
    for head in &spec.heads {
        w.put_u32(head.hidden.len() as u32);
        for &s in &head.hidden {
            w.put_u32(s as u32);
        }
        w.put_u32(head.classes as u32);
    }
    for layer in model.trunk() {
        write_dense(&mut w, layer, tagged);
    }
    for head in model.heads() {
        for layer in head {
            write_dense(&mut w, layer, tagged);
        }
    }
    w.into_bytes()
}

/// Deserializes a multi-task model produced by [`serialize_multitask`].
pub fn deserialize_multitask(bytes: &[u8]) -> crate::Result<MultiTaskModel> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_bytes(4)?;
    if magic != MAGIC {
        return Err(NnError::Corrupt("bad magic".into()));
    }
    let version = r.get_u16()?;
    if version != VERSION && version != VERSION_QUANT {
        return Err(NnError::Corrupt(format!("unsupported version {version}")));
    }
    let tagged = version == VERSION_QUANT;
    let input_dim = r.get_u32()? as usize;
    let n_shared = r.get_u32()? as usize;
    if n_shared > 64 {
        return Err(NnError::Corrupt("implausible shared layer count".into()));
    }
    let mut shared_hidden = Vec::with_capacity(n_shared);
    for _ in 0..n_shared {
        shared_hidden.push(r.get_u32()? as usize);
    }
    let n_heads = r.get_u32()? as usize;
    if n_heads == 0 || n_heads > 4096 {
        return Err(NnError::Corrupt("implausible head count".into()));
    }
    let mut heads = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        let n_hidden = r.get_u32()? as usize;
        if n_hidden > 64 {
            return Err(NnError::Corrupt("implausible private layer count".into()));
        }
        let mut hidden = Vec::with_capacity(n_hidden);
        for _ in 0..n_hidden {
            hidden.push(r.get_u32()? as usize);
        }
        let classes = r.get_u32()? as usize;
        heads.push(TaskHeadSpec { hidden, classes });
    }
    let spec = MultiTaskSpec {
        input_dim,
        shared_hidden,
        heads,
    };
    let mut trunk = Vec::with_capacity(spec.shared_hidden.len());
    for _ in 0..spec.shared_hidden.len() {
        trunk.push(read_dense(&mut r, tagged)?);
    }
    let mut head_layers = Vec::with_capacity(spec.heads.len());
    for head_spec in &spec.heads {
        let mut layers = Vec::with_capacity(head_spec.hidden.len() + 1);
        for _ in 0..=head_spec.hidden.len() {
            layers.push(read_dense(&mut r, tagged)?);
        }
        head_layers.push(layers);
    }
    if r.remaining() != 0 {
        return Err(NnError::Corrupt(format!(
            "{} trailing bytes after model",
            r.remaining()
        )));
    }
    MultiTaskModel::from_layers(spec, trunk, head_layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multitask::{MultiTaskSpec, TaskHeadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_model(seed: u64) -> MultiTaskModel {
        let spec = MultiTaskSpec {
            input_dim: 10,
            shared_hidden: vec![16, 8],
            heads: vec![
                TaskHeadSpec::with_hidden(vec![12], 5),
                TaskHeadSpec::direct(7),
            ],
        };
        MultiTaskModel::new(&mut StdRng::seed_from_u64(seed), &spec).unwrap()
    }

    #[test]
    fn byte_reader_writer_round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(123456);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-1.25);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 123456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), -1.25);
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn model_round_trips_exactly() {
        let model = sample_model(3);
        let bytes = serialize_multitask(&model);
        let restored = deserialize_multitask(&bytes).unwrap();
        assert_eq!(restored.spec(), model.spec());
        // Same predictions on a batch.
        let x = crate::encoding::KeyEncoder::with_bits(10).encode_batch(&[0, 1, 5, 999]);
        let a = model.predict_classes(&x).unwrap();
        let b = restored.predict_classes(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serialized_size_tracks_parameter_count() {
        let model = sample_model(4);
        let bytes = serialize_multitask(&model);
        // Parameters dominate: serialized size must be at least 4 bytes per parameter
        // and not wildly larger.
        assert!(bytes.len() >= model.parameter_count() * 4);
        assert!(bytes.len() <= model.parameter_count() * 4 + 1024);
    }

    /// A quantized model writes version 2, shrinks markedly (int8 weights
    /// dominate), and reloads into a model with bit-identical predictions.
    #[test]
    fn quantized_model_round_trips_exactly_as_version_2() {
        let mut model = sample_model(6);
        let f32_bytes = serialize_multitask(&model);
        assert_eq!(u16::from_le_bytes([f32_bytes[4], f32_bytes[5]]), 1);
        model.quantize_int8().unwrap();
        let bytes = serialize_multitask(&model);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        // Weight bytes shrink ~4x; scales/bias/headers keep it above 1/4.
        assert!(
            bytes.len() * 2 < f32_bytes.len(),
            "quantized {} vs f32 {}",
            bytes.len(),
            f32_bytes.len()
        );
        let restored = deserialize_multitask(&bytes).unwrap();
        assert!(restored.is_quantized());
        let x = crate::encoding::KeyEncoder::with_bits(10).encode_batch(&[0, 1, 5, 999, 12345]);
        let a = model.forward(&x).unwrap();
        let b = restored.forward(&x).unwrap();
        for (ma, mb) in a.iter().zip(&b) {
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(ma), bits(mb));
        }
        // And a second serialization of the reloaded model is byte-identical
        // (quantization is a fixed point).
        assert_eq!(serialize_multitask(&restored), bytes);
    }

    #[test]
    fn unknown_versions_and_layer_kinds_are_rejected() {
        let bytes = serialize_multitask(&sample_model(7));
        // A future version must be rejected with a typed error, not misparsed.
        let mut future = bytes.clone();
        future[4] = 3;
        future[5] = 0;
        assert!(matches!(
            deserialize_multitask(&future),
            Err(NnError::Corrupt(_))
        ));
        // A version-2 buffer with an unknown layer kind tag is rejected.
        let mut model = sample_model(7);
        model.quantize_int8().unwrap();
        let mut tagged = serialize_multitask(&model);
        // The first layer kind tag sits right after the spec header: magic(4)
        // + version(2) + input_dim(4) + n_shared(4) + 2 widths(8) + n_heads(4)
        // + head0 [n_hidden(4) + width(4) + classes(4)] + head1 [n_hidden(4) +
        // classes(4)] = byte 46 for `sample_model`'s spec.
        const FIRST_TAG: usize = 46;
        assert_eq!(tagged[FIRST_TAG], LAYER_INT8);
        tagged[FIRST_TAG] = 9;
        assert!(deserialize_multitask(&tagged).is_err());
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        let model = sample_model(5);
        let bytes = serialize_multitask(&model);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(deserialize_multitask(&bad).is_err());
        // Truncated.
        assert!(deserialize_multitask(&bytes[..bytes.len() / 2]).is_err());
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0u8; 3]);
        assert!(deserialize_multitask(&extended).is_err());
        // Empty.
        assert!(deserialize_multitask(&[]).is_err());
    }
}
