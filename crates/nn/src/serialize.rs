//! Binary (de)serialization of models.
//!
//! DeepMapping's Eq.-1 objective charges the learned model by its *serialized* size,
//! and the lookup path deserializes the model once at load time (the paper ships an
//! ONNX file).  This module defines a small self-describing little-endian format:
//!
//! ```text
//! magic "DMNN" | version u16 | input_dim u32
//! | n_shared u32 | shared widths u32...
//! | n_heads u32 | per head: n_hidden u32, hidden widths u32..., classes u32
//! | per layer in (trunk, then heads in order): activation u8, rows u32, cols u32,
//!   weight f32..., bias f32...
//! ```

use crate::layer::{Activation, Dense};
use crate::multitask::{MultiTaskModel, MultiTaskSpec, TaskHeadSpec};
use crate::tensor::Matrix;
use crate::NnError;

const MAGIC: &[u8; 4] = b"DMNN";
const VERSION: u16 = 1;

/// A streaming little-endian writer over a byte vector.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a u8.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f32.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A cursor-based little-endian reader.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(NnError::Corrupt(format!(
                "unexpected end of buffer at offset {} (wanted {n} more bytes of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> crate::Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a u8.
    pub fn get_u8(&mut self) -> crate::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> crate::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> crate::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> crate::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian f32.
    pub fn get_f32(&mut self) -> crate::Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn write_dense(w: &mut ByteWriter, layer: &Dense) {
    w.put_u8(layer.activation().tag());
    w.put_u32(layer.weight().rows() as u32);
    w.put_u32(layer.weight().cols() as u32);
    for &v in layer.weight().as_slice() {
        w.put_f32(v);
    }
    for &v in layer.bias().as_slice() {
        w.put_f32(v);
    }
}

fn read_dense(r: &mut ByteReader<'_>) -> crate::Result<Dense> {
    let act = Activation::from_tag(r.get_u8()?)
        .ok_or_else(|| NnError::Corrupt("unknown activation tag".into()))?;
    let rows = r.get_u32()? as usize;
    let cols = r.get_u32()? as usize;
    if rows == 0 || cols == 0 || rows.saturating_mul(cols) > 1 << 28 {
        return Err(NnError::Corrupt(format!(
            "implausible layer shape {rows}x{cols}"
        )));
    }
    let mut weight = Matrix::zeros(rows, cols);
    for v in weight.as_mut_slice() {
        *v = r.get_f32()?;
    }
    let mut bias = Matrix::zeros(1, cols);
    for v in bias.as_mut_slice() {
        *v = r.get_f32()?;
    }
    Dense::from_parameters(weight, bias, act)
}

/// Serializes a multi-task model into a self-describing byte buffer.
pub fn serialize_multitask(model: &MultiTaskModel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(MAGIC);
    w.put_u16(VERSION);
    let spec = model.spec();
    w.put_u32(spec.input_dim as u32);
    w.put_u32(spec.shared_hidden.len() as u32);
    for &s in &spec.shared_hidden {
        w.put_u32(s as u32);
    }
    w.put_u32(spec.heads.len() as u32);
    for head in &spec.heads {
        w.put_u32(head.hidden.len() as u32);
        for &s in &head.hidden {
            w.put_u32(s as u32);
        }
        w.put_u32(head.classes as u32);
    }
    for layer in model.trunk() {
        write_dense(&mut w, layer);
    }
    for head in model.heads() {
        for layer in head {
            write_dense(&mut w, layer);
        }
    }
    w.into_bytes()
}

/// Deserializes a multi-task model produced by [`serialize_multitask`].
pub fn deserialize_multitask(bytes: &[u8]) -> crate::Result<MultiTaskModel> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_bytes(4)?;
    if magic != MAGIC {
        return Err(NnError::Corrupt("bad magic".into()));
    }
    let version = r.get_u16()?;
    if version != VERSION {
        return Err(NnError::Corrupt(format!("unsupported version {version}")));
    }
    let input_dim = r.get_u32()? as usize;
    let n_shared = r.get_u32()? as usize;
    if n_shared > 64 {
        return Err(NnError::Corrupt("implausible shared layer count".into()));
    }
    let mut shared_hidden = Vec::with_capacity(n_shared);
    for _ in 0..n_shared {
        shared_hidden.push(r.get_u32()? as usize);
    }
    let n_heads = r.get_u32()? as usize;
    if n_heads == 0 || n_heads > 4096 {
        return Err(NnError::Corrupt("implausible head count".into()));
    }
    let mut heads = Vec::with_capacity(n_heads);
    for _ in 0..n_heads {
        let n_hidden = r.get_u32()? as usize;
        if n_hidden > 64 {
            return Err(NnError::Corrupt("implausible private layer count".into()));
        }
        let mut hidden = Vec::with_capacity(n_hidden);
        for _ in 0..n_hidden {
            hidden.push(r.get_u32()? as usize);
        }
        let classes = r.get_u32()? as usize;
        heads.push(TaskHeadSpec { hidden, classes });
    }
    let spec = MultiTaskSpec {
        input_dim,
        shared_hidden,
        heads,
    };
    let mut trunk = Vec::with_capacity(spec.shared_hidden.len());
    for _ in 0..spec.shared_hidden.len() {
        trunk.push(read_dense(&mut r)?);
    }
    let mut head_layers = Vec::with_capacity(spec.heads.len());
    for head_spec in &spec.heads {
        let mut layers = Vec::with_capacity(head_spec.hidden.len() + 1);
        for _ in 0..=head_spec.hidden.len() {
            layers.push(read_dense(&mut r)?);
        }
        head_layers.push(layers);
    }
    if r.remaining() != 0 {
        return Err(NnError::Corrupt(format!(
            "{} trailing bytes after model",
            r.remaining()
        )));
    }
    MultiTaskModel::from_layers(spec, trunk, head_layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multitask::{MultiTaskSpec, TaskHeadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_model(seed: u64) -> MultiTaskModel {
        let spec = MultiTaskSpec {
            input_dim: 10,
            shared_hidden: vec![16, 8],
            heads: vec![
                TaskHeadSpec::with_hidden(vec![12], 5),
                TaskHeadSpec::direct(7),
            ],
        };
        MultiTaskModel::new(&mut StdRng::seed_from_u64(seed), &spec).unwrap()
    }

    #[test]
    fn byte_reader_writer_round_trip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65535);
        w.put_u32(123456);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-1.25);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65535);
        assert_eq!(r.get_u32().unwrap(), 123456);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), -1.25);
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn model_round_trips_exactly() {
        let model = sample_model(3);
        let bytes = serialize_multitask(&model);
        let restored = deserialize_multitask(&bytes).unwrap();
        assert_eq!(restored.spec(), model.spec());
        // Same predictions on a batch.
        let x = crate::encoding::KeyEncoder::with_bits(10).encode_batch(&[0, 1, 5, 999]);
        let a = model.predict_classes(&x).unwrap();
        let b = restored.predict_classes(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serialized_size_tracks_parameter_count() {
        let model = sample_model(4);
        let bytes = serialize_multitask(&model);
        // Parameters dominate: serialized size must be at least 4 bytes per parameter
        // and not wildly larger.
        assert!(bytes.len() >= model.parameter_count() * 4);
        assert!(bytes.len() <= model.parameter_count() * 4 + 1024);
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        let model = sample_model(5);
        let bytes = serialize_multitask(&model);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(deserialize_multitask(&bad).is_err());
        // Truncated.
        assert!(deserialize_multitask(&bytes[..bytes.len() / 2]).is_err());
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0u8; 3]);
        assert!(deserialize_multitask(&extended).is_err());
        // Empty.
        assert!(deserialize_multitask(&[]).is_err());
    }
}
