//! Register-blocked, lane-vectorized inference micro-kernels over pre-packed
//! weight panels.
//!
//! The hot path of DeepMapping lookup is `batch × k` times `k × n` dense-layer
//! products.  This module repacks each weight matrix **once** (at build /
//! deserialize time) into column-major panels of [`LANES`] columns — panel `p`
//! holds columns `[8p, 8p+8)` contiguously per `k`-row, zero-padded at the
//! edge — so the inner loop is a streaming load + fused multiply-add over
//! 8-wide f32 lanes, with the bias add and activation fused into the same pass
//! over each output tile.
//!
//! ## Bit-identical kernel selection
//!
//! The auxiliary table memorizes *build-time* mispredictions, so any serve-time
//! drift in model predictions would silently break losslessness.  Every kernel
//! here is therefore defined as one fixed arithmetic recipe:
//!
//! * accumulators are laid out as 8 independent f32 lanes, initialized from the
//!   (zero-padded) bias,
//! * every multiply-add is **fused** (`f32::mul_add` in the scalar kernel, FMA
//!   instructions in the vector kernel — both round once, so they agree bit for
//!   bit),
//! * lane reductions (for the `· Wᵀ` kernel) use one **fixed tree**:
//!   `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`,
//! * rows are computed independently, so chunking, batch size and thread count
//!   cannot change any row's result.
//!
//! The scalar fallback emulates exactly this layout, which makes predictions
//! bit-identical across kernel selection (guarded by tests here and by the
//! snapshot round-trip guard in the facade crate).
//!
//! ## Selection
//!
//! [`Kernel::selected`] picks the vector kernel when the CPU supports AVX2+FMA,
//! unless `DM_NN_KERNEL=scalar` forces the fallback (CI runs the whole suite
//! once that way).  [`with_forced`] overrides the choice for the calling thread
//! — the hook the bit-identity guard tests use to exercise both kernels in one
//! process.

use crate::layer::Activation;
use crate::tensor::Matrix;
use crate::NnError;
use std::cell::Cell;
use std::sync::OnceLock;

/// Vector lane width: 8 f32 lanes (one AVX2 register).
pub const LANES: usize = 8;

/// Which micro-kernel implementation executes the packed operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable fallback emulating the 8-accumulator lane layout with
    /// `f32::mul_add` — bit-identical to [`Kernel::Vector`].
    Scalar,
    /// AVX2 + FMA lanes (x86-64).  Falls back to the scalar recipe on other
    /// hardware; results are identical either way.
    Vector,
}

impl Kernel {
    /// The process-wide kernel: `DM_NN_KERNEL=scalar` forces the fallback,
    /// `DM_NN_KERNEL=vector` asks for lanes (granted only when the CPU
    /// supports them), anything else auto-detects.  Read once.
    pub fn selected() -> Kernel {
        static SELECTED: OnceLock<Kernel> = OnceLock::new();
        *SELECTED.get_or_init(|| {
            let requested = std::env::var("DM_NN_KERNEL").unwrap_or_default();
            match requested.trim().to_ascii_lowercase().as_str() {
                "scalar" => Kernel::Scalar,
                _ if vector_available() => Kernel::Vector,
                _ => Kernel::Scalar,
            }
        })
    }

    /// Human-readable kernel name (bench/report output).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Vector => "avx2+fma",
        }
    }
}

/// Whether the vector kernel's lanes are actually available on this CPU.
pub fn vector_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

thread_local! {
    static FORCED: Cell<Option<Kernel>> = const { Cell::new(None) };
}

/// Runs `f` with the calling thread's kernel selection overridden — the test
/// hook behind the scalar-vs-vector bit-identity guards.  Only affects the
/// calling thread (drive stores through a serial pool when using this).
pub fn with_forced<T>(kernel: Kernel, f: impl FnOnce() -> T) -> T {
    let previous = FORCED.with(|slot| slot.replace(Some(kernel)));
    let result = f();
    FORCED.with(|slot| slot.set(previous));
    result
}

/// The kernel the current thread will execute packed operations with.
pub fn active() -> Kernel {
    FORCED.with(|slot| slot.get()).unwrap_or_else(Kernel::selected)
}

/// A weight matrix (`k × n`) repacked into column-major panels of [`LANES`]
/// columns, plus the layer's bias zero-padded to the panel edge.  Packed once
/// per weight mutation (build, deserialize, optimizer step); every packed
/// kernel call then streams panels with unit stride.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedPanels {
    k: usize,
    n: usize,
    /// `panel_count() * k * LANES` floats: panel `p`, row `kk`, lane `l` is at
    /// `p * k * LANES + kk * LANES + l` and holds `weight[kk][8p + l]`
    /// (zero for padding lanes `8p + l >= n`).
    data: Vec<f32>,
    /// Bias padded to `panel_count() * LANES` (zeros when the layer has none).
    bias: Vec<f32>,
}

impl PackedPanels {
    /// Packs a weight matrix and its optional `1 × n` bias row.
    pub fn pack(weight: &Matrix, bias: Option<&Matrix>) -> crate::Result<Self> {
        let (k, n) = (weight.rows(), weight.cols());
        if let Some(b) = bias {
            if b.rows() != 1 || b.cols() != n {
                return Err(NnError::ShapeMismatch {
                    context: format!(
                        "pack: weight is {k}x{n}, bias is {}x{}",
                        b.rows(),
                        b.cols()
                    ),
                });
            }
        }
        let panels = n.div_ceil(LANES);
        let mut data = vec![0.0f32; panels * k * LANES];
        for p in 0..panels {
            let base = p * k * LANES;
            for kk in 0..k {
                let row = weight.row(kk);
                for l in 0..LANES.min(n - p * LANES) {
                    data[base + kk * LANES + l] = row[p * LANES + l];
                }
            }
        }
        let mut padded_bias = vec![0.0f32; panels * LANES];
        if let Some(b) = bias {
            padded_bias[..n].copy_from_slice(b.as_slice());
        }
        Ok(PackedPanels {
            k,
            n,
            data,
            bias: padded_bias,
        })
    }

    /// Input dimension (rows of the original weight).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original weight).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of 8-column panels (including the zero-padded edge panel).
    pub fn panel_count(&self) -> usize {
        self.n.div_ceil(LANES)
    }

    /// Resident bytes of the packed representation.
    pub fn bytes(&self) -> usize {
        (self.data.len() + self.bias.len()) * std::mem::size_of::<f32>()
    }

    #[inline]
    fn panel(&self, p: usize) -> &[f32] {
        &self.data[p * self.k * LANES..(p + 1) * self.k * LANES]
    }

    #[inline]
    fn bias_panel(&self, p: usize) -> &[f32] {
        &self.bias[p * LANES..(p + 1) * LANES]
    }
}

/// `act(lhs[start .. start+count] · W + b)` over packed panels, written into a
/// fresh `count × n` matrix.  The bias initializes the accumulator lanes and
/// the activation is applied to each output tile while it is hot, so every
/// tile is touched once.
pub fn forward_packed(
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &PackedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    forward_packed_with(active(), lhs, start, count, panels, activation)
}

/// [`forward_packed`] with an explicit kernel (tests and micro-benchmarks).
pub fn forward_packed_with(
    kernel: Kernel,
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &PackedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    if lhs.cols() != panels.k {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_packed: lhs is {}x{}, panels expect k={}",
                lhs.rows(),
                lhs.cols(),
                panels.k
            ),
        });
    }
    if start + count > lhs.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_packed: rows [{start}, {}) of a matrix with {} rows",
                start + count,
                lhs.rows()
            ),
        });
    }
    let mut out = Matrix::zeros(count, panels.n);
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.
            x86::forward_avx2(lhs, start, count, panels, activation, out.as_mut_slice());
        },
        _ => forward_scalar_dispatch(lhs, start, count, panels, activation, out.as_mut_slice()),
    }
    Ok(out)
}

/// `lhs (m × n) · Wᵀ (n × k) -> m × k` over packed panels — the backward-pass
/// shape (`dy · Wᵀ`), reusing the forward panels ("gradients get the panels
/// for free").  Each output element is a lane-parallel dot product finished by
/// the fixed reduction tree.
pub fn matmul_transpose_packed(lhs: &Matrix, panels: &PackedPanels) -> crate::Result<Matrix> {
    matmul_transpose_packed_with(active(), lhs, panels)
}

/// [`matmul_transpose_packed`] with an explicit kernel.
pub fn matmul_transpose_packed_with(
    kernel: Kernel,
    lhs: &Matrix,
    panels: &PackedPanels,
) -> crate::Result<Matrix> {
    if lhs.cols() != panels.n {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "matmul_transpose_packed: lhs is {}x{}, panels expect n={}",
                lhs.rows(),
                lhs.cols(),
                panels.n
            ),
        });
    }
    let mut out = Matrix::zeros(lhs.rows(), panels.k);
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.
            x86::matmul_wt_avx2(lhs, panels, out.as_mut_slice());
        },
        _ => matmul_wt_scalar_dispatch(lhs, panels, out.as_mut_slice()),
    }
    Ok(out)
}

/// `lhsᵀ (k × m) · rhs (k × n) -> m × n` without materializing the transpose —
/// the weight-gradient shape (`xᵀ · dy`), lane-vectorized over the contiguous
/// `rhs` rows.  Operations are element-wise fused multiply-adds, so the scalar
/// and vector kernels agree bit for bit.
pub fn transpose_matmul(lhs: &Matrix, rhs: &Matrix) -> crate::Result<Matrix> {
    transpose_matmul_with(active(), lhs, rhs)
}

/// [`transpose_matmul`] with an explicit kernel.
pub fn transpose_matmul_with(
    kernel: Kernel,
    lhs: &Matrix,
    rhs: &Matrix,
) -> crate::Result<Matrix> {
    if lhs.rows() != rhs.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "transpose_matmul: lhs is {}x{}, rhs is {}x{}",
                lhs.rows(),
                lhs.cols(),
                rhs.rows(),
                rhs.cols()
            ),
        });
    }
    let mut out = Matrix::zeros(lhs.cols(), rhs.cols());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.
            x86::transpose_matmul_avx2(lhs, rhs, out.as_mut_slice());
        },
        _ => transpose_matmul_scalar_dispatch(lhs, rhs, out.as_mut_slice()),
    }
    Ok(out)
}

/// The fixed lane-reduction tree both kernels finish dot products with:
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — the exact sum order of the vector
/// kernel's extract/add shuffle sequence.
#[inline(always)]
pub fn reduce_lanes(v: [f32; LANES]) -> f32 {
    let s04 = v[0] + v[4];
    let s15 = v[1] + v[5];
    let s26 = v[2] + v[6];
    let s37 = v[3] + v[7];
    (s04 + s26) + (s15 + s37)
}

/// Activation applied lane-wise to a freshly computed tile.  ReLU is defined as
/// `if v < 0.0 { 0.0 } else { v }` (keeps `-0.0` and NaN), which both kernels
/// implement identically; sigmoid/tanh run scalar over the stored tile in both.
#[inline(always)]
fn apply_activation_slice(activation: Activation, out: &mut [f32]) {
    match activation {
        Activation::Linear => {}
        Activation::Relu => {
            for v in out {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        Activation::Sigmoid => {
            for v in out {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
        Activation::Tanh => {
            for v in out {
                *v = v.tanh();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernel bodies.
//
// Each body is `#[inline(always)]` and compiled twice: once portably, and once
// under `#[target_feature(enable = "fma")]` so that on FMA hardware the forced
// scalar kernel uses hardware fused multiply-adds instead of libm `fmaf` calls.
// Both compute the identical correctly-rounded fused result.
// ---------------------------------------------------------------------------

#[inline(always)]
fn forward_scalar_body(
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &PackedPanels,
    activation: Activation,
    out: &mut [f32],
) {
    let n = panels.n;
    let k = panels.k;
    for i in 0..count {
        let lhs_row = lhs.row(start + i);
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..panels.panel_count() {
            let panel = panels.panel(p);
            let mut acc: [f32; LANES] = panels.bias_panel(p).try_into().expect("lane width");
            for (kk, &a) in lhs_row.iter().enumerate().take(k) {
                let w = &panel[kk * LANES..(kk + 1) * LANES];
                for (lane, &wl) in acc.iter_mut().zip(w) {
                    *lane = a.mul_add(wl, *lane);
                }
            }
            let cols = LANES.min(n - p * LANES);
            let tile = &mut out_row[p * LANES..p * LANES + cols];
            tile.copy_from_slice(&acc[..cols]);
            apply_activation_slice(activation, tile);
        }
    }
}

#[inline(always)]
fn matmul_wt_scalar_body(lhs: &Matrix, panels: &PackedPanels, out: &mut [f32]) {
    let k = panels.k;
    let n = panels.n;
    let np = panels.panel_count();
    // Zero-padded copy of each lhs row's edge panel, built once per row.
    for i in 0..lhs.rows() {
        let lhs_row = lhs.row(i);
        let out_row = &mut out[i * k..(i + 1) * k];
        // Process output columns in blocks of 8 accumulator groups so the
        // panel stream is read once per block while staying register-resident.
        const KC: usize = 8;
        let mut kk0 = 0;
        while kk0 < k {
            let kb = KC.min(k - kk0);
            let mut acc = [[0.0f32; LANES]; KC];
            for p in 0..np {
                let mut x = [0.0f32; LANES];
                let cols = LANES.min(n - p * LANES);
                x[..cols].copy_from_slice(&lhs_row[p * LANES..p * LANES + cols]);
                let panel = panels.panel(p);
                for (j, acc_j) in acc.iter_mut().enumerate().take(kb) {
                    let w = &panel[(kk0 + j) * LANES..(kk0 + j + 1) * LANES];
                    for ((lane, &xl), &wl) in acc_j.iter_mut().zip(&x).zip(w) {
                        *lane = xl.mul_add(wl, *lane);
                    }
                }
            }
            for (j, &acc_j) in acc.iter().enumerate().take(kb) {
                out_row[kk0 + j] = reduce_lanes(acc_j);
            }
            kk0 += kb;
        }
    }
}

#[inline(always)]
fn transpose_matmul_scalar_body(lhs: &Matrix, rhs: &Matrix, out: &mut [f32]) {
    let n = rhs.cols();
    for kk in 0..lhs.rows() {
        let lhs_row = lhs.row(kk);
        let rhs_row = rhs.row(kk);
        for (i, &a) in lhs_row.iter().enumerate() {
            // ReLU activations are zero-heavy; both kernels skip identically.
            if a == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                *o = a.mul_add(b, *o);
            }
        }
    }
}

macro_rules! scalar_dispatch {
    ($dispatch:ident, $body:ident, $fma:ident, ($($arg:ident: $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "fma")]
        unsafe fn $fma($($arg: $ty),*) {
            $body($($arg),*);
        }

        fn $dispatch($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("fma") {
                    // Safety: FMA availability checked at runtime; the body's
                    // `mul_add` then compiles to hardware FMA (same correctly
                    // rounded result as the portable libm path).
                    unsafe { $fma($($arg),*) };
                    return;
                }
            }
            $body($($arg),*);
        }
    };
}

scalar_dispatch!(
    forward_scalar_dispatch,
    forward_scalar_body,
    forward_scalar_fma,
    (
        lhs: &Matrix,
        start: usize,
        count: usize,
        panels: &PackedPanels,
        activation: Activation,
        out: &mut [f32]
    )
);

scalar_dispatch!(
    matmul_wt_scalar_dispatch,
    matmul_wt_scalar_body,
    matmul_wt_scalar_fma,
    (lhs: &Matrix, panels: &PackedPanels, out: &mut [f32])
);

scalar_dispatch!(
    transpose_matmul_scalar_dispatch,
    transpose_matmul_scalar_body,
    transpose_matmul_scalar_fma,
    (lhs: &Matrix, rhs: &Matrix, out: &mut [f32])
);

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{apply_activation_slice, PackedPanels, LANES};
    use crate::layer::Activation;
    use crate::tensor::Matrix;
    use std::arch::x86_64::*;

    /// Row-block size of the forward micro-kernel: 4 rows × 1 panel = 4
    /// accumulator registers sharing each panel-row load.
    const MR: usize = 4;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn forward_avx2(
        lhs: &Matrix,
        start: usize,
        count: usize,
        panels: &PackedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        let n = panels.n;
        let k = panels.k;
        let np = panels.panel_count();
        let mut r = 0;
        while r + MR <= count {
            for p in 0..np {
                let panel = panels.panel(p);
                let bias = _mm256_loadu_ps(panels.bias_panel(p).as_ptr());
                let rows: [&[f32]; MR] = std::array::from_fn(|j| lhs.row(start + r + j));
                let mut acc = [bias; MR];
                #[allow(clippy::needless_range_loop)] // kk indexes 4 rows + the panel in lockstep
                for kk in 0..k {
                    let w = _mm256_loadu_ps(panel.as_ptr().add(kk * LANES));
                    for j in 0..MR {
                        acc[j] = _mm256_fmadd_ps(_mm256_set1_ps(rows[j][kk]), w, acc[j]);
                    }
                }
                for (j, &acc_j) in acc.iter().enumerate() {
                    store_tile(acc_j, activation, out, (r + j) * n + p * LANES, n - p * LANES);
                }
            }
            r += MR;
        }
        while r < count {
            let lhs_row = lhs.row(start + r);
            for p in 0..np {
                let panel = panels.panel(p);
                let mut acc = _mm256_loadu_ps(panels.bias_panel(p).as_ptr());
                for (kk, &a) in lhs_row.iter().enumerate().take(k) {
                    let w = _mm256_loadu_ps(panel.as_ptr().add(kk * LANES));
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(a), w, acc);
                }
                store_tile(acc, activation, out, r * n + p * LANES, n - p * LANES);
            }
            r += 1;
        }
    }

    /// Stores up to 8 lanes of a finished tile and applies the activation in
    /// the same pass (ReLU in registers; sigmoid/tanh scalar on the stored
    /// lanes, identical to the scalar kernel's recipe).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn store_tile(
        acc: __m256,
        activation: Activation,
        out: &mut [f32],
        offset: usize,
        remaining_cols: usize,
    ) {
        let acc = match activation {
            Activation::Relu => {
                // `if v < 0.0 { 0.0 }`: lanes where v < 0 are cleared; -0.0 and
                // NaN compare not-less-than and pass through — exactly the
                // scalar recipe.
                let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(acc, _mm256_setzero_ps());
                _mm256_andnot_ps(lt, acc)
            }
            _ => acc,
        };
        let cols = LANES.min(remaining_cols);
        if cols == LANES {
            _mm256_storeu_ps(out.as_mut_ptr().add(offset), acc);
        } else {
            let mut tmp = [0.0f32; LANES];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
            out[offset..offset + cols].copy_from_slice(&tmp[..cols]);
        }
        if matches!(activation, Activation::Sigmoid | Activation::Tanh) {
            apply_activation_slice(activation, &mut out[offset..offset + cols]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn matmul_wt_avx2(lhs: &Matrix, panels: &PackedPanels, out: &mut [f32]) {
        let k = panels.k;
        let n = panels.n;
        let np = panels.panel_count();
        const KC: usize = 8;
        for i in 0..lhs.rows() {
            let lhs_row = lhs.row(i);
            let mut kk0 = 0;
            while kk0 < k {
                let kb = KC.min(k - kk0);
                let mut acc = [_mm256_setzero_ps(); KC];
                for p in 0..np {
                    let cols = LANES.min(n - p * LANES);
                    let x = if cols == LANES {
                        _mm256_loadu_ps(lhs_row.as_ptr().add(p * LANES))
                    } else {
                        let mut tmp = [0.0f32; LANES];
                        tmp[..cols].copy_from_slice(&lhs_row[p * LANES..p * LANES + cols]);
                        _mm256_loadu_ps(tmp.as_ptr())
                    };
                    let panel = panels.panel(p);
                    for (j, acc_j) in acc.iter_mut().enumerate().take(kb) {
                        let w = _mm256_loadu_ps(panel.as_ptr().add((kk0 + j) * LANES));
                        *acc_j = _mm256_fmadd_ps(x, w, *acc_j);
                    }
                }
                for (j, &acc_j) in acc.iter().enumerate().take(kb) {
                    out[i * k + kk0 + j] = reduce_lanes_avx(acc_j);
                }
                kk0 += kb;
            }
        }
    }

    /// The vector form of [`super::reduce_lanes`]: extract/add the 128-bit
    /// halves, then the movehl/shuffle pair — summing in exactly the fixed
    /// tree's order.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn reduce_lanes_avx(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        // [l0+l4, l1+l5, l2+l6, l3+l7]
        let quad = _mm_add_ps(lo, hi);
        // [s04+s26, s15+s37, ..]
        let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let one = _mm_add_ss(pair, _mm_shuffle_ps::<0b01>(pair, pair));
        _mm_cvtss_f32(one)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn transpose_matmul_avx2(lhs: &Matrix, rhs: &Matrix, out: &mut [f32]) {
        let n = rhs.cols();
        for kk in 0..lhs.rows() {
            let lhs_row = lhs.row(kk);
            let rhs_row = rhs.row(kk);
            for (i, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                let av = _mm256_set1_ps(a);
                let mut j = 0;
                while j + LANES <= n {
                    let o = _mm256_loadu_ps(out_row.as_ptr().add(j));
                    let b = _mm256_loadu_ps(rhs_row.as_ptr().add(j));
                    _mm256_storeu_ps(out_row.as_mut_ptr().add(j), _mm256_fmadd_ps(av, b, o));
                    j += LANES;
                }
                for (o, &b) in out_row[j..].iter_mut().zip(&rhs_row[j..]) {
                    *o = a.mul_add(b, *o);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill that exercises signs, zeros and
    /// magnitudes without a PRNG dependency.
    fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let h = (r as u64 * 31 + c as u64 * 7 + salt).wrapping_mul(0x9E3779B97F4A7C15);
                let v = ((h >> 40) as i32 % 1000) as f32 / 250.0 - 2.0;
                m.set(r, c, if h.is_multiple_of(5) { 0.0 } else { v });
            }
        }
        m
    }

    fn reference_forward(
        x: &Matrix,
        w: &Matrix,
        b: &Matrix,
        act: Activation,
    ) -> Matrix {
        let mut z = x.matmul(w).unwrap();
        z.add_row_broadcast(b).unwrap();
        act.apply_in_place(&mut z);
        z
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    fn both_kernels() -> Vec<Kernel> {
        vec![Kernel::Scalar, Kernel::Vector]
    }

    #[test]
    fn pack_lays_out_panels_with_zero_padding() {
        let w = fill(3, 10, 1);
        let b = fill(1, 10, 2);
        let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
        assert_eq!(panels.k(), 3);
        assert_eq!(panels.n(), 10);
        assert_eq!(panels.panel_count(), 2);
        assert!(panels.bytes() > 0);
        // Panel 0, row 1, lane 3 is weight[1][3]; panel 1, row 2, lane 1 is
        // weight[2][9]; padding lanes are zero.
        assert_eq!(panels.panel(0)[LANES + 3], w.get(1, 3));
        assert_eq!(panels.panel(1)[2 * LANES + 1], w.get(2, 9));
        for lane in 2..LANES {
            assert_eq!(panels.panel(1)[2 * LANES + lane], 0.0);
            assert_eq!(panels.bias_panel(1)[lane], 0.0);
        }
        assert_eq!(panels.bias_panel(1)[1], b.get(0, 9));
    }

    #[test]
    fn pack_rejects_mismatched_bias() {
        let w = Matrix::zeros(3, 4);
        let bad = Matrix::zeros(1, 5);
        assert!(PackedPanels::pack(&w, Some(&bad)).is_err());
    }

    /// The packed forward kernel must agree with the textbook matmul + bias +
    /// activation across every m/n/k remainder class of the lane and panel
    /// widths — including empty and single-row inputs.
    #[test]
    fn forward_packed_matches_reference_across_remainders() {
        for kernel in both_kernels() {
            for &m in &[0usize, 1, 3, 4, 5, 9] {
                for &k in &[1usize, 4, 7, 8, 9, 17] {
                    for &n in &[1usize, 7, 8, 9, 16, 19] {
                        for act in [Activation::Linear, Activation::Relu, Activation::Tanh] {
                            let x = fill(m, k, 3);
                            let w = fill(k, n, 4);
                            let b = fill(1, n, 5);
                            let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
                            let got =
                                forward_packed_with(kernel, &x, 0, m, &panels, act).unwrap();
                            let expected = reference_forward(&x, &w, &b, act);
                            assert_close(&got, &expected);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forward_packed_row_windows_match_full_pass() {
        let x = fill(10, 9, 6);
        let w = fill(9, 12, 7);
        let b = fill(1, 12, 8);
        let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
        let full = forward_packed(&x, 0, 10, &panels, Activation::Relu).unwrap();
        for start in 0..10 {
            for count in 0..=(10 - start) {
                let window =
                    forward_packed(&x, start, count, &panels, Activation::Relu).unwrap();
                for r in 0..count {
                    assert_eq!(window.row(r), full.row(start + r), "window [{start}; {count})");
                }
            }
        }
        assert!(forward_packed(&x, 8, 3, &panels, Activation::Relu).is_err());
        let wrong_k = fill(4, 8, 1);
        assert!(forward_packed(&wrong_k, 0, 4, &panels, Activation::Relu).is_err());
    }

    /// Scalar and vector kernels must agree bit for bit — the invariant that
    /// keeps aux-table memorization lossless across kernel selection.
    #[test]
    fn scalar_and_vector_kernels_are_bit_identical() {
        if !vector_available() {
            return; // vector lanes degrade to the scalar recipe anyway
        }
        for &(m, k, n) in &[(1usize, 5usize, 3usize), (4, 8, 8), (7, 33, 21), (64, 40, 100)] {
            let x = fill(m, k, 11);
            let w = fill(k, n, 12);
            let b = fill(1, n, 13);
            let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
            for act in [
                Activation::Linear,
                Activation::Relu,
                Activation::Sigmoid,
                Activation::Tanh,
            ] {
                let s = forward_packed_with(Kernel::Scalar, &x, 0, m, &panels, act).unwrap();
                let v = forward_packed_with(Kernel::Vector, &x, 0, m, &panels, act).unwrap();
                let s_bits: Vec<u32> = s.as_slice().iter().map(|f| f.to_bits()).collect();
                let v_bits: Vec<u32> = v.as_slice().iter().map(|f| f.to_bits()).collect();
                assert_eq!(s_bits, v_bits, "forward {m}x{k}x{n} {act:?}");
            }
            let dy = fill(m, n, 14);
            let s = matmul_transpose_packed_with(Kernel::Scalar, &dy, &panels).unwrap();
            let v = matmul_transpose_packed_with(Kernel::Vector, &dy, &panels).unwrap();
            assert_eq!(
                s.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                v.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "matmul_wt {m}x{n}x{k}"
            );
            let xt = fill(k, m, 15);
            let rhs = fill(k, n, 16);
            let s = transpose_matmul_with(Kernel::Scalar, &xt, &rhs).unwrap();
            let v = transpose_matmul_with(Kernel::Vector, &xt, &rhs).unwrap();
            assert_eq!(
                s.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                v.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                "transpose_matmul {k}x{m}x{n}"
            );
        }
    }

    #[test]
    fn matmul_transpose_packed_matches_explicit_transpose() {
        for kernel in both_kernels() {
            for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 9, 7), (5, 16, 8), (6, 21, 33)] {
                let lhs = fill(m, n, 21);
                let w = fill(k, n, 22);
                let panels = PackedPanels::pack(&w, None).unwrap();
                let got = matmul_transpose_packed_with(kernel, &lhs, &panels).unwrap();
                let expected = lhs.matmul(&w.transpose()).unwrap();
                assert_close(&got, &expected);
            }
        }
        let lhs = Matrix::zeros(2, 5);
        let panels = PackedPanels::pack(&Matrix::zeros(3, 4), None).unwrap();
        assert!(matmul_transpose_packed(&lhs, &panels).is_err());
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        for kernel in both_kernels() {
            for &(k, m, n) in &[(1usize, 1usize, 1usize), (4, 3, 9), (9, 8, 16), (17, 5, 21)] {
                let lhs = fill(k, m, 31);
                let rhs = fill(k, n, 32);
                let got = transpose_matmul_with(kernel, &lhs, &rhs).unwrap();
                let expected = lhs.transpose().matmul(&rhs).unwrap();
                assert_close(&got, &expected);
            }
        }
        assert!(transpose_matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 5)).is_err());
    }

    #[test]
    fn reduce_lanes_is_the_documented_tree() {
        let v = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(reduce_lanes(v), 36.0);
        // Order sensitivity: the tree is ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
        let v = [1e8f32, 1.0, -1e8, 0.5, 1e8, 0.25, -1e8, 0.125];
        let expected = ((1e8f32 + 1e8) + (-1e8 + -1e8)) + ((1.0 + 0.25) + (0.5 + 0.125));
        assert_eq!(reduce_lanes(v), expected);
    }

    #[test]
    fn forced_kernel_overrides_selection_on_this_thread() {
        let outside = active();
        with_forced(Kernel::Scalar, || {
            assert_eq!(active(), Kernel::Scalar);
            with_forced(Kernel::Vector, || assert_eq!(active(), Kernel::Vector));
            assert_eq!(active(), Kernel::Scalar);
        });
        assert_eq!(active(), outside);
        assert!(!Kernel::Scalar.name().is_empty());
        assert!(!Kernel::Vector.name().is_empty());
    }
}
