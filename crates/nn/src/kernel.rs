//! Register-blocked, lane-vectorized inference micro-kernels over pre-packed
//! weight panels.
//!
//! The hot path of DeepMapping lookup is `batch × k` times `k × n` dense-layer
//! products.  This module repacks each weight matrix **once** (at build /
//! deserialize time) into column-major panels of [`LANES`] columns — panel `p`
//! holds columns `[16p, 16p+16)` contiguously per `k`-row, zero-padded at the
//! edge — so the inner loop is a streaming load + fused multiply-add over
//! 16-wide f32 lanes (one AVX-512 register; the AVX2 kernel works the same
//! panel as two 8-lane halves), with the bias add and activation fused into
//! the same pass over each output tile.
//!
//! Alongside the f32 panels there is an int8 path: [`QuantizedPanels`] holds
//! per-output-column symmetrically quantized weights in k-pair-interleaved
//! panels so the inner loop is a widening multiply-add (`vpmaddwd`: 32 int8
//! products per AVX-512 register pair) into exact i32 accumulators, with the
//! dequantize + bias + activation fused into the tile store.
//!
//! ## Bit-identical kernel selection
//!
//! The auxiliary table memorizes *build-time* mispredictions, so any serve-time
//! drift in model predictions would silently break losslessness.  Every kernel
//! here is therefore defined as one fixed arithmetic recipe:
//!
//! * f32 accumulators are laid out as 16 independent lanes, initialized from
//!   the (zero-padded) bias,
//! * every multiply-add is **fused** (`f32::mul_add` in the scalar kernel, FMA
//!   instructions in the vector kernels — all round once, so they agree bit
//!   for bit),
//! * lane reductions (for the `· Wᵀ` kernel) use one **fixed tree**: fold the
//!   16 lanes in half (`s_i = l_i + l_{i+8}`), then
//!   `((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))` — exactly what the AVX-512
//!   extract/add plus the AVX2 shuffle sequence computes,
//! * the int8 path quantizes each input row **once** through a single scalar
//!   helper, accumulates in exact i32 arithmetic (order-independent), and
//!   dequantizes through one fixed f32 epilogue — so its scalar, AVX2 and
//!   AVX-512 forms are structurally identical,
//! * rows are computed independently, so chunking, batch size and thread count
//!   cannot change any row's result.
//!
//! The scalar fallback emulates exactly this layout, which makes predictions
//! bit-identical across kernel selection (guarded by tests here and by the
//! snapshot round-trip guard in the facade crate).
//!
//! ## Selection
//!
//! [`Kernel::selected`] picks the vector kernel when the CPU supports AVX2+FMA
//! (using the AVX-512 forms when the CPU additionally has AVX-512 F/BW/DQ),
//! unless `DM_NN_KERNEL=scalar` forces the fallback (CI runs the whole suite
//! once that way).  [`with_forced`] overrides the choice for the calling thread
//! — the hook the bit-identity guard tests use to exercise both kernels in one
//! process.

use crate::layer::Activation;
use crate::tensor::Matrix;
use crate::NnError;
use std::cell::Cell;
use std::sync::OnceLock;

/// Vector lane width: 16 f32 lanes (one AVX-512 register; the AVX2 kernel
/// processes each panel as two 8-lane halves).
pub const LANES: usize = 16;

/// Output columns per int8 panel (same 16-column tile as the f32 panels).
pub const QLANES: usize = 16;

/// Largest input dimension the int8 path accepts: `k · 127² < i32::MAX` keeps
/// the integer accumulation exact with headroom to spare.
const QUANT_MAX_K: usize = 1 << 16;

/// Which micro-kernel implementation executes the packed operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable fallback emulating the 16-accumulator lane layout with
    /// `f32::mul_add` (and the exact i32 recipe for int8 panels) —
    /// bit-identical to [`Kernel::Vector`].
    Scalar,
    /// AVX-512 (or AVX2 + FMA) lanes on x86-64.  Falls back to the scalar
    /// recipe on other hardware; results are identical either way.
    Vector,
}

impl Kernel {
    /// The process-wide kernel: `DM_NN_KERNEL=scalar` forces the fallback,
    /// `DM_NN_KERNEL=vector` asks for lanes (granted only when the CPU
    /// supports them), anything else auto-detects.  Read once.
    pub fn selected() -> Kernel {
        static SELECTED: OnceLock<Kernel> = OnceLock::new();
        *SELECTED.get_or_init(|| {
            let requested = std::env::var("DM_NN_KERNEL").unwrap_or_default();
            match requested.trim().to_ascii_lowercase().as_str() {
                "scalar" => Kernel::Scalar,
                _ if vector_available() => Kernel::Vector,
                _ => Kernel::Scalar,
            }
        })
    }

    /// Human-readable kernel name (bench/report output).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Vector if avx512_available() => "avx512",
            Kernel::Vector => "avx2+fma",
        }
    }
}

/// Whether the vector kernel's lanes are actually available on this CPU.
pub fn vector_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512 forms of the vector kernels are available (F for the
/// 16-lane f32 panels, BW for `vpmaddwd` over int8 panels, DQ for the 256-bit
/// extract in the reduction tree).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512dq")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether `vpdpwssd` (AVX512-VNNI) can fuse the int8 multiply-add pairs into
/// one instruction.  Purely a speed knob: the fused form accumulates the same
/// exact i32 values as `vpmaddwd` + `vpaddd`, so kernel output is bit-identical
/// with or without it.
fn vnni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
thread_local! {
    /// Test hook: pretend AVX-512 is absent so the AVX2 forms can be compared
    /// against it on one machine.
    static DISABLE_AVX512: Cell<bool> = const { Cell::new(false) };
}

/// Whether the vector dispatch should take the AVX-512 forms right now.
fn avx512_enabled() -> bool {
    #[cfg(all(test, target_arch = "x86_64"))]
    if DISABLE_AVX512.with(|c| c.get()) {
        return false;
    }
    avx512_available()
}

thread_local! {
    static FORCED: Cell<Option<Kernel>> = const { Cell::new(None) };
}

/// Runs `f` with the calling thread's kernel selection overridden — the test
/// hook behind the scalar-vs-vector bit-identity guards.  Only affects the
/// calling thread (drive stores through a serial pool when using this).
pub fn with_forced<T>(kernel: Kernel, f: impl FnOnce() -> T) -> T {
    let previous = FORCED.with(|slot| slot.replace(Some(kernel)));
    let result = f();
    FORCED.with(|slot| slot.set(previous));
    result
}

/// The kernel the current thread will execute packed operations with.
pub fn active() -> Kernel {
    FORCED.with(|slot| slot.get()).unwrap_or_else(Kernel::selected)
}

/// A weight matrix (`k × n`) repacked into column-major panels of [`LANES`]
/// columns, plus the layer's bias zero-padded to the panel edge.  Packed once
/// per weight mutation (build, deserialize, optimizer step); every packed
/// kernel call then streams panels with unit stride.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedPanels {
    k: usize,
    n: usize,
    /// `panel_count() * k * LANES` floats: panel `p`, row `kk`, lane `l` is at
    /// `p * k * LANES + kk * LANES + l` and holds `weight[kk][16p + l]`
    /// (zero for padding lanes `16p + l >= n`).
    data: Vec<f32>,
    /// Bias padded to `panel_count() * LANES` (zeros when the layer has none).
    bias: Vec<f32>,
}

impl PackedPanels {
    /// Packs a weight matrix and its optional `1 × n` bias row.
    pub fn pack(weight: &Matrix, bias: Option<&Matrix>) -> crate::Result<Self> {
        let (k, n) = (weight.rows(), weight.cols());
        if let Some(b) = bias {
            if b.rows() != 1 || b.cols() != n {
                return Err(NnError::ShapeMismatch {
                    context: format!(
                        "pack: weight is {k}x{n}, bias is {}x{}",
                        b.rows(),
                        b.cols()
                    ),
                });
            }
        }
        let panels = n.div_ceil(LANES);
        let mut data = vec![0.0f32; panels * k * LANES];
        for p in 0..panels {
            let base = p * k * LANES;
            for kk in 0..k {
                let row = weight.row(kk);
                for l in 0..LANES.min(n - p * LANES) {
                    data[base + kk * LANES + l] = row[p * LANES + l];
                }
            }
        }
        let mut padded_bias = vec![0.0f32; panels * LANES];
        if let Some(b) = bias {
            padded_bias[..n].copy_from_slice(b.as_slice());
        }
        Ok(PackedPanels {
            k,
            n,
            data,
            bias: padded_bias,
        })
    }

    /// Input dimension (rows of the original weight).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original weight).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of 16-column panels (including the zero-padded edge panel).
    pub fn panel_count(&self) -> usize {
        self.n.div_ceil(LANES)
    }

    /// Resident bytes of the packed representation.
    pub fn bytes(&self) -> usize {
        (self.data.len() + self.bias.len()) * std::mem::size_of::<f32>()
    }

    #[inline]
    fn panel(&self, p: usize) -> &[f32] {
        &self.data[p * self.k * LANES..(p + 1) * self.k * LANES]
    }

    #[inline]
    fn bias_panel(&self, p: usize) -> &[f32] {
        &self.bias[p * LANES..(p + 1) * LANES]
    }
}

/// A weight matrix (`k × n`) quantized to int8 with one symmetric scale per
/// output column, packed into [`QLANES`]-column panels interleaved by `k`
/// pairs: panel `p`, pair `kp` is a 32-byte block whose byte `2c + s` holds
/// `q[2kp + s][16p + c]` — exactly the operand order `vpmaddwd` consumes
/// after a widening int8→int16 load.  Odd `k` (and edge columns) are
/// zero-padded.
///
/// Quantization is part of the store's arithmetic recipe: the same panels
/// produce bit-identical predictions under the scalar, AVX2 and AVX-512
/// kernels, so a quantized snapshot serves losslessly on any of them.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPanels {
    k: usize,
    n: usize,
    /// `k.div_ceil(2)` — number of 32-byte blocks per panel.
    kpairs: usize,
    /// `panel_count() * kpairs * 32` bytes (see the struct docs for layout).
    data: Vec<i8>,
    /// Per-output-column dequantization scales (`max_abs / 127`, `1.0` for an
    /// all-zero column), padded to the panel edge.
    scales: Vec<f32>,
    /// f32 bias padded to the panel edge (zeros when the layer has none).
    bias: Vec<f32>,
}

impl QuantizedPanels {
    /// Quantizes a weight matrix (and its optional `1 × n` bias row) with one
    /// symmetric per-column scale: `scale_c = max_kk |w[kk][c]| / 127` (1.0
    /// for an all-zero column) and `q = round(w / scale_c)` clamped to
    /// `[-127, 127]`.  One deterministic code path — the panels produced at
    /// build time and at snapshot reload are identical.
    pub fn quantize(weight: &Matrix, bias: Option<&Matrix>) -> crate::Result<Self> {
        let (k, n) = (weight.rows(), weight.cols());
        let mut scales = vec![1.0f32; n];
        for (c, scale) in scales.iter_mut().enumerate() {
            let mut amax = 0.0f32;
            for kk in 0..k {
                let a = weight.get(kk, c).abs();
                if a > amax {
                    amax = a;
                }
            }
            if amax > 0.0 {
                *scale = amax / 127.0;
            }
        }
        let mut q = vec![0i8; k * n];
        for kk in 0..k {
            let row = weight.row(kk);
            for c in 0..n {
                q[kk * n + c] = (row[c] / scales[c]).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Self::from_parts(k, n, &q, &scales, bias)
    }

    /// Reassembles panels from raw row-major quantized weights and per-column
    /// scales — the snapshot-reload path.  The panels are byte-identical to
    /// what [`quantize`](Self::quantize) produced at build time.
    pub fn from_parts(
        k: usize,
        n: usize,
        q: &[i8],
        scales: &[f32],
        bias: Option<&Matrix>,
    ) -> crate::Result<Self> {
        if q.len() != k * n || scales.len() != n {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "quantized panels: {k}x{n} weights need {} values and {n} scales, got {} and {}",
                    k * n,
                    q.len(),
                    scales.len()
                ),
            });
        }
        if k > QUANT_MAX_K {
            return Err(NnError::InvalidConfig(format!(
                "quantized panels: input dimension {k} exceeds the exact-i32 bound {QUANT_MAX_K}"
            )));
        }
        if let Some(b) = bias {
            if b.rows() != 1 || b.cols() != n {
                return Err(NnError::ShapeMismatch {
                    context: format!(
                        "quantized panels: weight is {k}x{n}, bias is {}x{}",
                        b.rows(),
                        b.cols()
                    ),
                });
            }
        }
        let panels = n.div_ceil(QLANES);
        let kpairs = k.div_ceil(2);
        let mut data = vec![0i8; panels * kpairs * 2 * QLANES];
        for p in 0..panels {
            let cols = QLANES.min(n - p * QLANES);
            for kp in 0..kpairs {
                let block = &mut data[(p * kpairs + kp) * 2 * QLANES..][..2 * QLANES];
                for c in 0..cols {
                    block[2 * c] = q[2 * kp * n + p * QLANES + c];
                    if 2 * kp + 1 < k {
                        block[2 * c + 1] = q[(2 * kp + 1) * n + p * QLANES + c];
                    }
                }
            }
        }
        let mut padded_scales = vec![1.0f32; panels * QLANES];
        padded_scales[..n].copy_from_slice(scales);
        let mut padded_bias = vec![0.0f32; panels * QLANES];
        if let Some(b) = bias {
            padded_bias[..n].copy_from_slice(b.as_slice());
        }
        Ok(QuantizedPanels {
            k,
            n,
            kpairs,
            data,
            scales: padded_scales,
            bias: padded_bias,
        })
    }

    /// Input dimension (rows of the original weight).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original weight).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of 16-column panels (including the zero-padded edge panel).
    pub fn panel_count(&self) -> usize {
        self.n.div_ceil(QLANES)
    }

    /// Resident bytes of the quantized representation.
    pub fn bytes(&self) -> usize {
        self.data.len() + (self.scales.len() + self.bias.len()) * std::mem::size_of::<f32>()
    }

    /// Per-output-column dequantization scales (unpadded).
    pub fn column_scales(&self) -> &[f32] {
        &self.scales[..self.n]
    }

    /// The raw quantized weights, row-major — the serialization source of
    /// truth (scales + these bytes reproduce the panels exactly).
    pub fn weights_row_major(&self) -> Vec<i8> {
        let mut q = vec![0i8; self.k * self.n];
        for p in 0..self.panel_count() {
            let cols = QLANES.min(self.n - p * QLANES);
            for kp in 0..self.kpairs {
                let block = &self.data[(p * self.kpairs + kp) * 2 * QLANES..][..2 * QLANES];
                for c in 0..cols {
                    q[2 * kp * self.n + p * QLANES + c] = block[2 * c];
                    if 2 * kp + 1 < self.k {
                        q[(2 * kp + 1) * self.n + p * QLANES + c] = block[2 * c + 1];
                    }
                }
            }
        }
        q
    }

    /// The dequantized weight matrix `(q as f32) · scale_c` — what the
    /// backward-pass kernels (`dy · Wᵀ`, `xᵀ · dy`) run against.  Single
    /// rounding per element, so it is deterministic across rebuilds.
    pub fn dequantized_weight(&self) -> Matrix {
        let q = self.weights_row_major();
        let mut w = Matrix::zeros(self.k, self.n);
        for kk in 0..self.k {
            for c in 0..self.n {
                w.set(kk, c, (q[kk * self.n + c] as f32) * self.scales[c]);
            }
        }
        w
    }

    #[inline]
    fn block(&self, p: usize, kp: usize) -> &[i8] {
        &self.data[(p * self.kpairs + kp) * 2 * QLANES..][..2 * QLANES]
    }
}

/// Quantizes one f32 input row into packed `[x0, x1]` int16 pairs — one i32
/// word per weight k-pair, exactly the operand every `vpmaddwd` lane
/// multiplies against, so the vector kernels broadcast it straight from
/// memory (`vpbroadcastd`) instead of reassembling bytes in the inner loop.
/// `q = round_ties_even(v · 127 / max_abs)` clamped to `[-127, 127]`;
/// returns the row's dequantization scale `max_abs / 127` (an all-zero row
/// quantizes to zeros with scale 1.0).
///
/// Rounding is ties-to-even — the hardware `vcvtps2dq` mode — so the
/// AVX-512 form below is bit-identical to this scalar recipe; the guard
/// tests compare them directly.  `pairs` must arrive zeroed (freshly
/// allocated), so padding lanes need no explicit writes.
fn quantize_input_row(kernel: Kernel, row: &[f32], pairs: &mut [i32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if matches!(kernel, Kernel::Vector) && avx512_enabled() {
        // Safety: AVX-512 F/BW availability checked at runtime.
        return unsafe { x86::quantize_input_row_avx512(row, pairs) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = kernel;
    let mut amax = 0.0f32;
    for &v in row {
        let a = v.abs();
        if a > amax {
            amax = a;
        }
    }
    if amax == 0.0 {
        pairs.fill(0);
        return 1.0;
    }
    let inv = 127.0 / amax;
    let quant = |v: f32| (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
    for (kp, pair) in pairs.iter_mut().enumerate() {
        let x0 = row.get(2 * kp).copied().map_or(0, quant);
        let x1 = row.get(2 * kp + 1).copied().map_or(0, quant);
        *pair = (x0 as i16 as u16 as u32 | ((x1 as i16 as u16 as u32) << 16)) as i32;
    }
    amax / 127.0
}

/// A window of input rows quantized once into the packed i16-pair form the
/// int8 kernels consume (`quantize_input_row`).  Building this is O(k)
/// scalar work per row, so callers running several quantized layers over the
/// *same* activation window — the multi-task heads all reading the trunk
/// output — construct it once and reuse it via [`forward_prequantized`];
/// the pairs are identical to what [`forward_quantized`] would produce
/// internally, so sharing never changes a prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRows {
    kpairs: usize,
    count: usize,
    /// `count * kpairs` packed pairs, row-major.
    pairs: Vec<i32>,
    /// Per-row dequantization scales.
    scales: Vec<f32>,
}

impl QuantizedRows {
    /// Quantizes rows `[start, start + count)` of `lhs` for panels with the
    /// given k-pair count (`lhs.cols().div_ceil(2)` — checked), on the
    /// calling thread's [`active`] kernel.
    pub fn quantize(
        lhs: &Matrix,
        start: usize,
        count: usize,
        kpairs: usize,
    ) -> crate::Result<Self> {
        Self::quantize_with(active(), lhs, start, count, kpairs)
    }

    /// [`quantize`](Self::quantize) with an explicit kernel — the row
    /// quantizer has scalar and AVX-512 forms that produce identical pairs;
    /// the bit-identity guards pin that by selecting each explicitly.
    pub fn quantize_with(
        kernel: Kernel,
        lhs: &Matrix,
        start: usize,
        count: usize,
        kpairs: usize,
    ) -> crate::Result<Self> {
        if kpairs != lhs.cols().div_ceil(2) {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "quantized rows: {} input columns pack into {} k-pairs, got {kpairs}",
                    lhs.cols(),
                    lhs.cols().div_ceil(2)
                ),
            });
        }
        if start + count > lhs.rows() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "quantized rows: rows [{start}, {}) of a matrix with {} rows",
                    start + count,
                    lhs.rows()
                ),
            });
        }
        let mut pairs = vec![0i32; count * kpairs];
        let mut scales = vec![0.0f32; count];
        for i in 0..count {
            scales[i] = quantize_input_row(
                kernel,
                lhs.row(start + i),
                &mut pairs[i * kpairs..(i + 1) * kpairs],
            );
        }
        Ok(QuantizedRows {
            kpairs,
            count,
            pairs,
            scales,
        })
    }

    /// Number of quantized rows.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// `act(lhs[start .. start+count] · W + b)` over packed panels, written into a
/// fresh `count × n` matrix.  The bias initializes the accumulator lanes and
/// the activation is applied to each output tile while it is hot, so every
/// tile is touched once.
pub fn forward_packed(
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &PackedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    forward_packed_with(active(), lhs, start, count, panels, activation)
}

/// [`forward_packed`] with an explicit kernel (tests and micro-benchmarks).
pub fn forward_packed_with(
    kernel: Kernel,
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &PackedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    if lhs.cols() != panels.k {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_packed: lhs is {}x{}, panels expect k={}",
                lhs.rows(),
                lhs.cols(),
                panels.k
            ),
        });
    }
    if start + count > lhs.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_packed: rows [{start}, {}) of a matrix with {} rows",
                start + count,
                lhs.rows()
            ),
        });
    }
    let mut out = Matrix::zeros(count, panels.n);
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if avx512_enabled() => unsafe {
            // Safety: AVX-512 F/BW/DQ availability checked at runtime.
            x86::forward_avx512(lhs, start, count, panels, activation, out.as_mut_slice());
        },
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.
            x86::forward_avx2(lhs, start, count, panels, activation, out.as_mut_slice());
        },
        _ => forward_scalar_dispatch(lhs, start, count, panels, activation, out.as_mut_slice()),
    }
    Ok(out)
}

/// `act((lhs[start .. start+count] quantized) · Q + b)` over int8 panels,
/// written into a fresh `count × n` matrix.  Each input row is quantized once
/// (shared scalar helper), accumulated exactly in i32, and dequantized through
/// the fixed f32 epilogue `y = (acc as f32) · (x_scale · w_scale_c) + bias_c`
/// with the activation fused into the tile store — bit-identical across
/// kernel selection, chunking, batch size and thread count.
pub fn forward_quantized(
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &QuantizedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    forward_quantized_with(active(), lhs, start, count, panels, activation)
}

/// [`forward_quantized`] with an explicit kernel (tests and micro-benchmarks).
pub fn forward_quantized_with(
    kernel: Kernel,
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &QuantizedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    if lhs.cols() != panels.k {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_quantized: lhs is {}x{}, panels expect k={}",
                lhs.rows(),
                lhs.cols(),
                panels.k
            ),
        });
    }
    if start + count > lhs.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_quantized: rows [{start}, {}) of a matrix with {} rows",
                start + count,
                lhs.rows()
            ),
        });
    }
    // Quantize the whole row window up front; the scalar and AVX-512 row
    // quantizers produce identical pairs, so every kernel reads the same
    // operands.
    let qrows = QuantizedRows::quantize_with(kernel, lhs, start, count, panels.kpairs)?;
    forward_prequantized_with(kernel, &qrows, panels, activation)
}

/// [`forward_quantized`] over an input window already quantized by
/// [`QuantizedRows::quantize`] — the multi-task head path, where every head
/// reads the same trunk output and the per-row input quantization would
/// otherwise be repeated once per head.
pub fn forward_prequantized(
    qrows: &QuantizedRows,
    panels: &QuantizedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    forward_prequantized_with(active(), qrows, panels, activation)
}

/// [`forward_prequantized`] with an explicit kernel.
pub fn forward_prequantized_with(
    kernel: Kernel,
    qrows: &QuantizedRows,
    panels: &QuantizedPanels,
    activation: Activation,
) -> crate::Result<Matrix> {
    if qrows.kpairs != panels.kpairs {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "forward_prequantized: input rows pack {} k-pairs, panels expect {}",
                qrows.kpairs, panels.kpairs
            ),
        });
    }
    let count = qrows.count;
    let mut out = Matrix::zeros(count, panels.n);
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if avx512_enabled() && vnni_available() => unsafe {
            // Safety: AVX-512 F/BW/DQ/VNNI availability checked at runtime.
            x86::forward_quantized_avx512_vnni(
                &qrows.pairs,
                &qrows.scales,
                count,
                panels,
                activation,
                out.as_mut_slice(),
            );
        },
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if avx512_enabled() => unsafe {
            // Safety: AVX-512 F/BW/DQ availability checked at runtime.
            x86::forward_quantized_avx512(
                &qrows.pairs,
                &qrows.scales,
                count,
                panels,
                activation,
                out.as_mut_slice(),
            );
        },
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.
            x86::forward_quantized_avx2(
                &qrows.pairs,
                &qrows.scales,
                count,
                panels,
                activation,
                out.as_mut_slice(),
            );
        },
        _ => forward_quantized_scalar_dispatch(
            &qrows.pairs,
            &qrows.scales,
            count,
            panels,
            activation,
            out.as_mut_slice(),
        ),
    }
    Ok(out)
}

/// `lhs (m × n) · Wᵀ (n × k) -> m × k` over packed panels — the backward-pass
/// shape (`dy · Wᵀ`), reusing the forward panels ("gradients get the panels
/// for free").  Each output element is a lane-parallel dot product finished by
/// the fixed reduction tree.
pub fn matmul_transpose_packed(lhs: &Matrix, panels: &PackedPanels) -> crate::Result<Matrix> {
    matmul_transpose_packed_with(active(), lhs, panels)
}

/// [`matmul_transpose_packed`] with an explicit kernel.
pub fn matmul_transpose_packed_with(
    kernel: Kernel,
    lhs: &Matrix,
    panels: &PackedPanels,
) -> crate::Result<Matrix> {
    if lhs.cols() != panels.n {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "matmul_transpose_packed: lhs is {}x{}, panels expect n={}",
                lhs.rows(),
                lhs.cols(),
                panels.n
            ),
        });
    }
    let mut out = Matrix::zeros(lhs.rows(), panels.k);
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if avx512_enabled() => unsafe {
            // Safety: AVX-512 F/BW/DQ availability checked at runtime.
            x86::matmul_wt_avx512(lhs, panels, out.as_mut_slice());
        },
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.
            x86::matmul_wt_avx2(lhs, panels, out.as_mut_slice());
        },
        _ => matmul_wt_scalar_dispatch(lhs, panels, out.as_mut_slice()),
    }
    Ok(out)
}

/// `lhsᵀ (k × m) · rhs (k × n) -> m × n` without materializing the transpose —
/// the weight-gradient shape (`xᵀ · dy`), lane-vectorized over the contiguous
/// `rhs` rows.  Operations are element-wise fused multiply-adds, so the scalar
/// and vector kernels agree bit for bit.
pub fn transpose_matmul(lhs: &Matrix, rhs: &Matrix) -> crate::Result<Matrix> {
    transpose_matmul_with(active(), lhs, rhs)
}

/// [`transpose_matmul`] with an explicit kernel.
pub fn transpose_matmul_with(
    kernel: Kernel,
    lhs: &Matrix,
    rhs: &Matrix,
) -> crate::Result<Matrix> {
    if lhs.rows() != rhs.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "transpose_matmul: lhs is {}x{}, rhs is {}x{}",
                lhs.rows(),
                lhs.cols(),
                rhs.rows(),
                rhs.cols()
            ),
        });
    }
    let mut out = Matrix::zeros(lhs.cols(), rhs.cols());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Vector if vector_available() => unsafe {
            // Safety: AVX2+FMA availability checked at runtime.  (Element-wise
            // fused multiply-adds — lane width cannot change the result, so
            // there is no separate AVX-512 form.)
            x86::transpose_matmul_avx2(lhs, rhs, out.as_mut_slice());
        },
        _ => transpose_matmul_scalar_dispatch(lhs, rhs, out.as_mut_slice()),
    }
    Ok(out)
}

/// The fixed lane-reduction tree both kernels finish dot products with: fold
/// the halves (`s_i = l_i + l_{i+8}`) — the AVX-512 256-bit extract/add —
/// then `((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))`, the exact sum order of the
/// AVX2 extract/add shuffle sequence.
#[inline(always)]
pub fn reduce_lanes(v: [f32; LANES]) -> f32 {
    let mut s = [0.0f32; 8];
    for i in 0..8 {
        s[i] = v[i] + v[i + 8];
    }
    let s04 = s[0] + s[4];
    let s15 = s[1] + s[5];
    let s26 = s[2] + s[6];
    let s37 = s[3] + s[7];
    (s04 + s26) + (s15 + s37)
}

/// Activation applied lane-wise to a freshly computed tile.  ReLU is defined as
/// `if v < 0.0 { 0.0 } else { v }` (keeps `-0.0` and NaN), which all kernels
/// implement identically; sigmoid/tanh run scalar over the stored tile in all.
#[inline(always)]
fn apply_activation_slice(activation: Activation, out: &mut [f32]) {
    match activation {
        Activation::Linear => {}
        Activation::Relu => {
            for v in out {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        Activation::Sigmoid => {
            for v in out {
                *v = 1.0 / (1.0 + (-*v).exp());
            }
        }
        Activation::Tanh => {
            for v in out {
                *v = v.tanh();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernel bodies.
//
// Each body is `#[inline(always)]` and compiled twice: once portably, and once
// under `#[target_feature(enable = "fma")]` so that on FMA hardware the forced
// scalar kernel uses hardware fused multiply-adds instead of libm `fmaf` calls.
// Both compute the identical correctly-rounded fused result.
// ---------------------------------------------------------------------------

#[inline(always)]
fn forward_scalar_body(
    lhs: &Matrix,
    start: usize,
    count: usize,
    panels: &PackedPanels,
    activation: Activation,
    out: &mut [f32],
) {
    let n = panels.n;
    let k = panels.k;
    for i in 0..count {
        let lhs_row = lhs.row(start + i);
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..panels.panel_count() {
            let panel = panels.panel(p);
            let mut acc: [f32; LANES] = panels.bias_panel(p).try_into().expect("lane width");
            for (kk, &a) in lhs_row.iter().enumerate().take(k) {
                let w = &panel[kk * LANES..(kk + 1) * LANES];
                for (lane, &wl) in acc.iter_mut().zip(w) {
                    *lane = a.mul_add(wl, *lane);
                }
            }
            let cols = LANES.min(n - p * LANES);
            let tile = &mut out_row[p * LANES..p * LANES + cols];
            tile.copy_from_slice(&acc[..cols]);
            apply_activation_slice(activation, tile);
        }
    }
}

#[inline(always)]
fn forward_quantized_scalar_body(
    qpairs: &[i32],
    xscales: &[f32],
    count: usize,
    panels: &QuantizedPanels,
    activation: Activation,
    out: &mut [f32],
) {
    let n = panels.n;
    let kpairs = panels.kpairs;
    for i in 0..count {
        let xrow = &qpairs[i * kpairs..(i + 1) * kpairs];
        let x_scale = xscales[i];
        let out_row = &mut out[i * n..(i + 1) * n];
        for p in 0..panels.panel_count() {
            let mut acc = [0i32; QLANES];
            for (kp, &pair) in xrow.iter().enumerate() {
                let x0 = pair as i16 as i32;
                let x1 = (pair >> 16) as i16 as i32;
                let block = panels.block(p, kp);
                for (c, lane) in acc.iter_mut().enumerate() {
                    // The exact i32 form of one `vpmaddwd` lane.
                    *lane += x0 * block[2 * c] as i32 + x1 * block[2 * c + 1] as i32;
                }
            }
            let cols = QLANES.min(n - p * QLANES);
            let tile = &mut out_row[p * QLANES..p * QLANES + cols];
            for (c, t) in tile.iter_mut().enumerate() {
                let m = x_scale * panels.scales[p * QLANES + c];
                *t = (acc[c] as f32).mul_add(m, panels.bias[p * QLANES + c]);
            }
            apply_activation_slice(activation, tile);
        }
    }
}

#[inline(always)]
fn matmul_wt_scalar_body(lhs: &Matrix, panels: &PackedPanels, out: &mut [f32]) {
    let k = panels.k;
    let n = panels.n;
    let np = panels.panel_count();
    // Zero-padded copy of each lhs row's edge panel, built once per row.
    for i in 0..lhs.rows() {
        let lhs_row = lhs.row(i);
        let out_row = &mut out[i * k..(i + 1) * k];
        // Process output columns in blocks of 8 accumulator groups so the
        // panel stream is read once per block while staying register-resident.
        const KC: usize = 8;
        let mut kk0 = 0;
        while kk0 < k {
            let kb = KC.min(k - kk0);
            let mut acc = [[0.0f32; LANES]; KC];
            for p in 0..np {
                let mut x = [0.0f32; LANES];
                let cols = LANES.min(n - p * LANES);
                x[..cols].copy_from_slice(&lhs_row[p * LANES..p * LANES + cols]);
                let panel = panels.panel(p);
                for (j, acc_j) in acc.iter_mut().enumerate().take(kb) {
                    let w = &panel[(kk0 + j) * LANES..(kk0 + j + 1) * LANES];
                    for ((lane, &xl), &wl) in acc_j.iter_mut().zip(&x).zip(w) {
                        *lane = xl.mul_add(wl, *lane);
                    }
                }
            }
            for (j, &acc_j) in acc.iter().enumerate().take(kb) {
                out_row[kk0 + j] = reduce_lanes(acc_j);
            }
            kk0 += kb;
        }
    }
}

#[inline(always)]
fn transpose_matmul_scalar_body(lhs: &Matrix, rhs: &Matrix, out: &mut [f32]) {
    let n = rhs.cols();
    for kk in 0..lhs.rows() {
        let lhs_row = lhs.row(kk);
        let rhs_row = rhs.row(kk);
        for (i, &a) in lhs_row.iter().enumerate() {
            // ReLU activations are zero-heavy; both kernels skip identically.
            if a == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                *o = a.mul_add(b, *o);
            }
        }
    }
}

macro_rules! scalar_dispatch {
    ($dispatch:ident, $body:ident, $fma:ident, ($($arg:ident: $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "fma")]
        unsafe fn $fma($($arg: $ty),*) {
            $body($($arg),*);
        }

        fn $dispatch($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("fma") {
                    // Safety: FMA availability checked at runtime; the body's
                    // `mul_add` then compiles to hardware FMA (same correctly
                    // rounded result as the portable libm path).
                    unsafe { $fma($($arg),*) };
                    return;
                }
            }
            $body($($arg),*);
        }
    };
}

scalar_dispatch!(
    forward_scalar_dispatch,
    forward_scalar_body,
    forward_scalar_fma,
    (
        lhs: &Matrix,
        start: usize,
        count: usize,
        panels: &PackedPanels,
        activation: Activation,
        out: &mut [f32]
    )
);

scalar_dispatch!(
    forward_quantized_scalar_dispatch,
    forward_quantized_scalar_body,
    forward_quantized_scalar_fma,
    (
        qpairs: &[i32],
        xscales: &[f32],
        count: usize,
        panels: &QuantizedPanels,
        activation: Activation,
        out: &mut [f32]
    )
);

scalar_dispatch!(
    matmul_wt_scalar_dispatch,
    matmul_wt_scalar_body,
    matmul_wt_scalar_fma,
    (lhs: &Matrix, panels: &PackedPanels, out: &mut [f32])
);

scalar_dispatch!(
    transpose_matmul_scalar_dispatch,
    transpose_matmul_scalar_body,
    transpose_matmul_scalar_fma,
    (lhs: &Matrix, rhs: &Matrix, out: &mut [f32])
);

// ---------------------------------------------------------------------------
// AVX2 + FMA and AVX-512 kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{apply_activation_slice, PackedPanels, QuantizedPanels, LANES, QLANES};
    use crate::layer::Activation;
    use crate::tensor::Matrix;
    use std::arch::x86_64::*;

    /// Row-block size of the forward micro-kernels: 4 rows sharing each
    /// panel-row load (AVX-512 additionally blocks 2 panels, so its inner
    /// loop holds 2 × 4 accumulator registers).
    const MR: usize = 4;

    /// Half-panel width of the AVX2 forms (one `__m256`).
    const HALF: usize = 8;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn forward_avx2(
        lhs: &Matrix,
        start: usize,
        count: usize,
        panels: &PackedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        let n = panels.n;
        let k = panels.k;
        let np = panels.panel_count();
        let mut r = 0;
        while r + MR <= count {
            for p in 0..np {
                let panel = panels.panel(p);
                let bias = panels.bias_panel(p);
                let b_lo = _mm256_loadu_ps(bias.as_ptr());
                let b_hi = _mm256_loadu_ps(bias.as_ptr().add(HALF));
                let rows: [&[f32]; MR] = std::array::from_fn(|j| lhs.row(start + r + j));
                let mut lo = [b_lo; MR];
                let mut hi = [b_hi; MR];
                #[allow(clippy::needless_range_loop)] // kk indexes 4 rows + the panel in lockstep
                for kk in 0..k {
                    let w_lo = _mm256_loadu_ps(panel.as_ptr().add(kk * LANES));
                    let w_hi = _mm256_loadu_ps(panel.as_ptr().add(kk * LANES + HALF));
                    for j in 0..MR {
                        let a = _mm256_set1_ps(rows[j][kk]);
                        lo[j] = _mm256_fmadd_ps(a, w_lo, lo[j]);
                        hi[j] = _mm256_fmadd_ps(a, w_hi, hi[j]);
                    }
                }
                for j in 0..MR {
                    store_half_tiles(lo[j], hi[j], activation, out, (r + j) * n + p * LANES, n - p * LANES);
                }
            }
            r += MR;
        }
        while r < count {
            let lhs_row = lhs.row(start + r);
            for p in 0..np {
                let panel = panels.panel(p);
                let bias = panels.bias_panel(p);
                let mut lo = _mm256_loadu_ps(bias.as_ptr());
                let mut hi = _mm256_loadu_ps(bias.as_ptr().add(HALF));
                for (kk, &a) in lhs_row.iter().enumerate().take(k) {
                    let av = _mm256_set1_ps(a);
                    let w_lo = _mm256_loadu_ps(panel.as_ptr().add(kk * LANES));
                    let w_hi = _mm256_loadu_ps(panel.as_ptr().add(kk * LANES + HALF));
                    lo = _mm256_fmadd_ps(av, w_lo, lo);
                    hi = _mm256_fmadd_ps(av, w_hi, hi);
                }
                store_half_tiles(lo, hi, activation, out, r * n + p * LANES, n - p * LANES);
            }
            r += 1;
        }
    }

    /// 2-panel × 4-row register-blocked AVX-512 forward: 8 zmm accumulators
    /// sharing each pair of panel-row loads.  Each output column is still one
    /// independent bias-initialized FMA chain over `k` — the identical recipe
    /// of the scalar and AVX2 forms.
    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512dq")]
    pub(super) unsafe fn forward_avx512(
        lhs: &Matrix,
        start: usize,
        count: usize,
        panels: &PackedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        let n = panels.n;
        let k = panels.k;
        let np = panels.panel_count();
        let mut r = 0;
        while r + MR <= count {
            let rows: [&[f32]; MR] = std::array::from_fn(|j| lhs.row(start + r + j));
            let mut p = 0;
            while p + 2 <= np {
                let p0 = panels.panel(p);
                let p1 = panels.panel(p + 1);
                let b0 = _mm512_loadu_ps(panels.bias_panel(p).as_ptr());
                let b1 = _mm512_loadu_ps(panels.bias_panel(p + 1).as_ptr());
                let mut acc0 = [b0; MR];
                let mut acc1 = [b1; MR];
                #[allow(clippy::needless_range_loop)] // kk indexes 4 rows + 2 panels in lockstep
                for kk in 0..k {
                    let w0 = _mm512_loadu_ps(p0.as_ptr().add(kk * LANES));
                    let w1 = _mm512_loadu_ps(p1.as_ptr().add(kk * LANES));
                    for j in 0..MR {
                        let a = _mm512_set1_ps(rows[j][kk]);
                        acc0[j] = _mm512_fmadd_ps(a, w0, acc0[j]);
                        acc1[j] = _mm512_fmadd_ps(a, w1, acc1[j]);
                    }
                }
                for j in 0..MR {
                    store_tile512(acc0[j], activation, out, (r + j) * n + p * LANES, n - p * LANES);
                    store_tile512(
                        acc1[j],
                        activation,
                        out,
                        (r + j) * n + (p + 1) * LANES,
                        n - (p + 1) * LANES,
                    );
                }
                p += 2;
            }
            if p < np {
                let panel = panels.panel(p);
                let b = _mm512_loadu_ps(panels.bias_panel(p).as_ptr());
                let mut acc = [b; MR];
                #[allow(clippy::needless_range_loop)] // kk indexes 4 rows + the panel in lockstep
                for kk in 0..k {
                    let w = _mm512_loadu_ps(panel.as_ptr().add(kk * LANES));
                    for j in 0..MR {
                        acc[j] = _mm512_fmadd_ps(_mm512_set1_ps(rows[j][kk]), w, acc[j]);
                    }
                }
                for (j, &a) in acc.iter().enumerate() {
                    store_tile512(a, activation, out, (r + j) * n + p * LANES, n - p * LANES);
                }
            }
            r += MR;
        }
        while r < count {
            let lhs_row = lhs.row(start + r);
            for p in 0..np {
                let panel = panels.panel(p);
                let mut acc = _mm512_loadu_ps(panels.bias_panel(p).as_ptr());
                for (kk, &a) in lhs_row.iter().enumerate().take(k) {
                    let w = _mm512_loadu_ps(panel.as_ptr().add(kk * LANES));
                    acc = _mm512_fmadd_ps(_mm512_set1_ps(a), w, acc);
                }
                store_tile512(acc, activation, out, r * n + p * LANES, n - p * LANES);
            }
            r += 1;
        }
    }

    /// AVX-512 form of the shared input-row quantizer: `vmaxps` amax scan,
    /// then `q = clamp(vcvtps2dq(v · 127/amax), -127, 127)` narrowed to i16
    /// pairs with `vpmovdw`.  Bit-identical to the scalar recipe: the max
    /// reduction is order-independent, the multiply rounds identically, and
    /// `vcvtps2dq` is exactly `round_ties_even` (inputs are finite — they are
    /// activations).  `pairs` must arrive zeroed (padding lanes are never
    /// stored).
    #[target_feature(enable = "avx512f", enable = "avx512bw")]
    pub(super) unsafe fn quantize_input_row_avx512(row: &[f32], pairs: &mut [i32]) -> f32 {
        let k = row.len();
        let src = row.as_ptr();
        let mut vmax = _mm512_setzero_ps();
        let mut i = 0;
        while i + 16 <= k {
            vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(src.add(i))));
            i += 16;
        }
        if i < k {
            let mask = (1u16 << (k - i)) - 1;
            vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_maskz_loadu_ps(mask, src.add(i))));
        }
        let amax = _mm512_reduce_max_ps(vmax);
        if amax == 0.0 {
            pairs.fill(0);
            return 1.0;
        }
        let vinv = _mm512_set1_ps(127.0 / amax);
        let lo = _mm512_set1_epi32(-127);
        let hi = _mm512_set1_epi32(127);
        let dst = pairs.as_mut_ptr() as *mut i16;
        let mut i = 0;
        while i < k {
            let remaining = k - i;
            let mask = if remaining >= 16 {
                0xFFFFu16
            } else {
                (1u16 << remaining) - 1
            };
            let v = _mm512_maskz_loadu_ps(mask, src.add(i));
            let q = _mm512_min_epi32(
                _mm512_max_epi32(_mm512_cvtps_epi32(_mm512_mul_ps(v, vinv)), lo),
                hi,
            );
            let w16 = _mm512_cvtepi32_epi16(q);
            if remaining >= 16 {
                _mm256_storeu_si256(dst.add(i) as *mut __m256i, w16);
            } else {
                let mut tail = [0i16; 16];
                _mm256_storeu_si256(tail.as_mut_ptr() as *mut __m256i, w16);
                std::ptr::copy_nonoverlapping(tail.as_ptr(), dst.add(i), remaining);
            }
            i += 16;
        }
        amax / 127.0
    }

    /// Row-block size of the int8 forward micro-kernels: 8 rows share each
    /// widening weight load (8 i32 accumulators + the widened block + the
    /// broadcast pair stay comfortably inside the 32-register zmm file).
    const QMR: usize = 8;

    /// One int8 multiply-accumulate step: `acc + Σ_pairs w · x` in exact i32.
    /// The VNNI form fuses `vpmaddwd` + `vpaddd` into one `vpdpwssd`; both
    /// forms accumulate identical lane values (no saturation is reachable —
    /// products of `[-127, 127]` pairs summed into i32), so selection is
    /// purely a speed knob.
    #[inline(always)]
    unsafe fn madd_acc<const VNNI: bool>(acc: __m512i, w: __m512i, x: __m512i) -> __m512i {
        if VNNI {
            _mm512_dpwssd_epi32(acc, w, x)
        } else {
            _mm512_add_epi32(acc, _mm512_madd_epi16(w, x))
        }
    }

    /// Int8 forward, AVX-512 form: one `vpmovsxbw` widening load per panel
    /// k-pair feeds `vpmaddwd`/`vpdpwssd` against 8 rows' broadcast input
    /// pairs (a single `vpbroadcastd` from the prequantized pair words each)
    /// — 32 int8 products per instruction — accumulated exactly in 16 i32
    /// lanes, then dequantized through the fixed f32 epilogue.
    #[inline(always)]
    unsafe fn forward_quantized_avx512_body<const VNNI: bool>(
        qpairs: &[i32],
        xscales: &[f32],
        count: usize,
        panels: &QuantizedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        let n = panels.n;
        let kpairs = panels.kpairs;
        let np = panels.panel_count();
        let data = panels.data.as_ptr();
        let px = qpairs.as_ptr();
        let mut r = 0;
        while r + QMR <= count {
            for p in 0..np {
                let mut acc = [_mm512_setzero_si512(); QMR];
                let mut wp = data.add(p * kpairs * 2 * QLANES);
                for kp in 0..kpairs {
                    let w = _mm512_cvtepi8_epi16(_mm256_loadu_si256(wp as *const __m256i));
                    wp = wp.add(2 * QLANES);
                    #[allow(clippy::needless_range_loop)] // j indexes rows + accumulators in lockstep
                    for j in 0..QMR {
                        let x = _mm512_set1_epi32(*px.add((r + j) * kpairs + kp));
                        acc[j] = madd_acc::<VNNI>(acc[j], w, x);
                    }
                }
                for (j, &a) in acc.iter().enumerate() {
                    let m = _mm512_mul_ps(
                        _mm512_set1_ps(xscales[r + j]),
                        _mm512_loadu_ps(panels.scales.as_ptr().add(p * QLANES)),
                    );
                    let y = _mm512_fmadd_ps(
                        _mm512_cvtepi32_ps(a),
                        m,
                        _mm512_loadu_ps(panels.bias.as_ptr().add(p * QLANES)),
                    );
                    store_tile512(y, activation, out, (r + j) * n + p * QLANES, n - p * QLANES);
                }
            }
            r += QMR;
        }
        while r < count {
            for p in 0..np {
                let mut acc = _mm512_setzero_si512();
                let mut wp = data.add(p * kpairs * 2 * QLANES);
                for kp in 0..kpairs {
                    let w = _mm512_cvtepi8_epi16(_mm256_loadu_si256(wp as *const __m256i));
                    wp = wp.add(2 * QLANES);
                    let x = _mm512_set1_epi32(*px.add(r * kpairs + kp));
                    acc = madd_acc::<VNNI>(acc, w, x);
                }
                let m = _mm512_mul_ps(
                    _mm512_set1_ps(xscales[r]),
                    _mm512_loadu_ps(panels.scales.as_ptr().add(p * QLANES)),
                );
                let y = _mm512_fmadd_ps(
                    _mm512_cvtepi32_ps(acc),
                    m,
                    _mm512_loadu_ps(panels.bias.as_ptr().add(p * QLANES)),
                );
                store_tile512(y, activation, out, r * n + p * QLANES, n - p * QLANES);
            }
            r += 1;
        }
    }

    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512dq")]
    pub(super) unsafe fn forward_quantized_avx512(
        qpairs: &[i32],
        xscales: &[f32],
        count: usize,
        panels: &QuantizedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        forward_quantized_avx512_body::<false>(qpairs, xscales, count, panels, activation, out);
    }

    /// [`forward_quantized_avx512`] with the fused `vpdpwssd` accumulate —
    /// bit-identical output (see [`madd_acc`]), fewer inner-loop uops.
    #[target_feature(
        enable = "avx512f",
        enable = "avx512bw",
        enable = "avx512dq",
        enable = "avx512vnni"
    )]
    pub(super) unsafe fn forward_quantized_avx512_vnni(
        qpairs: &[i32],
        xscales: &[f32],
        count: usize,
        panels: &QuantizedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        forward_quantized_avx512_body::<true>(qpairs, xscales, count, panels, activation, out);
    }

    /// Int8 forward, AVX2 form: the same recipe as the AVX-512 form with each
    /// 32-byte block processed as two widening 16-byte halves (`vpmaddwd`
    /// over `__m256i`), so the i32 lane values are identical.  4 rows share
    /// each widening load (8 + 2 + 1 live ymm registers).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn forward_quantized_avx2(
        qpairs: &[i32],
        xscales: &[f32],
        count: usize,
        panels: &QuantizedPanels,
        activation: Activation,
        out: &mut [f32],
    ) {
        let n = panels.n;
        let kpairs = panels.kpairs;
        let np = panels.panel_count();
        let data = panels.data.as_ptr();
        let px = qpairs.as_ptr();
        let mut r = 0;
        while r + MR <= count {
            for p in 0..np {
                let mut acc_lo = [_mm256_setzero_si256(); MR];
                let mut acc_hi = [_mm256_setzero_si256(); MR];
                let mut wp = data.add(p * kpairs * 2 * QLANES);
                for kp in 0..kpairs {
                    let w_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp as *const __m128i));
                    let w_hi =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(wp.add(QLANES) as *const __m128i));
                    wp = wp.add(2 * QLANES);
                    #[allow(clippy::needless_range_loop)] // j indexes rows + accumulators in lockstep
                    for j in 0..MR {
                        let x = _mm256_set1_epi32(*px.add((r + j) * kpairs + kp));
                        acc_lo[j] = _mm256_add_epi32(acc_lo[j], _mm256_madd_epi16(w_lo, x));
                        acc_hi[j] = _mm256_add_epi32(acc_hi[j], _mm256_madd_epi16(w_hi, x));
                    }
                }
                for j in 0..MR {
                    store_quantized_avx2_row(
                        acc_lo[j],
                        acc_hi[j],
                        xscales[r + j],
                        panels,
                        p,
                        activation,
                        out,
                        (r + j) * n,
                    );
                }
            }
            r += MR;
        }
        while r < count {
            for p in 0..np {
                let mut acc_lo = _mm256_setzero_si256();
                let mut acc_hi = _mm256_setzero_si256();
                let mut wp = data.add(p * kpairs * 2 * QLANES);
                for kp in 0..kpairs {
                    let w_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(wp as *const __m128i));
                    let w_hi =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(wp.add(QLANES) as *const __m128i));
                    wp = wp.add(2 * QLANES);
                    let x = _mm256_set1_epi32(*px.add(r * kpairs + kp));
                    acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(w_lo, x));
                    acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(w_hi, x));
                }
                store_quantized_avx2_row(
                    acc_lo, acc_hi, xscales[r], panels, p, activation, out, r * n,
                );
            }
            r += 1;
        }
    }

    /// Dequantize-and-store epilogue of one AVX2 int8 output tile:
    /// `y = (acc as f32) · (x_scale · w_scale) + bias`, activation fused.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn store_quantized_avx2_row(
        acc_lo: __m256i,
        acc_hi: __m256i,
        x_scale: f32,
        panels: &QuantizedPanels,
        p: usize,
        activation: Activation,
        out: &mut [f32],
        row_base: usize,
    ) {
        let n = panels.n;
        let xs = _mm256_set1_ps(x_scale);
        let m_lo = _mm256_mul_ps(xs, _mm256_loadu_ps(panels.scales.as_ptr().add(p * QLANES)));
        let m_hi = _mm256_mul_ps(
            xs,
            _mm256_loadu_ps(panels.scales.as_ptr().add(p * QLANES + HALF)),
        );
        let y_lo = _mm256_fmadd_ps(
            _mm256_cvtepi32_ps(acc_lo),
            m_lo,
            _mm256_loadu_ps(panels.bias.as_ptr().add(p * QLANES)),
        );
        let y_hi = _mm256_fmadd_ps(
            _mm256_cvtepi32_ps(acc_hi),
            m_hi,
            _mm256_loadu_ps(panels.bias.as_ptr().add(p * QLANES + HALF)),
        );
        store_half_tiles(y_lo, y_hi, activation, out, row_base + p * QLANES, n - p * QLANES);
    }

    /// Stores a 16-lane tile held as two `__m256` halves, applying the
    /// activation in the same pass (see [`store_tile256`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn store_half_tiles(
        lo: __m256,
        hi: __m256,
        activation: Activation,
        out: &mut [f32],
        offset: usize,
        remaining_cols: usize,
    ) {
        store_tile256(lo, activation, out, offset, remaining_cols.min(HALF));
        if remaining_cols > HALF {
            store_tile256(hi, activation, out, offset + HALF, remaining_cols - HALF);
        }
    }

    /// Stores up to 8 lanes of a finished tile and applies the activation in
    /// the same pass (ReLU in registers; sigmoid/tanh scalar on the stored
    /// lanes, identical to the scalar kernel's recipe).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn store_tile256(
        acc: __m256,
        activation: Activation,
        out: &mut [f32],
        offset: usize,
        remaining_cols: usize,
    ) {
        let acc = match activation {
            Activation::Relu => {
                // `if v < 0.0 { 0.0 }`: lanes where v < 0 are cleared; -0.0 and
                // NaN compare not-less-than and pass through — exactly the
                // scalar recipe.
                let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(acc, _mm256_setzero_ps());
                _mm256_andnot_ps(lt, acc)
            }
            _ => acc,
        };
        let cols = HALF.min(remaining_cols);
        if cols == HALF {
            _mm256_storeu_ps(out.as_mut_ptr().add(offset), acc);
        } else {
            let mut tmp = [0.0f32; HALF];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
            out[offset..offset + cols].copy_from_slice(&tmp[..cols]);
        }
        if matches!(activation, Activation::Sigmoid | Activation::Tanh) {
            apply_activation_slice(activation, &mut out[offset..offset + cols]);
        }
    }

    /// Stores up to 16 lanes of a finished tile (AVX-512 form of
    /// [`store_tile256`], same activation recipe).
    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512dq")]
    unsafe fn store_tile512(
        acc: __m512,
        activation: Activation,
        out: &mut [f32],
        offset: usize,
        remaining_cols: usize,
    ) {
        let acc = match activation {
            Activation::Relu => {
                // Lanes where v < 0 (ordered) are zeroed; -0.0 and NaN pass
                // through — exactly the scalar recipe.
                let lt = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(acc, _mm512_setzero_ps());
                _mm512_maskz_mov_ps(!lt, acc)
            }
            _ => acc,
        };
        let cols = LANES.min(remaining_cols);
        if cols == LANES {
            _mm512_storeu_ps(out.as_mut_ptr().add(offset), acc);
        } else {
            let mut tmp = [0.0f32; LANES];
            _mm512_storeu_ps(tmp.as_mut_ptr(), acc);
            out[offset..offset + cols].copy_from_slice(&tmp[..cols]);
        }
        if matches!(activation, Activation::Sigmoid | Activation::Tanh) {
            apply_activation_slice(activation, &mut out[offset..offset + cols]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn matmul_wt_avx2(lhs: &Matrix, panels: &PackedPanels, out: &mut [f32]) {
        let k = panels.k;
        let n = panels.n;
        let np = panels.panel_count();
        const KC: usize = 4;
        for i in 0..lhs.rows() {
            let lhs_row = lhs.row(i);
            let mut kk0 = 0;
            while kk0 < k {
                let kb = KC.min(k - kk0);
                let mut acc_lo = [_mm256_setzero_ps(); KC];
                let mut acc_hi = [_mm256_setzero_ps(); KC];
                for p in 0..np {
                    let cols = LANES.min(n - p * LANES);
                    let (x_lo, x_hi) = if cols == LANES {
                        (
                            _mm256_loadu_ps(lhs_row.as_ptr().add(p * LANES)),
                            _mm256_loadu_ps(lhs_row.as_ptr().add(p * LANES + HALF)),
                        )
                    } else {
                        let mut tmp = [0.0f32; LANES];
                        tmp[..cols].copy_from_slice(&lhs_row[p * LANES..p * LANES + cols]);
                        (
                            _mm256_loadu_ps(tmp.as_ptr()),
                            _mm256_loadu_ps(tmp.as_ptr().add(HALF)),
                        )
                    };
                    let panel = panels.panel(p);
                    for j in 0..kb {
                        let w_lo = _mm256_loadu_ps(panel.as_ptr().add((kk0 + j) * LANES));
                        let w_hi = _mm256_loadu_ps(panel.as_ptr().add((kk0 + j) * LANES + HALF));
                        acc_lo[j] = _mm256_fmadd_ps(x_lo, w_lo, acc_lo[j]);
                        acc_hi[j] = _mm256_fmadd_ps(x_hi, w_hi, acc_hi[j]);
                    }
                }
                for j in 0..kb {
                    // Fold the halves (`s_i = l_i + l_{i+8}`), then the 8-lane
                    // tree — the fixed 16-lane reduction order.
                    out[i * k + kk0 + j] =
                        reduce_lanes_avx(_mm256_add_ps(acc_lo[j], acc_hi[j]));
                }
                kk0 += kb;
            }
        }
    }

    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512dq")]
    pub(super) unsafe fn matmul_wt_avx512(lhs: &Matrix, panels: &PackedPanels, out: &mut [f32]) {
        let k = panels.k;
        let n = panels.n;
        let np = panels.panel_count();
        const KC: usize = 8;
        for i in 0..lhs.rows() {
            let lhs_row = lhs.row(i);
            let mut kk0 = 0;
            while kk0 < k {
                let kb = KC.min(k - kk0);
                let mut acc = [_mm512_setzero_ps(); KC];
                for p in 0..np {
                    let cols = LANES.min(n - p * LANES);
                    let x = if cols == LANES {
                        _mm512_loadu_ps(lhs_row.as_ptr().add(p * LANES))
                    } else {
                        let mut tmp = [0.0f32; LANES];
                        tmp[..cols].copy_from_slice(&lhs_row[p * LANES..p * LANES + cols]);
                        _mm512_loadu_ps(tmp.as_ptr())
                    };
                    let panel = panels.panel(p);
                    for (j, acc_j) in acc.iter_mut().enumerate().take(kb) {
                        let w = _mm512_loadu_ps(panel.as_ptr().add((kk0 + j) * LANES));
                        *acc_j = _mm512_fmadd_ps(x, w, *acc_j);
                    }
                }
                for (j, &acc_j) in acc.iter().enumerate().take(kb) {
                    out[i * k + kk0 + j] = reduce_lanes_512(acc_j);
                }
                kk0 += kb;
            }
        }
    }

    /// The vector form of [`super::reduce_lanes`]'s 8-lane tail: extract/add
    /// the 128-bit halves, then the movehl/shuffle pair — summing in exactly
    /// the fixed tree's order.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn reduce_lanes_avx(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        // [l0+l4, l1+l5, l2+l6, l3+l7]
        let quad = _mm_add_ps(lo, hi);
        // [s04+s26, s15+s37, ..]
        let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let one = _mm_add_ss(pair, _mm_shuffle_ps::<0b01>(pair, pair));
        _mm_cvtss_f32(one)
    }

    /// The 16-lane reduction: fold the 256-bit halves (`s_i = l_i + l_{i+8}`),
    /// then [`reduce_lanes_avx`] — the exact order of [`super::reduce_lanes`].
    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512dq")]
    unsafe fn reduce_lanes_512(v: __m512) -> f32 {
        let lo = _mm512_castps512_ps256(v);
        let hi = _mm512_extractf32x8_ps::<1>(v);
        reduce_lanes_avx(_mm256_add_ps(lo, hi))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn transpose_matmul_avx2(lhs: &Matrix, rhs: &Matrix, out: &mut [f32]) {
        let n = rhs.cols();
        for kk in 0..lhs.rows() {
            let lhs_row = lhs.row(kk);
            let rhs_row = rhs.row(kk);
            for (i, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                let av = _mm256_set1_ps(a);
                let mut j = 0;
                while j + HALF <= n {
                    let o = _mm256_loadu_ps(out_row.as_ptr().add(j));
                    let b = _mm256_loadu_ps(rhs_row.as_ptr().add(j));
                    _mm256_storeu_ps(out_row.as_mut_ptr().add(j), _mm256_fmadd_ps(av, b, o));
                    j += HALF;
                }
                for (o, &b) in out_row[j..].iter_mut().zip(&rhs_row[j..]) {
                    *o = a.mul_add(b, *o);
                }
            }
        }
    }
}

/// Runs `f` with the AVX-512 forms of the vector kernels disabled, so the
/// AVX2 forms can be bit-compared against them on one machine (test-only).
#[cfg(all(test, target_arch = "x86_64"))]
pub(crate) fn with_avx512_disabled<T>(f: impl FnOnce() -> T) -> T {
    let previous = DISABLE_AVX512.with(|c| c.replace(true));
    let result = f();
    DISABLE_AVX512.with(|c| c.set(previous));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill that exercises signs, zeros and
    /// magnitudes without a PRNG dependency.
    fn fill(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let h = (r as u64 * 31 + c as u64 * 7 + salt).wrapping_mul(0x9E3779B97F4A7C15);
                let v = ((h >> 40) as i32 % 1000) as f32 / 250.0 - 2.0;
                m.set(r, c, if h.is_multiple_of(5) { 0.0 } else { v });
            }
        }
        m
    }

    fn reference_forward(
        x: &Matrix,
        w: &Matrix,
        b: &Matrix,
        act: Activation,
    ) -> Matrix {
        let mut z = x.matmul(w).unwrap();
        z.add_row_broadcast(b).unwrap();
        act.apply_in_place(&mut z);
        z
    }

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|f| f.to_bits()).collect()
    }

    fn both_kernels() -> Vec<Kernel> {
        vec![Kernel::Scalar, Kernel::Vector]
    }

    #[test]
    fn pack_lays_out_panels_with_zero_padding() {
        let w = fill(3, 18, 1);
        let b = fill(1, 18, 2);
        let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
        assert_eq!(panels.k(), 3);
        assert_eq!(panels.n(), 18);
        assert_eq!(panels.panel_count(), 2);
        assert!(panels.bytes() > 0);
        // Panel 0, row 1, lane 3 is weight[1][3]; panel 1, row 2, lane 1 is
        // weight[2][17]; padding lanes are zero.
        assert_eq!(panels.panel(0)[LANES + 3], w.get(1, 3));
        assert_eq!(panels.panel(1)[2 * LANES + 1], w.get(2, 17));
        for lane in 2..LANES {
            assert_eq!(panels.panel(1)[2 * LANES + lane], 0.0);
            assert_eq!(panels.bias_panel(1)[lane], 0.0);
        }
        assert_eq!(panels.bias_panel(1)[1], b.get(0, 17));
    }

    #[test]
    fn pack_rejects_mismatched_bias() {
        let w = Matrix::zeros(3, 4);
        let bad = Matrix::zeros(1, 5);
        assert!(PackedPanels::pack(&w, Some(&bad)).is_err());
    }

    /// The packed forward kernel must agree with the textbook matmul + bias +
    /// activation across every m/n/k remainder class of the lane and panel
    /// widths — including empty and single-row inputs.
    #[test]
    fn forward_packed_matches_reference_across_remainders() {
        for kernel in both_kernels() {
            for &m in &[0usize, 1, 3, 4, 5, 9] {
                for &k in &[1usize, 4, 7, 8, 9, 17] {
                    for &n in &[1usize, 7, 8, 15, 16, 17, 31, 32, 35] {
                        for act in [Activation::Linear, Activation::Relu, Activation::Tanh] {
                            let x = fill(m, k, 3);
                            let w = fill(k, n, 4);
                            let b = fill(1, n, 5);
                            let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
                            let got =
                                forward_packed_with(kernel, &x, 0, m, &panels, act).unwrap();
                            let expected = reference_forward(&x, &w, &b, act);
                            assert_close(&got, &expected);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forward_packed_row_windows_match_full_pass() {
        let x = fill(10, 9, 6);
        let w = fill(9, 18, 7);
        let b = fill(1, 18, 8);
        let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
        let full = forward_packed(&x, 0, 10, &panels, Activation::Relu).unwrap();
        for start in 0..10 {
            for count in 0..=(10 - start) {
                let window =
                    forward_packed(&x, start, count, &panels, Activation::Relu).unwrap();
                for r in 0..count {
                    assert_eq!(window.row(r), full.row(start + r), "window [{start}; {count})");
                }
            }
        }
        assert!(forward_packed(&x, 8, 3, &panels, Activation::Relu).is_err());
        let wrong_k = fill(4, 8, 1);
        assert!(forward_packed(&wrong_k, 0, 4, &panels, Activation::Relu).is_err());
    }

    /// Scalar and vector kernels must agree bit for bit — the invariant that
    /// keeps aux-table memorization lossless across kernel selection.  On
    /// AVX-512 hardware the vector kernel is additionally run in its AVX2
    /// form (via the test-only feature override) and must agree too.
    #[test]
    fn scalar_and_vector_kernels_are_bit_identical() {
        if !vector_available() {
            return; // vector lanes degrade to the scalar recipe anyway
        }
        for &(m, k, n) in &[
            (1usize, 5usize, 3usize),
            (4, 8, 8),
            (5, 16, 16),
            (7, 33, 21),
            (9, 40, 48),
            (64, 40, 100),
        ] {
            let x = fill(m, k, 11);
            let w = fill(k, n, 12);
            let b = fill(1, n, 13);
            let panels = PackedPanels::pack(&w, Some(&b)).unwrap();
            for act in [
                Activation::Linear,
                Activation::Relu,
                Activation::Sigmoid,
                Activation::Tanh,
            ] {
                let s = forward_packed_with(Kernel::Scalar, &x, 0, m, &panels, act).unwrap();
                let v = forward_packed_with(Kernel::Vector, &x, 0, m, &panels, act).unwrap();
                assert_eq!(bits(&s), bits(&v), "forward {m}x{k}x{n} {act:?}");
                #[cfg(target_arch = "x86_64")]
                if avx512_available() {
                    let v2 = with_avx512_disabled(|| {
                        forward_packed_with(Kernel::Vector, &x, 0, m, &panels, act).unwrap()
                    });
                    assert_eq!(bits(&s), bits(&v2), "forward avx2 {m}x{k}x{n} {act:?}");
                }
            }
            let dy = fill(m, n, 14);
            let s = matmul_transpose_packed_with(Kernel::Scalar, &dy, &panels).unwrap();
            let v = matmul_transpose_packed_with(Kernel::Vector, &dy, &panels).unwrap();
            assert_eq!(bits(&s), bits(&v), "matmul_wt {m}x{n}x{k}");
            #[cfg(target_arch = "x86_64")]
            if avx512_available() {
                let v2 = with_avx512_disabled(|| {
                    matmul_transpose_packed_with(Kernel::Vector, &dy, &panels).unwrap()
                });
                assert_eq!(bits(&s), bits(&v2), "matmul_wt avx2 {m}x{n}x{k}");
            }
            let xt = fill(k, m, 15);
            let rhs = fill(k, n, 16);
            let s = transpose_matmul_with(Kernel::Scalar, &xt, &rhs).unwrap();
            let v = transpose_matmul_with(Kernel::Vector, &xt, &rhs).unwrap();
            assert_eq!(bits(&s), bits(&v), "transpose_matmul {k}x{m}x{n}");
        }
    }

    #[test]
    fn matmul_transpose_packed_matches_explicit_transpose() {
        for kernel in both_kernels() {
            for &(m, n, k) in &[(1usize, 1usize, 1usize), (3, 9, 7), (5, 16, 8), (6, 21, 33)] {
                let lhs = fill(m, n, 21);
                let w = fill(k, n, 22);
                let panels = PackedPanels::pack(&w, None).unwrap();
                let got = matmul_transpose_packed_with(kernel, &lhs, &panels).unwrap();
                let expected = lhs.matmul(&w.transpose()).unwrap();
                assert_close(&got, &expected);
            }
        }
        let lhs = Matrix::zeros(2, 5);
        let panels = PackedPanels::pack(&Matrix::zeros(3, 4), None).unwrap();
        assert!(matmul_transpose_packed(&lhs, &panels).is_err());
    }

    #[test]
    fn transpose_matmul_matches_explicit_transpose() {
        for kernel in both_kernels() {
            for &(k, m, n) in &[(1usize, 1usize, 1usize), (4, 3, 9), (9, 8, 16), (17, 5, 21)] {
                let lhs = fill(k, m, 31);
                let rhs = fill(k, n, 32);
                let got = transpose_matmul_with(kernel, &lhs, &rhs).unwrap();
                let expected = lhs.transpose().matmul(&rhs).unwrap();
                assert_close(&got, &expected);
            }
        }
        assert!(transpose_matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 5)).is_err());
    }

    #[test]
    fn reduce_lanes_is_the_documented_tree() {
        let v: [f32; LANES] = std::array::from_fn(|i| (i + 1) as f32);
        assert_eq!(reduce_lanes(v), 136.0);
        // Order sensitivity: fold halves first, then the 8-lane tree.
        let mut v = [0.0f32; LANES];
        v[0] = 1e8;
        v[8] = 1.0;
        v[2] = -1e8;
        v[10] = 0.5;
        v[1] = 0.25;
        let s0 = 1e8f32 + 1.0;
        let s2 = -1e8f32 + 0.5;
        let expected = ((s0 + s2) + 0.0) + ((0.25 + 0.0) + 0.0);
        assert_eq!(reduce_lanes(v), expected);
    }

    // -----------------------------------------------------------------------
    // Int8 quantized path.
    // -----------------------------------------------------------------------

    /// Independent re-implementation of the quantized recipe (row
    /// quantization, exact i32 dot, fixed dequantization epilogue) used to
    /// cross-check the panel layout end to end.
    fn naive_quantized_forward(
        x: &Matrix,
        w: &Matrix,
        b: &Matrix,
        act: Activation,
    ) -> Matrix {
        let (m, k, n) = (x.rows(), w.rows(), w.cols());
        // Per-column weight quantization.
        let mut wscale = vec![1.0f32; n];
        let mut q = vec![0i32; k * n];
        for c in 0..n {
            let mut amax = 0.0f32;
            for kk in 0..k {
                amax = amax.max(w.get(kk, c).abs());
            }
            if amax > 0.0 {
                wscale[c] = amax / 127.0;
            }
            for kk in 0..k {
                q[kk * n + c] =
                    (w.get(kk, c) / wscale[c]).round().clamp(-127.0, 127.0) as i32;
            }
        }
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let row = x.row(i);
            let mut amax = 0.0f32;
            for &v in row {
                if v.abs() > amax {
                    amax = v.abs();
                }
            }
            let (xq, xscale): (Vec<i32>, f32) = if amax == 0.0 {
                (vec![0; k], 1.0)
            } else {
                let inv = 127.0 / amax;
                (
                    row.iter()
                        // Input rows round ties-to-even (the `vcvtps2dq` mode).
                        .map(|&v| (v * inv).round_ties_even().clamp(-127.0, 127.0) as i32)
                        .collect(),
                    amax / 127.0,
                )
            };
            for c in 0..n {
                let mut acc = 0i32;
                for kk in 0..k {
                    acc += xq[kk] * q[kk * n + c];
                }
                let mscale = xscale * wscale[c];
                out.set(i, c, (acc as f32).mul_add(mscale, b.get(0, c)));
            }
        }
        act.apply_in_place(&mut out);
        out
    }

    /// Every kernel's quantized forward must agree bit for bit with the
    /// independent recipe across all lane/panel/k-pair remainder classes.
    #[test]
    fn quantized_forward_matches_the_recipe_across_remainders() {
        for kernel in both_kernels() {
            for &m in &[0usize, 1, 3, 4, 5, 9] {
                for &k in &[1usize, 2, 7, 16, 17, 33] {
                    for &n in &[1usize, 8, 15, 16, 17, 33] {
                        for act in [Activation::Linear, Activation::Relu, Activation::Sigmoid] {
                            let x = fill(m, k, 43);
                            let w = fill(k, n, 44);
                            let b = fill(1, n, 45);
                            let panels = QuantizedPanels::quantize(&w, Some(&b)).unwrap();
                            let got =
                                forward_quantized_with(kernel, &x, 0, m, &panels, act).unwrap();
                            let expected = naive_quantized_forward(&x, &w, &b, act);
                            assert_eq!(
                                bits(&got),
                                bits(&expected),
                                "{kernel:?} quantized {m}x{k}x{n} {act:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Scalar, AVX2 and AVX-512 quantized kernels are bit-identical, and row
    /// windows (chunking) cannot change any row.
    #[test]
    fn quantized_kernels_are_bit_identical_and_chunk_invariant() {
        let x = fill(13, 33, 51);
        let w = fill(33, 37, 52);
        let b = fill(1, 37, 53);
        let panels = QuantizedPanels::quantize(&w, Some(&b)).unwrap();
        let full =
            forward_quantized_with(Kernel::Scalar, &x, 0, 13, &panels, Activation::Relu).unwrap();
        let v =
            forward_quantized_with(Kernel::Vector, &x, 0, 13, &panels, Activation::Relu).unwrap();
        assert_eq!(bits(&full), bits(&v));
        #[cfg(target_arch = "x86_64")]
        if avx512_available() {
            let v2 = with_avx512_disabled(|| {
                forward_quantized_with(Kernel::Vector, &x, 0, 13, &panels, Activation::Relu)
                    .unwrap()
            });
            assert_eq!(bits(&full), bits(&v2), "avx2 form");
        }
        for start in 0..13 {
            for count in 0..=(13 - start) {
                let window =
                    forward_quantized(&x, start, count, &panels, Activation::Relu).unwrap();
                for r in 0..count {
                    assert_eq!(window.row(r), full.row(start + r), "window [{start}; {count})");
                }
            }
        }
        assert!(forward_quantized(&x, 12, 3, &panels, Activation::Relu).is_err());
        let wrong_k = fill(4, 8, 1);
        assert!(forward_quantized(&wrong_k, 0, 4, &panels, Activation::Relu).is_err());
    }

    /// Quantization must be a deterministic fixed point: raw parts reproduce
    /// the panels byte-identically, and re-quantizing the dequantized weight
    /// reproduces the same quantized values and scales.
    #[test]
    fn quantize_dequantize_round_trip_is_deterministic() {
        for &(k, n) in &[(1usize, 1usize), (5, 7), (16, 16), (17, 33), (40, 100)] {
            let w = fill(k, n, 61);
            let b = fill(1, n, 62);
            let panels = QuantizedPanels::quantize(&w, Some(&b)).unwrap();
            // Serialization round trip: raw parts → identical panels.
            let q = panels.weights_row_major();
            let rebuilt =
                QuantizedPanels::from_parts(k, n, &q, panels.column_scales(), Some(&b)).unwrap();
            assert_eq!(panels, rebuilt, "{k}x{n} parts round trip");
            // Quantization fixed point: quantize(dequantize(q)) == q.
            let dq = panels.dequantized_weight();
            let again = QuantizedPanels::quantize(&dq, Some(&b)).unwrap();
            assert_eq!(panels, again, "{k}x{n} fixed point");
            // And the dequantized weight is within one quantization step.
            for kk in 0..k {
                for c in 0..n {
                    let err = (dq.get(kk, c) - w.get(kk, c)).abs();
                    assert!(err <= panels.column_scales()[c] * 0.5 + 1e-6, "{k}x{n} error");
                }
            }
        }
    }

    /// The backward shapes over a quantized layer run against the dequantized
    /// weight through the f32 kernels — scalar and vector must agree bit for
    /// bit there too (dy·Wᵀ and xᵀ·dy).
    #[test]
    fn quantized_backward_shapes_are_bit_identical_across_kernels() {
        if !vector_available() {
            return;
        }
        let w = fill(17, 21, 71);
        let b = fill(1, 21, 72);
        let qpanels = QuantizedPanels::quantize(&w, Some(&b)).unwrap();
        let dq = qpanels.dequantized_weight();
        let panels = PackedPanels::pack(&dq, Some(&b)).unwrap();
        let dy = fill(9, 21, 73);
        let s = matmul_transpose_packed_with(Kernel::Scalar, &dy, &panels).unwrap();
        let v = matmul_transpose_packed_with(Kernel::Vector, &dy, &panels).unwrap();
        assert_eq!(bits(&s), bits(&v), "dy·Wᵀ over dequantized weights");
        let xt = fill(17, 9, 74);
        let rhs = fill(17, 21, 75);
        let s = transpose_matmul_with(Kernel::Scalar, &xt, &rhs).unwrap();
        let v = transpose_matmul_with(Kernel::Vector, &xt, &rhs).unwrap();
        assert_eq!(bits(&s), bits(&v), "xᵀ·dy");
    }

    #[test]
    fn quantized_panels_validate_their_inputs() {
        let w = Matrix::zeros(3, 4);
        let bad = Matrix::zeros(1, 5);
        assert!(QuantizedPanels::quantize(&w, Some(&bad)).is_err());
        assert!(QuantizedPanels::from_parts(3, 4, &[0; 11], &[1.0; 4], None).is_err());
        assert!(QuantizedPanels::from_parts(3, 4, &[0; 12], &[1.0; 3], None).is_err());
        assert!(matches!(
            QuantizedPanels::from_parts(
                QUANT_MAX_K + 1,
                1,
                &vec![0; QUANT_MAX_K + 1],
                &[1.0],
                None
            ),
            Err(NnError::InvalidConfig(_))
        ));
        // All-zero columns quantize with the 1.0 sentinel scale.
        let panels = QuantizedPanels::quantize(&Matrix::zeros(4, 3), None).unwrap();
        assert_eq!(panels.column_scales(), &[1.0, 1.0, 1.0]);
        assert!(panels.bytes() > 0);
    }

    #[test]
    fn forced_kernel_overrides_selection_on_this_thread() {
        let outside = active();
        with_forced(Kernel::Scalar, || {
            assert_eq!(active(), Kernel::Scalar);
            with_forced(Kernel::Vector, || assert_eq!(active(), Kernel::Vector));
            assert_eq!(active(), Kernel::Scalar);
        });
        assert_eq!(active(), outside);
        assert!(!Kernel::Scalar.name().is_empty());
        assert!(!Kernel::Vector.name().is_empty());
    }
}
