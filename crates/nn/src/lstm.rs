//! LSTM cell and autoregressive sequence controller.
//!
//! MHAS (Section IV-C2) drives the architecture search with an LSTM controller that
//! "samples decisions via softmax classifiers in an autoregressive fashion".  The
//! controller here mirrors ENAS: at each decision step the LSTM consumes an embedding
//! of the previous decision, produces a hidden state, and a per-decision softmax layer
//! turns that state into a categorical distribution over the available choices.  The
//! controller is trained with REINFORCE (policy gradient) on the Eq.-1 reward; that
//! training loop lives in `dm-core::mhas`, while this module provides the
//! differentiable pieces: the cell, sampling, log-probabilities and the policy-gradient
//! update.

use crate::init;
use crate::kernel::{self, PackedPanels};
use crate::layer::Activation;
use crate::tensor::Matrix;
use rand::Rng;
use std::sync::OnceLock;

/// The four gate activation vectors (input, forget, cell candidate, output) of one
/// LSTM step.
type GateActivations = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

/// A single-layer LSTM cell operating on one time step at a time.
///
/// Gates are computed from the concatenation `[x, h]`, with weights stored as one
/// `(input_dim + hidden) × 4*hidden` matrix laid out as `[i | f | g | o]` blocks.
#[derive(Debug, Clone)]
pub struct LstmCell {
    input_dim: usize,
    hidden: usize,
    weight: Matrix,
    bias: Matrix,
    /// Gate weights repacked into lane-width panels for the SIMD kernels
    /// (invalidated whenever an optimizer touches the parameters).
    panels: OnceLock<PackedPanels>,
    // Gradients accumulated across the steps of an episode (REINFORCE update granularity).
    grad_weight: Matrix,
    grad_bias: Matrix,
}

/// Hidden state of the LSTM: `(h, c)` row vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden output vector (1 × hidden).
    pub h: Matrix,
    /// Cell state vector (1 × hidden).
    pub c: Matrix,
}

impl LstmState {
    /// A zero state for a cell with the given hidden width.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: Matrix::zeros(1, hidden),
            c: Matrix::zeros(1, hidden),
        }
    }
}

/// Cached intermediate values for one step, needed by the backward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
}

impl LstmCell {
    /// Creates a cell with weights drawn from `N(0, init_std^2)` — the paper
    /// initializes the controller uniformly in `N(0, 0.05^2)`.
    pub fn new<R: Rng>(rng: &mut R, input_dim: usize, hidden: usize, init_std: f32) -> Self {
        LstmCell {
            input_dim,
            hidden,
            weight: init::gaussian(rng, input_dim + hidden, 4 * hidden, 0.0, init_std),
            bias: Matrix::zeros(1, 4 * hidden),
            panels: OnceLock::new(),
            grad_weight: Matrix::zeros(input_dim + hidden, 4 * hidden),
            grad_bias: Matrix::zeros(1, 4 * hidden),
        }
    }

    /// The gate weight/bias pair repacked into lane-width panels, packing on
    /// first use after a mutation.
    fn packed(&self) -> &PackedPanels {
        self.panels.get_or_init(|| {
            PackedPanels::pack(&self.weight, Some(&self.bias))
                .expect("gate weight/bias shapes are fixed at construction")
        })
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn gates(&self, x: &Matrix, state: &LstmState) -> crate::Result<GateActivations> {
        let concat = x.hstack(&state.h)?;
        // One packed-panel pass with the bias fused into the accumulators; the
        // gate nonlinearities are applied per section below.
        let z = kernel::forward_packed(&concat, 0, 1, self.packed(), Activation::Linear)?;
        let h = self.hidden;
        let zr = z.row(0);
        let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
        let i: Vec<f32> = zr[0..h].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f32> = zr[h..2 * h].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f32> = zr[2 * h..3 * h].iter().map(|&v| v.tanh()).collect();
        let o: Vec<f32> = zr[3 * h..4 * h].iter().map(|&v| sigmoid(v)).collect();
        Ok((i, f, g, o))
    }

    /// One forward step: consumes an input row vector and the previous state, returns
    /// the new state.
    pub fn forward(&self, x: &Matrix, state: &LstmState) -> crate::Result<LstmState> {
        let (step, new_state) = self.forward_cached(x, state)?;
        drop(step);
        Ok(new_state)
    }

    fn forward_cached(&self, x: &Matrix, state: &LstmState) -> crate::Result<(StepCache, LstmState)> {
        if x.rows() != 1 || x.cols() != self.input_dim {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "LSTM input must be 1x{}, got {}x{}",
                    self.input_dim,
                    x.rows(),
                    x.cols()
                ),
            });
        }
        let (i, f, g, o) = self.gates(x, state)?;
        let h = self.hidden;
        let mut c = vec![0.0f32; h];
        let mut hv = vec![0.0f32; h];
        for k in 0..h {
            c[k] = f[k] * state.c.get(0, k) + i[k] * g[k];
            hv[k] = o[k] * c[k].tanh();
        }
        let cache = StepCache {
            x: x.clone(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            i,
            f,
            g,
            o,
            c: c.clone(),
        };
        let new_state = LstmState {
            h: Matrix::from_vec(1, h, hv).expect("shape"),
            c: Matrix::from_vec(1, h, c).expect("shape"),
        };
        Ok((cache, new_state))
    }

    /// Backward through one step given gradients w.r.t. the step's `h` and `c`
    /// outputs.  Accumulates weight gradients internally and returns gradients w.r.t.
    /// the inputs `(dx, dh_prev, dc_prev)`.
    fn backward_step(
        &mut self,
        cache: &StepCache,
        dh: &[f32],
        dc_in: &[f32],
    ) -> crate::Result<(Matrix, Vec<f32>, Vec<f32>)> {
        let h = self.hidden;
        let mut dz = vec![0.0f32; 4 * h];
        let mut dc_prev = vec![0.0f32; h];
        for k in 0..h {
            let tanh_c = cache.c[k].tanh();
            let do_ = dh[k] * tanh_c;
            let dc = dh[k] * cache.o[k] * (1.0 - tanh_c * tanh_c) + dc_in[k];
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev.get(0, k);
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];
            // Through the gate nonlinearities.
            dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            dz[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            dz[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            dz[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }
        let dz_m = Matrix::from_vec(1, 4 * h, dz).expect("shape");
        let concat = cache.x.hstack(&cache.h_prev)?;
        let grad_w = concat.transpose_matmul(&dz_m)?;
        self.grad_weight.add_scaled(&grad_w, 1.0)?;
        self.grad_bias.add_scaled(&dz_m, 1.0)?;
        // `dz · Wᵀ` reuses the forward panels (the optimizer only runs after
        // the episode's gradients are fully accumulated).
        let d_concat = kernel::matmul_transpose_packed(&dz_m, self.packed())?;
        let dx = Matrix::from_vec(1, self.input_dim, d_concat.row(0)[..self.input_dim].to_vec())
            .expect("shape");
        let dh_prev = d_concat.row(0)[self.input_dim..].to_vec();
        Ok((dx, dh_prev, dc_prev))
    }

    /// Resets accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.grad_weight = Matrix::zeros(self.input_dim + self.hidden, 4 * self.hidden);
        self.grad_bias = Matrix::zeros(1, 4 * self.hidden);
    }

    /// Mutable (parameter, gradient) pairs for optimizer updates.  Handing out
    /// the mutable parameters invalidates the packed panels.
    pub fn parameters_and_grads(&mut self) -> Vec<(&mut Matrix, &Matrix)> {
        self.panels.take();
        vec![
            (&mut self.weight, &self.grad_weight),
            (&mut self.bias, &self.grad_bias),
        ]
    }
}

/// One decision taken by the controller while sampling an architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Which decision step this was.
    pub step: usize,
    /// Number of available choices at this step.
    pub num_choices: usize,
    /// The sampled choice index.
    pub choice: usize,
    /// Log probability of the sampled choice (for REINFORCE).
    pub log_prob: f32,
    /// Entropy of the categorical distribution (optional exploration bonus).
    pub entropy: f32,
}

/// An autoregressive controller: an LSTM cell plus one softmax projection per decision
/// step.  Decision steps are registered up front with their number of choices; the
/// embedding of the previous step's choice is the LSTM input for the next step.
#[derive(Debug)]
pub struct SequenceController {
    cell: LstmCell,
    hidden: usize,
    /// Per-step projection matrices (hidden × num_choices) and biases.
    projections: Vec<(Matrix, Matrix)>,
    proj_grads: Vec<(Matrix, Matrix)>,
    /// Per-step per-choice embeddings fed as the next input (num_choices × embed_dim).
    embeddings: Vec<Matrix>,
    embed_dim: usize,
    /// Learned start-of-sequence embedding.
    start_embedding: Matrix,
    /// Cached episode for the policy-gradient backward pass.
    episode: Vec<EpisodeStep>,
}

#[derive(Debug, Clone)]
struct EpisodeStep {
    step_index: usize,
    // Probability vector, chosen index, LSTM input and cache for backward.
    probs: Vec<f32>,
    choice: usize,
    cache: Option<StepCacheOwned>,
}

#[derive(Debug, Clone)]
struct StepCacheOwned {
    cache: StepCache,
    h_out: Vec<f32>,
}

impl SequenceController {
    /// Creates a controller.  `choice_counts[i]` is the number of options at decision
    /// step `i`; `hidden` is the LSTM width (the paper uses 64).
    pub fn new<R: Rng>(rng: &mut R, choice_counts: &[usize], hidden: usize) -> crate::Result<Self> {
        if choice_counts.is_empty() {
            return Err(crate::NnError::InvalidConfig(
                "controller needs at least one decision step".into(),
            ));
        }
        if choice_counts.contains(&0) {
            return Err(crate::NnError::InvalidConfig(
                "every decision step needs at least one choice".into(),
            ));
        }
        let embed_dim = hidden;
        let cell = LstmCell::new(rng, embed_dim, hidden, 0.05);
        let mut projections = Vec::with_capacity(choice_counts.len());
        let mut proj_grads = Vec::with_capacity(choice_counts.len());
        let mut embeddings = Vec::with_capacity(choice_counts.len());
        for &count in choice_counts {
            projections.push((
                init::gaussian(rng, hidden, count, 0.0, 0.05),
                Matrix::zeros(1, count),
            ));
            proj_grads.push((Matrix::zeros(hidden, count), Matrix::zeros(1, count)));
            embeddings.push(init::gaussian(rng, count, embed_dim, 0.0, 0.05));
        }
        Ok(SequenceController {
            cell,
            hidden,
            projections,
            proj_grads,
            embeddings,
            embed_dim,
            start_embedding: init::gaussian(rng, 1, embed_dim, 0.0, 0.05),
            episode: Vec::new(),
        })
    }

    /// Number of decision steps.
    pub fn num_steps(&self) -> usize {
        self.projections.len()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.cell.parameter_count()
            + self
                .projections
                .iter()
                .map(|(w, b)| w.len() + b.len())
                .sum::<usize>()
            + self.embeddings.iter().map(Matrix::len).sum::<usize>()
            + self.start_embedding.len()
    }

    /// Samples one full decision sequence, caching everything needed for a subsequent
    /// [`SequenceController::reinforce_backward`].
    pub fn sample_episode<R: Rng>(&mut self, rng: &mut R) -> crate::Result<Vec<Decision>> {
        self.episode.clear();
        let mut state = LstmState::zeros(self.hidden);
        let mut input = self.start_embedding.clone();
        let mut decisions = Vec::with_capacity(self.num_steps());
        for step in 0..self.num_steps() {
            let (cache, new_state) = self.cell.forward_cached(&input, &state)?;
            let (w, b) = &self.projections[step];
            let mut logits = new_state.h.matmul(w)?;
            logits.add_row_broadcast(b)?;
            let probs_m = crate::loss::softmax(&logits);
            let probs = probs_m.row(0).to_vec();
            let choice = sample_categorical(rng, &probs);
            let log_prob = probs[choice].max(1e-12).ln();
            let entropy = -probs
                .iter()
                .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                .sum::<f32>();
            decisions.push(Decision {
                step,
                num_choices: probs.len(),
                choice,
                log_prob,
                entropy,
            });
            self.episode.push(EpisodeStep {
                step_index: step,
                probs,
                choice,
                cache: Some(StepCacheOwned {
                    cache,
                    h_out: new_state.h.row(0).to_vec(),
                }),
            });
            input = Matrix::from_vec(1, self.embed_dim, self.embeddings[step].row(choice).to_vec())
                .expect("shape");
            state = new_state;
        }
        Ok(decisions)
    }

    /// Greedy (argmax) decode — used after search converges to pick the final
    /// architecture without sampling noise.
    pub fn greedy_decode(&self) -> crate::Result<Vec<usize>> {
        let mut state = LstmState::zeros(self.hidden);
        let mut input = self.start_embedding.clone();
        let mut choices = Vec::with_capacity(self.num_steps());
        for step in 0..self.num_steps() {
            let new_state = self.cell.forward(&input, &state)?;
            let (w, b) = &self.projections[step];
            let mut logits = new_state.h.matmul(w)?;
            logits.add_row_broadcast(b)?;
            let choice = logits.argmax_row(0);
            choices.push(choice);
            input = Matrix::from_vec(1, self.embed_dim, self.embeddings[step].row(choice).to_vec())
                .expect("shape");
            state = new_state;
        }
        Ok(choices)
    }

    /// REINFORCE update: given the advantage (reward − baseline) of the most recent
    /// [`SequenceController::sample_episode`], accumulates policy gradients that
    /// *increase* the log-probability of the sampled decisions proportionally to the
    /// advantage.  Call [`SequenceController::apply_gradients`] afterwards.
    ///
    /// The loss being minimized is `-advantage * Σ log π(choice)` (entropy
    /// regularization can be added by the caller through `entropy_bonus`).
    pub fn reinforce_backward(&mut self, advantage: f32, entropy_bonus: f32) -> crate::Result<()> {
        if self.episode.is_empty() {
            return Err(crate::NnError::InvalidConfig(
                "reinforce_backward called without a sampled episode".into(),
            ));
        }
        // d loss / d h accumulated per step, then pushed back through the LSTM in
        // reverse time order.
        let mut dh_next = vec![0.0f32; self.hidden];
        let mut dc_next = vec![0.0f32; self.hidden];
        for step in (0..self.episode.len()).rev() {
            let (probs, choice, h_out, step_index) = {
                let ep = &self.episode[step];
                let owned = ep.cache.as_ref().expect("episode cache present");
                (
                    ep.probs.clone(),
                    ep.choice,
                    owned.h_out.clone(),
                    ep.step_index,
                )
            };
            // d(-adv * log p[choice]) / d logits = adv * (p - onehot(choice))
            // entropy bonus: d(-beta * H)/d logits = beta * p * (log p + H)... we use the
            // simpler gradient of -H which is p*(log p + H); sign folded below.
            let entropy: f32 = -probs
                .iter()
                .map(|&p| if p > 0.0 { p * p.ln() } else { 0.0 })
                .sum::<f32>();
            let mut dlogits = vec![0.0f32; probs.len()];
            for (k, &p) in probs.iter().enumerate() {
                let onehot = if k == choice { 1.0 } else { 0.0 };
                let pg = advantage * (p - onehot);
                let ent_grad = if p > 0.0 {
                    entropy_bonus * p * (p.ln() + entropy)
                } else {
                    0.0
                };
                dlogits[k] = pg + ent_grad;
            }
            let dlogits_m = Matrix::from_vec(1, dlogits.len(), dlogits).expect("shape");
            let h_m = Matrix::from_vec(1, self.hidden, h_out).expect("shape");
            // Projection gradients.
            let (gw, gb) = &mut self.proj_grads[step_index];
            let grad_w = h_m.transpose_matmul(&dlogits_m)?;
            gw.add_scaled(&grad_w, 1.0)?;
            gb.add_scaled(&dlogits_m, 1.0)?;
            // Gradient into h from the projection, plus whatever flows from later steps.
            let dh_from_proj = dlogits_m.matmul_transpose_rhs(&self.projections[step_index].0)?;
            let mut dh: Vec<f32> = dh_from_proj.row(0).to_vec();
            for (a, &b) in dh.iter_mut().zip(dh_next.iter()) {
                *a += b;
            }
            let ep = &self.episode[step];
            let owned = ep.cache.as_ref().expect("episode cache present");
            let (_dx, dh_prev, dc_prev) = self.cell.backward_step(&owned.cache, &dh, &dc_next)?;
            // The embedding input gradient is dropped: embeddings are treated as learned
            // constants per (step, choice); their gradient contribution is negligible for
            // the search and omitting it keeps the episode cache small.
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        Ok(())
    }

    /// Applies accumulated gradients with the given optimizer and clears them.
    pub fn apply_gradients<O: crate::optimizer::Optimizer>(&mut self, optimizer: &mut O) {
        let mut pairs = Vec::new();
        pairs.extend(self.cell.parameters_and_grads());
        for ((w, b), (gw, gb)) in self.projections.iter_mut().zip(self.proj_grads.iter()) {
            pairs.push((w, gw));
            pairs.push((b, gb));
        }
        optimizer.step(&mut pairs);
        self.cell.zero_grad();
        for (gw, gb) in &mut self.proj_grads {
            *gw = Matrix::zeros(gw.rows(), gw.cols());
            *gb = Matrix::zeros(gb.rows(), gb.cols());
        }
        self.episode.clear();
    }
}

/// Samples an index from a (possibly unnormalized) probability vector.
fn sample_categorical<R: Rng>(rng: &mut R, probs: &[f32]) -> usize {
    let total: f32 = probs.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut u: f32 = rng.gen_range(0.0..total);
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lstm_forward_changes_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(&mut rng, 4, 8, 0.5);
        let state = LstmState::zeros(8);
        let x = Matrix::row_vector(&[1.0, -1.0, 0.5, 0.2]);
        let next = cell.forward(&x, &state).unwrap();
        assert_ne!(next.h, state.h);
        assert_eq!(next.h.cols(), 8);
        assert_eq!(next.c.cols(), 8);
    }

    #[test]
    fn lstm_rejects_wrong_input_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(&mut rng, 4, 8, 0.5);
        let state = LstmState::zeros(8);
        let x = Matrix::row_vector(&[1.0, 2.0]);
        assert!(cell.forward(&x, &state).is_err());
    }

    #[test]
    fn controller_samples_valid_choices() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctrl = SequenceController::new(&mut rng, &[3, 5, 2], 16).unwrap();
        let decisions = ctrl.sample_episode(&mut rng).unwrap();
        assert_eq!(decisions.len(), 3);
        assert!(decisions[0].choice < 3);
        assert!(decisions[1].choice < 5);
        assert!(decisions[2].choice < 2);
        for d in &decisions {
            assert!(d.log_prob <= 0.0);
            assert!(d.entropy >= 0.0);
        }
    }

    #[test]
    fn controller_rejects_empty_or_zero_choice_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(SequenceController::new(&mut rng, &[], 8).is_err());
        assert!(SequenceController::new(&mut rng, &[3, 0], 8).is_err());
    }

    #[test]
    fn greedy_decode_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let ctrl = SequenceController::new(&mut rng, &[4, 4], 16).unwrap();
        assert_eq!(ctrl.greedy_decode().unwrap(), ctrl.greedy_decode().unwrap());
    }

    #[test]
    fn reinforce_requires_an_episode() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctrl = SequenceController::new(&mut rng, &[2], 8).unwrap();
        assert!(ctrl.reinforce_backward(1.0, 0.0).is_err());
    }

    /// REINFORCE on a bandit: choice 0 of the single decision step gets reward 1,
    /// choice 1 gets reward 0.  The controller should learn to prefer choice 0.
    #[test]
    fn reinforce_learns_a_simple_bandit() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ctrl = SequenceController::new(&mut rng, &[2], 16).unwrap();
        let mut opt = Adam::new(0.05);
        let mut baseline = 0.5f32;
        for _ in 0..200 {
            let decisions = ctrl.sample_episode(&mut rng).unwrap();
            let reward = if decisions[0].choice == 0 { 1.0 } else { 0.0 };
            baseline = 0.9 * baseline + 0.1 * reward;
            ctrl.reinforce_backward(reward - baseline, 0.001).unwrap();
            ctrl.apply_gradients(&mut opt);
        }
        let mut zero_count = 0;
        for _ in 0..50 {
            let d = ctrl.sample_episode(&mut rng).unwrap();
            if d[0].choice == 0 {
                zero_count += 1;
            }
        }
        assert!(zero_count > 35, "controller picked 0 only {zero_count}/50 times");
    }
}
