//! The multi-task network of Section IV-A: shared trunk layers that abstract the key,
//! followed by one private head per value column.
//!
//! A table `R(K, V1, ..., Vm)` becomes one model with `m` output heads.  The trunk is
//! shared across all heads (this is where the compression comes from — common key
//! structure is stored once) while the heads specialize for each output attribute.
//! MHAS (in `dm-core`) searches the number and width of both trunk and head layers;
//! this module only cares about instantiating and training a concrete choice.

use crate::kernel;
use crate::layer::{Activation, Dense};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optimizer::Optimizer;
use crate::tensor::Matrix;
use dm_exec::ThreadPool;
use rand::Rng;
use std::sync::Mutex;

/// Batches below this many rows run [`MultiTaskModel::forward_batch_flat`]
/// serially even on a parallel pool: per-task scheduling overhead beats the
/// matmul win for small batches.
pub const PARALLEL_ROW_CROSSOVER: usize = 256;

/// Upper bound on rows per forward chunk, parallel *or* serial.  A 25 k-row
/// batch through a 100-wide trunk materializes ~10 MB of activations per layer —
/// far out of cache; bounding chunks keeps each pass's activations resident, so
/// large batches stop paying per-key latency that small batches don't.
///
/// Retuned against the int8 kernels with the `lookup_throughput` bench's
/// chunk-sweep section (trained DM-Z network, 25 k-row batch, best-of-7
/// serial ns/row): 256 → 845, 512 → 858, 1024 → 868, 2048 → 904, 4096 → 909,
/// 8192 → 935.  Smaller chunks win now that each chunk also carries the
/// shared head [`crate::kernel::QuantizedRows`]; 256 keeps the trunk output
/// plus its quantized pairs L2-resident and matches
/// [`PARALLEL_ROW_CROSSOVER`], the floor of the parallel chunk clamp.
/// Rerun the sweep when the kernels change.
pub const CACHE_CHUNK_ROWS: usize = 256;

/// Specification of one private head: hidden widths plus the number of output classes
/// (the cardinality of the target column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskHeadSpec {
    /// Hidden layer widths private to this task (possibly empty).
    pub hidden: Vec<usize>,
    /// Number of distinct values of the target column.
    pub classes: usize,
}

impl TaskHeadSpec {
    /// A head with no private hidden layers.
    pub fn direct(classes: usize) -> Self {
        TaskHeadSpec {
            hidden: Vec::new(),
            classes,
        }
    }

    /// A head with the given private hidden widths.
    pub fn with_hidden(hidden: Vec<usize>, classes: usize) -> Self {
        TaskHeadSpec { hidden, classes }
    }
}

/// Specification of the full multi-task model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiTaskSpec {
    /// Number of input features (key encoding width).
    pub input_dim: usize,
    /// Shared trunk hidden widths (possibly empty — heads then read the input directly).
    pub shared_hidden: Vec<usize>,
    /// One head per value column.
    pub heads: Vec<TaskHeadSpec>,
}

impl MultiTaskSpec {
    /// Total number of trainable parameters this spec instantiates.
    pub fn parameter_count(&self) -> usize {
        let mut count = 0usize;
        let mut prev = self.input_dim;
        for &w in &self.shared_hidden {
            count += prev * w + w;
            prev = w;
        }
        let trunk_out = prev;
        for head in &self.heads {
            let mut prev = trunk_out;
            for &w in &head.hidden {
                count += prev * w + w;
                prev = w;
            }
            count += prev * head.classes + head.classes;
        }
        count
    }

    /// Serialized size in bytes if stored as f32 parameters plus shape metadata.
    /// This is the `size(M)` term of the paper's Eq. 1.
    pub fn size_bytes(&self) -> usize {
        // 4 bytes per parameter + a small per-layer header estimate (16 bytes).
        let layers = self.shared_hidden.len()
            + 1
            + self
                .heads
                .iter()
                .map(|h| h.hidden.len() + 1)
                .sum::<usize>();
        self.parameter_count() * 4 + layers * 16
    }

    fn validate(&self) -> crate::Result<()> {
        if self.input_dim == 0 {
            return Err(crate::NnError::InvalidConfig(
                "multi-task input dimension must be positive".into(),
            ));
        }
        if self.heads.is_empty() {
            return Err(crate::NnError::InvalidConfig(
                "multi-task model needs at least one head".into(),
            ));
        }
        if self.shared_hidden.contains(&0) {
            return Err(crate::NnError::InvalidConfig(
                "shared layer width must be positive".into(),
            ));
        }
        for (i, head) in self.heads.iter().enumerate() {
            if head.classes == 0 {
                return Err(crate::NnError::InvalidConfig(format!(
                    "head {i} has zero output classes"
                )));
            }
            if head.hidden.contains(&0) {
                return Err(crate::NnError::InvalidConfig(format!(
                    "head {i} has a zero-width hidden layer"
                )));
            }
        }
        Ok(())
    }
}

/// The instantiated multi-task model.
#[derive(Debug, Clone)]
pub struct MultiTaskModel {
    spec: MultiTaskSpec,
    trunk: Vec<Dense>,
    heads: Vec<Vec<Dense>>,
}

impl MultiTaskModel {
    /// Instantiates a model with Xavier-initialized weights.
    pub fn new<R: Rng>(rng: &mut R, spec: &MultiTaskSpec) -> crate::Result<Self> {
        spec.validate()?;
        let mut trunk = Vec::with_capacity(spec.shared_hidden.len());
        let mut prev = spec.input_dim;
        for &w in &spec.shared_hidden {
            trunk.push(Dense::new(rng, prev, w, Activation::Relu));
            prev = w;
        }
        let trunk_out = prev;
        let mut heads = Vec::with_capacity(spec.heads.len());
        for head_spec in &spec.heads {
            let mut head = Vec::with_capacity(head_spec.hidden.len() + 1);
            let mut prev = trunk_out;
            for &w in &head_spec.hidden {
                head.push(Dense::new(rng, prev, w, Activation::Relu));
                prev = w;
            }
            head.push(Dense::new(rng, prev, head_spec.classes, Activation::Linear));
            heads.push(head);
        }
        Ok(MultiTaskModel {
            spec: spec.clone(),
            trunk,
            heads,
        })
    }

    /// Rebuilds a model from explicit layer stacks (used by deserialization).
    pub fn from_layers(
        spec: MultiTaskSpec,
        trunk: Vec<Dense>,
        heads: Vec<Vec<Dense>>,
    ) -> crate::Result<Self> {
        spec.validate()?;
        if heads.len() != spec.heads.len() {
            return Err(crate::NnError::InvalidConfig(format!(
                "spec declares {} heads but {} were provided",
                spec.heads.len(),
                heads.len()
            )));
        }
        Ok(MultiTaskModel { spec, trunk, heads })
    }

    /// The specification this model was built from.
    pub fn spec(&self) -> &MultiTaskSpec {
        &self.spec
    }

    /// The shared trunk layers.
    pub fn trunk(&self) -> &[Dense] {
        &self.trunk
    }

    /// The private head layer stacks, one per task.
    pub fn heads(&self) -> &[Vec<Dense>] {
        &self.heads
    }

    /// Number of tasks (value columns).
    pub fn num_tasks(&self) -> usize {
        self.heads.len()
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&self) -> usize {
        self.trunk.iter().map(Dense::parameter_count).sum::<usize>()
            + self
                .heads
                .iter()
                .flat_map(|h| h.iter())
                .map(Dense::parameter_count)
                .sum::<usize>()
    }

    /// Serialized model size in bytes; the `size(M)` term in Eq. 1.  Accounts
    /// for quantization: int8 layers serialize one byte per weight plus f32
    /// scales and biases, f32 layers four bytes per parameter — so quantizing
    /// a store genuinely shrinks its reported (and snapshot) footprint.
    pub fn size_bytes(&self) -> usize {
        let layer_bytes = |layer: &Dense| {
            let (rows, cols) = (layer.in_dim(), layer.out_dim());
            if layer.is_quantized() {
                // kind/activation/dims header + per-column scales + int8
                // weights + f32 bias.
                16 + cols * 4 + rows * cols + cols * 4
            } else {
                16 + (rows * cols + cols) * 4
            }
        };
        self.trunk.iter().map(layer_bytes).sum::<usize>()
            + self
                .heads
                .iter()
                .flat_map(|h| h.iter())
                .map(layer_bytes)
                .sum::<usize>()
    }

    /// Batched inference: returns one logit matrix per task (`batch × classes`).
    pub fn forward(&self, x: &Matrix) -> crate::Result<Vec<Matrix>> {
        let mut h = x.clone();
        for layer in &self.trunk {
            h = layer.forward(&h)?;
        }
        let mut outputs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let mut t = h.clone();
            for layer in head {
                t = layer.forward(&t)?;
            }
            outputs.push(t);
        }
        Ok(outputs)
    }

    /// Batched inference returning per-task argmax class predictions
    /// (`predictions[task][row]`).
    pub fn predict_classes(&self, x: &Matrix) -> crate::Result<Vec<Vec<usize>>> {
        let logits = self.forward(x)?;
        Ok(logits
            .iter()
            .map(|m| (0..m.rows()).map(|r| m.argmax_row(r)).collect())
            .collect())
    }

    /// Vectorized inference for the lookup path: one trunk matrix-multiply sequence
    /// over the *whole* batch followed by one per head — never a per-key pass —
    /// returning row-major class predictions (`out[row][task]`), the layout query
    /// pipelines consume.
    ///
    /// This is the entry point `dm-core`'s `QueryPipeline` drives; keeping it a
    /// single dense pass per batch is what amortizes inference across a lookup batch
    /// (Section IV-B2 of the paper).
    pub fn forward_batch(&self, x: &Matrix) -> crate::Result<Vec<Vec<usize>>> {
        let per_task = self.predict_classes(x)?;
        let rows = x.rows();
        let mut out = vec![vec![0usize; per_task.len()]; rows];
        for (task, preds) in per_task.iter().enumerate() {
            for (row, &class) in preds.iter().enumerate() {
                out[row][task] = class;
            }
        }
        Ok(out)
    }

    /// Like [`forward_batch`](Self::forward_batch), but appends the predictions to a
    /// caller-owned flat row-major arena (`out[row * tasks + task]`) instead of
    /// allocating one `Vec` per row — the allocation-free layout `dm-core`'s buffer
    ///-reusing lookup path consumes.  Returns the number of tasks (columns per row).
    ///
    /// Runs on the shared [`dm_exec::global`] pool; use
    /// [`forward_batch_flat_on`](Self::forward_batch_flat_on) to pin a pool.
    pub fn forward_batch_flat(&self, x: &Matrix, out: &mut Vec<u32>) -> crate::Result<usize> {
        self.forward_batch_flat_on(dm_exec::global(), x, out)
    }

    /// [`forward_batch_flat`](Self::forward_batch_flat) on an explicit execution
    /// pool.  Batches of at least [`PARALLEL_ROW_CROSSOVER`] rows are split into
    /// row chunks whose trunk + head matrix-multiply sequences run as independent
    /// pool tasks (each chunk writes its disjoint slice of `out`); smaller batches
    /// — and serial pools — take the single-pass path.
    pub fn forward_batch_flat_on(
        &self,
        exec: &ThreadPool,
        x: &Matrix,
        out: &mut Vec<u32>,
    ) -> crate::Result<usize> {
        let tasks = self.heads.len();
        let rows = x.rows();
        out.clear();
        out.resize(rows * tasks, 0);
        if rows < PARALLEL_ROW_CROSSOVER || exec.threads() <= 1 {
            // Serial path, cache-blocked: never materialize more than
            // CACHE_CHUNK_ROWS rows of activations at once.
            self.forward_flat_serial_chunked(x, CACHE_CHUNK_ROWS, out)?;
            return Ok(tasks);
        }
        // Aim for ~2 chunks per thread so the work steals evenly, but never chunks
        // so small the scheduling overhead dominates nor so large the activations
        // fall out of cache.
        let chunk_rows = rows
            .div_ceil(exec.threads() * 2)
            .clamp(PARALLEL_ROW_CROSSOVER / 2, CACHE_CHUNK_ROWS);
        let first_error: Mutex<Option<crate::NnError>> = Mutex::new(None);
        exec.scope(|s| {
            for (ci, out_chunk) in out.chunks_mut(chunk_rows * tasks).enumerate() {
                let first_error = &first_error;
                s.spawn(move || {
                    let start = ci * chunk_rows;
                    let count = out_chunk.len() / tasks;
                    if let Err(err) = self.forward_rows_flat(x, start, count, out_chunk) {
                        let mut slot = first_error.lock().unwrap_or_else(|e| e.into_inner());
                        if slot.is_none() {
                            *slot = Some(err);
                        }
                    }
                });
            }
        });
        if let Some(err) = first_error.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(err);
        }
        Ok(tasks)
    }

    /// Serial cache-blocked inference with an explicit chunk size: rows are
    /// processed `chunk_rows` at a time into the caller's pre-sized flat
    /// prediction buffer (`rows * num_tasks` entries).  This is the body of
    /// the serial branch of [`forward_batch_flat_on`](Self::forward_batch_flat_on),
    /// exposed so the bench can sweep chunk sizes against the packed kernels
    /// when retuning [`CACHE_CHUNK_ROWS`].  Chunking never changes any row's
    /// prediction (rows are independent in every kernel).
    pub fn forward_flat_serial_chunked(
        &self,
        x: &Matrix,
        chunk_rows: usize,
        out: &mut [u32],
    ) -> crate::Result<()> {
        let tasks = self.heads.len();
        let rows = x.rows();
        debug_assert_eq!(out.len(), rows * tasks);
        if rows <= chunk_rows {
            return self.forward_rows_flat(x, 0, rows, out);
        }
        for (ci, out_chunk) in out.chunks_mut(chunk_rows.max(1) * tasks).enumerate() {
            let start = ci * chunk_rows;
            self.forward_rows_flat(x, start, out_chunk.len() / tasks, out_chunk)?;
        }
        Ok(())
    }

    /// Switches every dense layer onto the int8 quantized inference path (see
    /// [`Dense::quantize_int8`]).  Quantization replaces each layer's f32
    /// weights with their dequantized image, so serialization, retraining and
    /// backward passes all see exactly the arithmetic inference executes.
    pub fn quantize_int8(&mut self) -> crate::Result<()> {
        for layer in &mut self.trunk {
            layer.quantize_int8()?;
        }
        for head in &mut self.heads {
            for layer in head.iter_mut() {
                layer.quantize_int8()?;
            }
        }
        Ok(())
    }

    /// Whether any layer serves inference through int8 quantized panels.
    pub fn is_quantized(&self) -> bool {
        self.trunk.iter().any(Dense::is_quantized)
            || self.heads.iter().flatten().any(Dense::is_quantized)
    }

    /// One serial trunk + heads pass over rows `[start, start + count)` of `x`,
    /// writing row-major argmax predictions into `out` (`count * num_tasks` wide).
    /// The row window enters the first layer via `Dense::forward_rows`, so
    /// chunking never copies the input.
    fn forward_rows_flat(
        &self,
        x: &Matrix,
        start: usize,
        count: usize,
        out: &mut [u32],
    ) -> crate::Result<()> {
        let tasks = self.heads.len();
        debug_assert_eq!(out.len(), count * tasks);
        let trunk_out = match self.trunk.split_first() {
            Some((first, rest)) => {
                let mut h = first.forward_rows(x, start, count)?;
                for layer in rest {
                    h = layer.forward(&h)?;
                }
                Some(h)
            }
            None => None,
        };
        // Every head reads the same trunk output; when the heads are
        // int8-quantized, quantize that window once and share the packed
        // pairs across them.  The shared pairs come from the same recipe the
        // per-head path runs, so predictions are bit-identical either way —
        // this only removes the per-head re-quantization cost.
        let shared_quant = match &trunk_out {
            Some(h)
                if !self.heads.is_empty()
                    && self.heads.iter().all(|head| head[0].is_quantized()) =>
            {
                Some(kernel::QuantizedRows::quantize(
                    h,
                    0,
                    h.rows(),
                    h.cols().div_ceil(2),
                )?)
            }
            _ => None,
        };
        for (task, head) in self.heads.iter().enumerate() {
            let (first, rest) = head.split_first().expect("heads have an output layer");
            // With no trunk, the head reads the input window directly.
            let mut t = match (&trunk_out, &shared_quant) {
                (Some(_), Some(q)) => first
                    .forward_prequantized(q)
                    .expect("all head entry layers are quantized")?,
                (Some(h), None) => first.forward(h)?,
                (None, _) => first.forward_rows(x, start, count)?,
            };
            for layer in rest {
                t = layer.forward(&t)?;
            }
            for row in 0..t.rows() {
                out[row * tasks + task] = t.argmax_row(row) as u32;
            }
        }
        Ok(())
    }

    /// One supervised training step on a batch.
    ///
    /// `targets[task][row]` is the class index of `row` for `task`.  The per-task
    /// cross-entropy losses are summed (all tasks share the trunk gradient).  Returns
    /// the mean loss across tasks.
    pub fn train_batch<O: Optimizer>(
        &mut self,
        x: &Matrix,
        targets: &[Vec<usize>],
        optimizer: &mut O,
    ) -> crate::Result<f32> {
        if targets.len() != self.heads.len() {
            return Err(crate::NnError::InvalidConfig(format!(
                "expected targets for {} tasks, got {}",
                self.heads.len(),
                targets.len()
            )));
        }
        // Trunk forward (cached).  The first layer reads `x` directly — the
        // entry activation is never cloned per step (layers keep their own
        // reusable caches via `forward_train`).
        let mut trunk_iter = self.trunk.iter_mut();
        let mut h = match trunk_iter.next() {
            Some(first) => first.forward_train(x)?,
            None => x.clone(),
        };
        for layer in trunk_iter {
            h = layer.forward_train(&h)?;
        }
        // Heads forward + backward; accumulate gradient at the trunk output.
        let mut total_loss = 0.0f32;
        let mut trunk_grad = Matrix::zeros(h.rows(), h.cols());
        for (head, head_targets) in self.heads.iter_mut().zip(targets.iter()) {
            let mut head_iter = head.iter_mut();
            let mut t = match head_iter.next() {
                Some(first) => first.forward_train(&h)?,
                None => h.clone(),
            };
            for layer in head_iter {
                t = layer.forward_train(&t)?;
            }
            let (loss, mut grad) = softmax_cross_entropy(&t, head_targets)?;
            total_loss += loss;
            for layer in head.iter_mut().rev() {
                grad = layer.backward(&grad)?;
            }
            trunk_grad.add_scaled(&grad, 1.0)?;
        }
        // Trunk backward.
        let mut grad = trunk_grad;
        for layer in self.trunk.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        // Optimizer update over all parameters (stable order: trunk then heads).
        let mut pairs = Vec::new();
        for layer in &mut self.trunk {
            pairs.extend(layer.parameters_and_grads());
        }
        for head in &mut self.heads {
            for layer in head.iter_mut() {
                pairs.extend(layer.parameters_and_grads());
            }
        }
        optimizer.step(&mut pairs);
        Ok(total_loss / self.heads.len() as f32)
    }

    /// Per-task accuracy on a labelled batch.
    pub fn evaluate(&self, x: &Matrix, targets: &[Vec<usize>]) -> crate::Result<Vec<f32>> {
        if targets.len() != self.heads.len() {
            return Err(crate::NnError::InvalidConfig(format!(
                "expected targets for {} tasks, got {}",
                self.heads.len(),
                targets.len()
            )));
        }
        let logits = self.forward(x)?;
        Ok(logits
            .iter()
            .zip(targets.iter())
            .map(|(l, t)| accuracy(l, t))
            .collect())
    }

    /// Fraction of rows for which *every* task is predicted correctly — the paper's
    /// notion of a tuple being "memorized by the model" (a tuple goes to the auxiliary
    /// table unless all of its attributes are inferred correctly).
    pub fn tuple_accuracy(&self, x: &Matrix, targets: &[Vec<usize>]) -> crate::Result<f32> {
        let preds = self.predict_classes(x)?;
        let rows = x.rows();
        if rows == 0 {
            return Ok(1.0);
        }
        let mut correct = 0usize;
        for r in 0..rows {
            let all_ok = preds
                .iter()
                .zip(targets.iter())
                .all(|(p, t)| p[r] == t[r]);
            if all_ok {
                correct += 1;
            }
        }
        Ok(correct as f32 / rows as f32)
    }

    /// Drops cached activations on all layers.
    pub fn clear_cache(&mut self) {
        for layer in &mut self.trunk {
            layer.clear_cache();
        }
        for head in &mut self.heads {
            for layer in head.iter_mut() {
                layer.clear_cache();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_spec() -> MultiTaskSpec {
        MultiTaskSpec {
            input_dim: 6,
            shared_hidden: vec![32],
            heads: vec![
                TaskHeadSpec::with_hidden(vec![16], 4),
                TaskHeadSpec::direct(3),
            ],
        }
    }

    #[test]
    fn spec_parameter_count_matches_model() {
        let spec = toy_spec();
        let mut rng = StdRng::seed_from_u64(1);
        let model = MultiTaskModel::new(&mut rng, &spec).unwrap();
        assert_eq!(spec.parameter_count(), model.parameter_count());
        assert_eq!(model.num_tasks(), 2);
        assert!(model.size_bytes() > model.parameter_count() * 4);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = toy_spec();
        s.input_dim = 0;
        assert!(MultiTaskModel::new(&mut rng, &s).is_err());
        let mut s = toy_spec();
        s.heads.clear();
        assert!(MultiTaskModel::new(&mut rng, &s).is_err());
        let mut s = toy_spec();
        s.heads[0].classes = 0;
        assert!(MultiTaskModel::new(&mut rng, &s).is_err());
        let mut s = toy_spec();
        s.shared_hidden = vec![0];
        assert!(MultiTaskModel::new(&mut rng, &s).is_err());
    }

    #[test]
    fn forward_produces_one_logit_matrix_per_task() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        let x = Matrix::zeros(7, 6);
        let out = model.forward(&x).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].rows(), 7);
        assert_eq!(out[0].cols(), 4);
        assert_eq!(out[1].cols(), 3);
    }

    #[test]
    fn forward_batch_is_row_major_and_matches_batches_of_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        let mut x = Matrix::zeros(9, 6);
        for r in 0..9 {
            for c in 0..6 {
                x.set(r, c, ((r * 6 + c) % 3) as f32 - 1.0);
            }
        }
        let batched = model.forward_batch(&x).unwrap();
        assert_eq!(batched.len(), 9);
        assert!(batched.iter().all(|row| row.len() == 2));
        // One vectorized pass over N rows must agree exactly with N batches of one.
        for (r, batched_row) in batched.iter().enumerate() {
            let mut single = Matrix::zeros(1, 6);
            for c in 0..6 {
                single.set(0, c, x.get(r, c));
            }
            assert_eq!(&model.forward_batch(&single).unwrap()[0], batched_row, "row {r}");
        }
        // And with the task-major view from predict_classes.
        let per_task = model.predict_classes(&x).unwrap();
        for (task, preds) in per_task.iter().enumerate() {
            for (row, &class) in preds.iter().enumerate() {
                assert_eq!(batched[row][task], class);
            }
        }
    }

    #[test]
    fn train_batch_rejects_wrong_task_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        let x = Matrix::zeros(2, 6);
        let mut opt = Adam::new(0.01);
        assert!(model.train_batch(&x, &[vec![0, 0]], &mut opt).is_err());
    }

    /// The multi-task model must memorize a small correlated mapping for both tasks —
    /// this mirrors the "Order_Type / Order_Status" example of Figure 1.
    #[test]
    fn multitask_model_memorizes_two_columns() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 32usize;
        let mut x = Matrix::zeros(n, 6);
        let mut t0 = Vec::new();
        let mut t1 = Vec::new();
        for k in 0..n {
            for b in 0..6 {
                x.set(k, b, ((k >> b) & 1) as f32);
            }
            t0.push(k % 4); // strongly key-correlated column
            t1.push((k / 8) % 3); // coarser correlated column
        }
        let targets = vec![t0.clone(), t1.clone()];
        let spec = MultiTaskSpec {
            input_dim: 6,
            shared_hidden: vec![48, 48],
            heads: vec![TaskHeadSpec::with_hidden(vec![24], 4), TaskHeadSpec::with_hidden(vec![24], 3)],
        };
        let mut model = MultiTaskModel::new(&mut rng, &spec).unwrap();
        let mut opt = Adam::new(0.01);
        for _ in 0..400 {
            model.train_batch(&x, &targets, &mut opt).unwrap();
        }
        let accs = model.evaluate(&x, &targets).unwrap();
        assert!(accs.iter().all(|&a| a > 0.9), "accuracies {accs:?}");
        let tuple_acc = model.tuple_accuracy(&x, &targets).unwrap();
        assert!(tuple_acc > 0.85, "tuple accuracy {tuple_acc}");
    }

    /// The chunked parallel inference path must agree bit-for-bit with the serial
    /// single-pass path, both above and below the crossover threshold.
    #[test]
    fn parallel_flat_inference_matches_serial() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        let parallel = dm_exec::ThreadPool::new(4);
        let serial = dm_exec::ThreadPool::new(1);
        for rows in [3usize, PARALLEL_ROW_CROSSOVER - 1, PARALLEL_ROW_CROSSOVER, 1_000] {
            let mut x = Matrix::zeros(rows, 6);
            for r in 0..rows {
                for c in 0..6 {
                    x.set(r, c, ((r * 7 + c * 3) % 5) as f32 - 2.0);
                }
            }
            let mut expected = Vec::new();
            let tasks_serial = model
                .forward_batch_flat_on(&serial, &x, &mut expected)
                .unwrap();
            let mut got = Vec::new();
            let tasks_parallel = model
                .forward_batch_flat_on(&parallel, &x, &mut got)
                .unwrap();
            assert_eq!(tasks_serial, tasks_parallel);
            assert_eq!(expected, got, "rows={rows}");
            assert_eq!(got.len(), rows * 2);
        }
        // The big batch really did fan out.
        assert!(parallel.stats().tasks_executed >= 2);
    }

    /// The scalar and vector kernels must produce bit-identical predictions at
    /// the whole-model level — the property that keeps aux-table memorization
    /// lossless no matter which kernel a process selects.
    #[test]
    fn model_predictions_are_bit_identical_across_kernels() {
        use crate::kernel::{self, Kernel};
        let mut rng = StdRng::seed_from_u64(21);
        let model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        let rows = 700;
        let mut x = Matrix::zeros(rows, 6);
        for r in 0..rows {
            for c in 0..6 {
                x.set(r, c, ((r * 11 + c * 5) % 7) as f32 / 3.0 - 1.0);
            }
        }
        let serial = dm_exec::ThreadPool::new(1);
        let run = |kernel: Kernel| {
            kernel::with_forced(kernel, || {
                let logits = model.forward(&x).unwrap();
                let mut flat = Vec::new();
                model.forward_batch_flat_on(&serial, &x, &mut flat).unwrap();
                let bits: Vec<Vec<u32>> = logits
                    .iter()
                    .map(|m| m.as_slice().iter().map(|v| v.to_bits()).collect())
                    .collect();
                (bits, flat)
            })
        };
        let (scalar_logits, scalar_classes) = run(Kernel::Scalar);
        let (vector_logits, vector_classes) = run(Kernel::Vector);
        assert_eq!(scalar_logits, vector_logits, "logit bits must match exactly");
        assert_eq!(scalar_classes, vector_classes);
    }

    /// A quantized model must predict bit-identically across kernel
    /// selection, thread counts and chunk sizes — the invariant that lets a
    /// quantized snapshot serve losslessly anywhere.
    #[test]
    fn quantized_model_predictions_are_bit_identical_across_kernels_and_chunks() {
        use crate::kernel::{self, Kernel};
        let mut rng = StdRng::seed_from_u64(27);
        let mut model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        model.quantize_int8().unwrap();
        assert!(model.is_quantized());
        let rows = 700;
        let mut x = Matrix::zeros(rows, 6);
        for r in 0..rows {
            for c in 0..6 {
                x.set(r, c, ((r * 11 + c * 5) % 7) as f32 / 3.0 - 1.0);
            }
        }
        let serial = dm_exec::ThreadPool::new(1);
        let parallel = dm_exec::ThreadPool::new(4);
        let run = |kernel: Kernel| {
            kernel::with_forced(kernel, || {
                let mut flat = Vec::new();
                model.forward_batch_flat_on(&serial, &x, &mut flat).unwrap();
                flat
            })
        };
        let scalar = run(Kernel::Scalar);
        let vector = run(Kernel::Vector);
        assert_eq!(scalar, vector);
        // Chunk size must not change any prediction...
        for chunk in [1usize, 7, 64, 2048] {
            let mut chunked = vec![0u32; rows * 2];
            model.forward_flat_serial_chunked(&x, chunk, &mut chunked).unwrap();
            assert_eq!(scalar, chunked, "chunk={chunk}");
        }
        // ...and neither must the thread count.
        let mut threaded = Vec::new();
        model.forward_batch_flat_on(&parallel, &x, &mut threaded).unwrap();
        assert_eq!(scalar, threaded);
    }

    #[test]
    fn tuple_accuracy_on_empty_batch_is_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = MultiTaskModel::new(&mut rng, &toy_spec()).unwrap();
        let x = Matrix::zeros(0, 6);
        let acc = model.tuple_accuracy(&x, &[vec![], vec![]]).unwrap();
        assert_eq!(acc, 1.0);
    }
}
