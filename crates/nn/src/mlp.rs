//! A plain sequential multi-layer perceptron.
//!
//! The MLP is the building block the single-task pieces of the workspace use directly
//! (e.g. the DeepSqueeze-like baseline's autoencoder); the DeepMapping model itself is
//! the shared-trunk/private-head [`crate::multitask::MultiTaskModel`].

use crate::layer::{Activation, Dense};
use crate::optimizer::Optimizer;
use crate::tensor::Matrix;
use rand::Rng;

/// Specification of an MLP: input width plus a list of `(width, activation)` layers.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpSpec {
    /// Number of input features.
    pub input_dim: usize,
    /// Hidden and output layers in order: `(output width, activation)`.
    pub layers: Vec<(usize, Activation)>,
}

impl MlpSpec {
    /// A spec with ReLU hidden layers of the given sizes and a linear output layer.
    pub fn relu_stack(input_dim: usize, hidden: &[usize], output_dim: usize) -> Self {
        let mut layers: Vec<(usize, Activation)> =
            hidden.iter().map(|&h| (h, Activation::Relu)).collect();
        layers.push((output_dim, Activation::Linear));
        MlpSpec { input_dim, layers }
    }

    /// Total number of trainable parameters this spec would instantiate.
    pub fn parameter_count(&self) -> usize {
        let mut count = 0usize;
        let mut prev = self.input_dim;
        for &(width, _) in &self.layers {
            count += prev * width + width;
            prev = width;
        }
        count
    }
}

/// A sequential stack of dense layers.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Instantiates an MLP from a spec with Xavier-initialized weights.
    pub fn new<R: Rng>(rng: &mut R, spec: &MlpSpec) -> crate::Result<Self> {
        if spec.input_dim == 0 {
            return Err(crate::NnError::InvalidConfig(
                "MLP input dimension must be positive".into(),
            ));
        }
        if spec.layers.is_empty() {
            return Err(crate::NnError::InvalidConfig(
                "MLP must have at least one layer".into(),
            ));
        }
        let mut layers = Vec::with_capacity(spec.layers.len());
        let mut prev = spec.input_dim;
        for &(width, act) in &spec.layers {
            if width == 0 {
                return Err(crate::NnError::InvalidConfig(
                    "MLP layer width must be positive".into(),
                ));
            }
            layers.push(Dense::new(rng, prev, width, act));
            prev = width;
        }
        Ok(Mlp { layers })
    }

    /// Builds an MLP from pre-existing layers (used by deserialization).
    pub fn from_layers(layers: Vec<Dense>) -> crate::Result<Self> {
        if layers.is_empty() {
            return Err(crate::NnError::InvalidConfig(
                "MLP must have at least one layer".into(),
            ));
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(crate::NnError::ShapeMismatch {
                    context: format!(
                        "MLP layer chain broken: {} -> {}",
                        pair[0].out_dim(),
                        pair[1].in_dim()
                    ),
                });
            }
        }
        Ok(Mlp { layers })
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Inference forward pass.
    pub fn forward(&self, x: &Matrix) -> crate::Result<Matrix> {
        let mut h = self.layers[0].forward(x)?;
        for layer in &self.layers[1..] {
            h = layer.forward(&h)?;
        }
        Ok(h)
    }

    /// Training forward pass (caches intermediate activations).
    pub fn forward_train(&mut self, x: &Matrix) -> crate::Result<Matrix> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward_train(&h)?;
        }
        Ok(h)
    }

    /// Backward pass from the gradient of the loss w.r.t. the output; returns the
    /// gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Matrix) -> crate::Result<Matrix> {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }

    /// Applies one optimizer step to every layer's parameters.
    pub fn apply_gradients<O: Optimizer>(&mut self, optimizer: &mut O) {
        let mut pairs = Vec::new();
        for layer in &mut self.layers {
            pairs.extend(layer.parameters_and_grads());
        }
        optimizer.step(&mut pairs);
    }

    /// One supervised step on a classification batch: forward, softmax cross-entropy,
    /// backward, optimizer update.  Returns the batch loss.
    pub fn train_classification_batch<O: Optimizer>(
        &mut self,
        x: &Matrix,
        targets: &[usize],
        optimizer: &mut O,
    ) -> crate::Result<f32> {
        let logits = self.forward_train(x)?;
        let (loss, grad) = crate::loss::softmax_cross_entropy(&logits, targets)?;
        self.backward(&grad)?;
        self.apply_gradients(optimizer);
        Ok(loss)
    }

    /// One supervised step on a regression batch with mean-squared-error loss.
    /// Used by the autoencoder baseline.  Returns the batch loss.
    pub fn train_regression_batch<O: Optimizer>(
        &mut self,
        x: &Matrix,
        target: &Matrix,
        optimizer: &mut O,
    ) -> crate::Result<f32> {
        let output = self.forward_train(x)?;
        if output.rows() != target.rows() || output.cols() != target.cols() {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "regression target is {}x{} but output is {}x{}",
                    target.rows(),
                    target.cols(),
                    output.rows(),
                    output.cols()
                ),
            });
        }
        let n = (output.rows() * output.cols()).max(1) as f32;
        let mut grad = output.clone();
        grad.add_scaled(target, -1.0)?;
        let loss = grad.norm_sq() / n;
        grad.scale(2.0 / n);
        self.backward(&grad)?;
        self.apply_gradients(optimizer);
        Ok(loss)
    }

    /// Drops cached activations on every layer.
    pub fn clear_cache(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spec_parameter_count_matches_instantiated_model() {
        let spec = MlpSpec::relu_stack(8, &[16, 4], 3);
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&mut rng, &spec).unwrap();
        assert_eq!(spec.parameter_count(), mlp.parameter_count());
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 3);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(Mlp::new(&mut rng, &MlpSpec { input_dim: 0, layers: vec![(4, Activation::Relu)] }).is_err());
        assert!(Mlp::new(&mut rng, &MlpSpec { input_dim: 4, layers: vec![] }).is_err());
        assert!(Mlp::new(&mut rng, &MlpSpec { input_dim: 4, layers: vec![(0, Activation::Relu)] }).is_err());
    }

    #[test]
    fn from_layers_rejects_broken_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Dense::new(&mut rng, 4, 8, Activation::Relu);
        let b = Dense::new(&mut rng, 6, 2, Activation::Linear);
        assert!(Mlp::from_layers(vec![a, b]).is_err());
    }

    /// An MLP must be able to memorize a small random mapping — this is the core
    /// capability DeepMapping relies on.
    #[test]
    fn mlp_memorizes_small_classification_task() {
        let mut rng = StdRng::seed_from_u64(9);
        // 16 keys encoded as 4-bit binary, each mapped to one of 3 classes.
        let n = 16usize;
        let mut x = Matrix::zeros(n, 4);
        let mut targets = Vec::with_capacity(n);
        for k in 0..n {
            for b in 0..4 {
                x.set(k, b, ((k >> b) & 1) as f32);
            }
            targets.push(k % 3);
        }
        let spec = MlpSpec::relu_stack(4, &[32, 32], 3);
        let mut mlp = Mlp::new(&mut rng, &spec).unwrap();
        let mut opt = Adam::new(0.01);
        for _ in 0..300 {
            mlp.train_classification_batch(&x, &targets, &mut opt).unwrap();
        }
        let logits = mlp.forward(&x).unwrap();
        let acc = crate::loss::accuracy(&logits, &targets);
        assert!(acc > 0.95, "memorization accuracy was {acc}");
    }

    #[test]
    fn regression_training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = MlpSpec {
            input_dim: 2,
            layers: vec![(8, Activation::Tanh), (2, Activation::Linear)],
        };
        let mut mlp = Mlp::new(&mut rng, &spec).unwrap();
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        let target = x.clone(); // identity reconstruction
        let mut opt = Adam::new(0.05);
        let first = mlp.train_regression_batch(&x, &target, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..200 {
            last = mlp.train_regression_batch(&x, &target, &mut opt).unwrap();
        }
        assert!(last < first * 0.1, "loss went from {first} to {last}");
    }
}
