//! Row-major `f32` matrices and the small set of operations the training and inference
//! paths need.
//!
//! The matrix type is deliberately simple: a `Vec<f32>` plus dimensions.  The hot path
//! of DeepMapping is batched inference — `batch × in_dim` times `in_dim × out_dim`
//! matrix products — so `matmul` is written with a k-inner loop over rows of the
//! right-hand side, which vectorizes well and is cache friendly for the row-major
//! layout without needing an explicit transpose.

use crate::NnError;

/// Row count above which [`Matrix::matmul_rows`] packs the right-hand side
/// into lane panels and runs the SIMD kernel instead of the scalar unroll.
/// Below this, the O(k·n) pack costs more than the kernel saves (measured on
/// the LSTM controller shapes: 1-row steps want the unroll, ≥16-row batched
/// projections want panels).
const PACKED_MATMUL_MIN_ROWS: usize = 16;

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "from_vec: buffer of {} elements cannot form a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a 1 × n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Overwrites this matrix with the contents (and shape) of `src`, reusing the
    /// existing allocation whenever its capacity suffices.  Training caches one
    /// activation matrix per layer per step; assigning through `copy_from` instead
    /// of `clone` keeps those caches allocation-free once shapes stabilize — the
    /// buffer only ever grows to the largest batch seen.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the element at (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self (m×k) · rhs (k×n) -> m×n`.
    ///
    /// The k dimension is processed four rows of `rhs` at a time, so every pass
    /// over the output row does four fused multiply-adds per element instead of
    /// one — output-row memory traffic, not multiplies, is what bounds the naive
    /// k-inner loop.  Inference is matmul-bound (ROADMAP "known slow paths"), so
    /// this directly moves batch-lookup throughput.
    pub fn matmul(&self, rhs: &Matrix) -> crate::Result<Matrix> {
        self.matmul_rows(0, self.rows, rhs)
    }

    /// `self[start .. start + count] (count×k) · rhs (k×n) -> count×n`: the
    /// product of a row window of `self` with `rhs`, without materializing the
    /// window.  This is what lets cache-blocked/parallel batch inference chunk
    /// its input for free.  Same kernel as [`matmul`](Self::matmul) (which is the
    /// full-range special case).
    pub fn matmul_rows(&self, start: usize, count: usize, rhs: &Matrix) -> crate::Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: lhs is {}x{}, rhs is {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        if start + count > self.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul_rows: rows [{start}, {}) of a matrix with {} rows",
                    start + count,
                    self.rows
                ),
            });
        }
        // Batched products (LSTM projections, DeepSqueeze encode, training
        // passes over ad-hoc matrices) go through the packed-panel kernel:
        // the one-time pack of `rhs` is O(k·n) and amortizes over the row
        // count, after which every row runs the register-blocked FMA kernel
        // instead of this scalar 4-wide unroll.  Small products keep the
        // unrolled loop — packing would cost more than it saves.
        if count >= PACKED_MATMUL_MIN_ROWS {
            let panels = crate::kernel::PackedPanels::pack(rhs, None)?;
            return crate::kernel::forward_packed(
                self,
                start,
                count,
                &panels,
                crate::layer::Activation::Linear,
            );
        }
        let mut out = Matrix::zeros(count, rhs.cols);
        let n = rhs.cols;
        let k_dim = self.cols;
        for i in 0..count {
            let lhs_row = self.row(start + i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut k = 0;
            while k + 4 <= k_dim {
                let (a0, a1, a2, a3) =
                    (lhs_row[k], lhs_row[k + 1], lhs_row[k + 2], lhs_row[k + 3]);
                // ReLU activations are zero-heavy; skip fully dead k-blocks.
                if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
                    let (r0, rest) = rhs.data[k * n..(k + 4) * n].split_at(n);
                    let (r1, rest) = rest.split_at(n);
                    let (r2, r3) = rest.split_at(n);
                    for ((((o, &b0), &b1), &b2), &b3) in
                        out_row.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3)
                    {
                        *o += a0 * b0 + a1 * b1 + a2 * b2 + a3 * b3;
                    }
                }
                k += 4;
            }
            for (k, &a) in lhs_row.iter().enumerate().skip(k) {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `self (m×k) · rhs^T (n×k) -> m×n`, i.e. multiply by the transpose of `rhs`
    /// without materializing it.  Used in backward passes.
    pub fn matmul_transpose_rhs(&self, rhs: &Matrix) -> crate::Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul_transpose_rhs: lhs is {}x{}, rhs is {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            for j in 0..rhs.rows {
                let rhs_row = rhs.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in lhs_row.iter().zip(rhs_row.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// `self^T (k×m becomes m×k view) · rhs (k×n) -> m×n`, i.e. multiply the transpose
    /// of `self` by `rhs` without materializing the transpose.  Used for weight
    /// gradients (`x^T · dy`).
    ///
    /// Runs on the lane-vectorized FMA kernel ([`crate::kernel::transpose_matmul`]);
    /// the scalar fallback performs the identical element-wise fused
    /// multiply-adds, so results never depend on kernel selection.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> crate::Result<Matrix> {
        crate::kernel::transpose_matmul(self, rhs)
    }

    /// Returns an explicit transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `bias` (a `1 × cols` row vector) to every row in place.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) -> crate::Result<()> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "add_row_broadcast: bias is {}x{}, matrix has {} columns",
                    bias.rows, bias.cols, self.cols
                ),
            });
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &b) in row.iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
        Ok(())
    }

    /// Element-wise `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) -> crate::Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "add_scaled: lhs is {}x{}, rhs is {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Element-wise product in place.
    pub fn mul_elementwise(&mut self, other: &Matrix) -> crate::Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "mul_elementwise: lhs is {}x{}, rhs is {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale(&mut self, factor: f32) {
        for a in self.data.iter_mut() {
            *a *= factor;
        }
    }

    /// Sums over rows, producing a `1 × cols` row vector.  Used for bias gradients.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, &v) in out.data.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Mean of all elements; zero for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element of row `r` (ties resolved to the lowest index).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Extracts a contiguous block of rows `[start, start + count)` as a new matrix.
    pub fn rows_slice(&self, start: usize, count: usize) -> crate::Result<Matrix> {
        if start + count > self.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "rows_slice: requested rows [{start}, {}) of a matrix with {} rows",
                    start + count,
                    self.rows
                ),
            });
        }
        let data = self.data[start * self.cols..(start + count) * self.cols].to_vec();
        Ok(Matrix {
            rows: count,
            cols: self.cols,
            data,
        })
    }

    /// Stacks the given rows (by index) from `self` into a new matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Concatenates two matrices with the same number of rows column-wise.
    pub fn hstack(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "hstack: lhs has {} rows, rhs has {} rows",
                    self.rows, other.rows
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 3, vec![0.0; 5]).is_err());
        assert!(Matrix::from_vec(2, 3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert!(approx_eq(c.get(0, 0), 58.0));
        assert!(approx_eq(c.get(0, 1), 64.0));
        assert!(approx_eq(c.get(1, 0), 139.0));
        assert!(approx_eq(c.get(1, 1), 154.0));
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
    }

    /// `matmul` accumulates four k-terms per pass, so it is only
    /// ulp-equivalent — not bitwise-equal — to the transpose variants' purely
    /// sequential sums; compare with a tolerance.
    fn assert_matrices_close(a: &Matrix, b: &Matrix) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(x, y), "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 4.0, -1.0]).unwrap();
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32 * 0.3 - 1.0).collect()).unwrap();
        // a (2x3) * b^T (3x4) == a * transpose(b)
        let fast = a.matmul_transpose_rhs(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_matrices_close(&fast, &slow);

        let c = Matrix::from_vec(2, 4, (0..8).map(|v| v as f32).collect()).unwrap();
        // a^T (3x2) * c (2x4)
        let fast = a.transpose_matmul(&c).unwrap();
        let slow = a.transpose().matmul(&c).unwrap();
        assert_matrices_close(&fast, &slow);
    }

    /// The unrolled k-blocks and the scalar tail must agree across every k
    /// remainder (k % 4 ∈ {0,1,2,3}) and handle zero-heavy rows.
    #[test]
    fn matmul_handles_all_k_remainders_and_sparse_rows() {
        for k_dim in 1..=9usize {
            let m = 3;
            let n = 5;
            let a = Matrix::from_vec(
                m,
                k_dim,
                (0..m * k_dim)
                    .map(|v| if v % 3 == 0 { 0.0 } else { v as f32 * 0.25 - 1.0 })
                    .collect(),
            )
            .unwrap();
            let b = Matrix::from_vec(
                k_dim,
                n,
                (0..k_dim * n).map(|v| v as f32 * 0.5 - 3.0).collect(),
            )
            .unwrap();
            let got = a.matmul(&b).unwrap();
            // Reference: textbook i-j-k triple loop.
            let mut expected = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..k_dim {
                        acc += a.get(i, k) * b.get(k, j);
                    }
                    expected.set(i, j, acc);
                }
            }
            assert_matrices_close(&got, &expected);
            // The packed-panel kernel must agree on the same k remainders and
            // zero-heavy rows (zero bias + linear activation = plain matmul).
            let panels = crate::kernel::PackedPanels::pack(&b, None).unwrap();
            let packed = crate::kernel::forward_packed(
                &a,
                0,
                m,
                &panels,
                crate::layer::Activation::Linear,
            )
            .unwrap();
            assert_matrices_close(&packed, &expected);
        }
    }

    /// Above `PACKED_MATMUL_MIN_ROWS` the product routes through pack-on-the-
    /// fly panels; it must agree with the textbook triple loop on the same
    /// remainder classes (fused vs unfused accumulation differs only in ulps).
    #[test]
    fn large_matmul_routes_through_panels_and_matches_reference() {
        let m = PACKED_MATMUL_MIN_ROWS + 7;
        for &(k_dim, n) in &[(1usize, 1usize), (7, 5), (9, 16), (13, 21)] {
            let a = Matrix::from_vec(
                m,
                k_dim,
                (0..m * k_dim)
                    .map(|v| if v % 4 == 0 { 0.0 } else { v as f32 * 0.17 - 2.0 })
                    .collect(),
            )
            .unwrap();
            let b = Matrix::from_vec(
                k_dim,
                n,
                (0..k_dim * n).map(|v| v as f32 * 0.31 - 1.5).collect(),
            )
            .unwrap();
            let got = a.matmul(&b).unwrap();
            let mut expected = Matrix::zeros(m, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..k_dim {
                        acc += a.get(i, k) * b.get(k, j);
                    }
                    expected.set(i, j, acc);
                }
            }
            // Relative tolerance: fused vs unfused sums differ in low bits and
            // the magnitudes here reach the hundreds.
            for (&x, &y) in got.as_slice().iter().zip(expected.as_slice()) {
                assert!((x - y).abs() <= 1e-5 * (1.0 + y.abs()), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn add_row_broadcast_adds_bias_to_each_row() {
        let mut m = Matrix::zeros(2, 3);
        let bias = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        m.add_row_broadcast(&bias).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_accumulates_columns() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let s = m.sum_rows();
        assert_eq!(s.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn argmax_row_picks_largest() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.5, 2.0, -1.0, 1.5]).unwrap();
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
    }

    #[test]
    fn gather_rows_and_rows_slice() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        let s = m.rows_slice(1, 2).unwrap();
        assert_eq!(s.row(0), &[3.0, 4.0]);
        assert_eq!(s.row(1), &[5.0, 6.0]);
        assert!(m.rows_slice(2, 2).is_err());
    }

    #[test]
    fn copy_from_reuses_the_allocation_and_tracks_shape() {
        let mut dst = Matrix::zeros(4, 8);
        let src = Matrix::filled(2, 3, 7.0);
        let ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!((dst.rows(), dst.cols()), (2, 3));
        assert!(dst.as_slice().iter().all(|&v| approx_eq(v, 7.0)));
        // Shrinking (or same-size) assignment must not reallocate: the scratch
        // discipline training relies on.
        assert_eq!(dst.as_slice().as_ptr(), ptr);
        // Growing past capacity reallocates once, then stays stable.
        let big = Matrix::filled(8, 8, 1.0);
        dst.copy_from(&big);
        let grown_ptr = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        dst.copy_from(&big);
        assert_eq!(dst.as_slice().as_ptr(), grown_ptr);
        assert_eq!((dst.rows(), dst.cols()), (8, 8));
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = a.hstack(&b).unwrap();
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn scale_and_add_scaled() {
        let mut a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::filled(2, 2, 1.0);
        a.add_scaled(&b, 3.0).unwrap();
        assert!(a.as_slice().iter().all(|&v| approx_eq(v, 5.0)));
        a.scale(0.5);
        assert!(a.as_slice().iter().all(|&v| approx_eq(v, 2.5)));
    }
}
