//! Gradient-descent optimizers.
//!
//! The paper trains sampled model weights with a decaying learning rate (0.001 decayed
//! by 0.999 per iteration) and trains the LSTM controller with Adam at 0.00035
//! (Section V-A6).  Both optimizers are provided; they update a flat list of
//! `(parameter, gradient)` pairs so the same code path serves dense layers, multi-task
//! models and the LSTM controller.

use crate::tensor::Matrix;

/// A stateful optimizer that applies one update step to a set of parameters.
pub trait Optimizer {
    /// Applies one update step.  `params` pairs each mutable parameter matrix with the
    /// gradient computed by the latest backward pass.  Parameters are identified by
    /// their position in the list, so callers must present them in a stable order.
    fn step(&mut self, params: &mut [(&mut Matrix, &Matrix)]);

    /// The current learning rate (after any decay).
    fn learning_rate(&self) -> f32;

    /// Overrides the current learning rate (used by plateau-annealing schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum and multiplicative
/// learning-rate decay per step.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    decay: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.  `decay` multiplies the learning rate after every
    /// step (1.0 disables decay); the paper uses 0.999.
    pub fn new(lr: f32, momentum: f32, decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            decay,
            velocity: Vec::new(),
        }
    }

    /// The paper's model-training configuration: lr 0.001, decay 0.999, no momentum.
    pub fn paper_default() -> Self {
        Sgd::new(0.001, 0.0, 0.999)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [(&mut Matrix, &Matrix)]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|(p, _)| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        for (i, (param, grad)) in params.iter_mut().enumerate() {
            let vel = &mut self.velocity[i];
            if vel.rows() != param.rows() || vel.cols() != param.cols() {
                *vel = Matrix::zeros(param.rows(), param.cols());
            }
            for ((v, p), &g) in vel
                .as_mut_slice()
                .iter_mut()
                .zip(param.as_mut_slice().iter_mut())
                .zip(grad.as_slice())
            {
                *v = self.momentum * *v - self.lr * g;
                *p += *v;
            }
        }
        self.lr *= self.decay;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    first_moment: Vec<Matrix>,
    second_moment: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and standard betas.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// The paper's controller-training configuration (lr = 0.00035).
    pub fn paper_controller() -> Self {
        Adam::new(0.00035)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [(&mut Matrix, &Matrix)]) {
        if self.first_moment.len() != params.len() {
            self.first_moment = params
                .iter()
                .map(|(p, _)| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.second_moment = self.first_moment.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (param, grad)) in params.iter_mut().enumerate() {
            let m = &mut self.first_moment[i];
            let v = &mut self.second_moment[i];
            if m.rows() != param.rows() || m.cols() != param.cols() {
                *m = Matrix::zeros(param.rows(), param.cols());
                *v = Matrix::zeros(param.rows(), param.cols());
            }
            for (((m_i, v_i), p), &g) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice().iter_mut())
                .zip(param.as_mut_slice().iter_mut())
                .zip(grad.as_slice())
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bc1;
                let v_hat = *v_i / bc2;
                *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 with each optimizer and checks convergence.
    fn minimize<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut x = Matrix::row_vector(&[10.0]);
        for _ in 0..steps {
            let grad = Matrix::row_vector(&[2.0 * (x.get(0, 0) - 3.0)]);
            let mut pairs = vec![(&mut x, &grad)];
            opt.step(&mut pairs);
        }
        x.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let result = minimize(Sgd::new(0.1, 0.0, 1.0), 200);
        assert!((result - 3.0).abs() < 1e-3, "got {result}");
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let result = minimize(Sgd::new(0.05, 0.9, 1.0), 300);
        assert!((result - 3.0).abs() < 1e-2, "got {result}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let result = minimize(Adam::new(0.3), 400);
        assert!((result - 3.0).abs() < 1e-2, "got {result}");
    }

    #[test]
    fn sgd_learning_rate_decays() {
        let mut opt = Sgd::new(1.0, 0.0, 0.5);
        let mut x = Matrix::row_vector(&[0.0]);
        let grad = Matrix::row_vector(&[0.0]);
        let mut pairs = vec![(&mut x, &grad)];
        opt.step(&mut pairs);
        assert!((opt.learning_rate() - 0.5).abs() < 1e-6);
        let mut pairs = vec![(&mut x, &grad)];
        opt.step(&mut pairs);
        assert!((opt.learning_rate() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn optimizer_state_resizes_when_parameter_set_changes() {
        let mut opt = Adam::new(0.01);
        let mut a = Matrix::zeros(2, 2);
        let ga = Matrix::filled(2, 2, 1.0);
        let mut pairs = vec![(&mut a, &ga)];
        opt.step(&mut pairs);
        // Now step with a different number/shape of parameters; must not panic.
        let mut b = Matrix::zeros(3, 1);
        let gb = Matrix::filled(3, 1, 1.0);
        let mut c = Matrix::zeros(1, 4);
        let gc = Matrix::filled(1, 4, 1.0);
        let mut pairs = vec![(&mut b, &gb), (&mut c, &gc)];
        opt.step(&mut pairs);
    }
}
