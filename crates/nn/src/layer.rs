//! Dense layers and activations with explicit forward/backward passes.
//!
//! The paper's models are sequences of fully-connected layers with ReLU activations
//! (Section IV-A: "we consider a sequence of fully connected layers as the underlying
//! neural network architecture").  Each [`Dense`] owns its weight and bias matrices and
//! the gradients accumulated during the latest backward pass; an
//! [`Optimizer`](crate::optimizer::Optimizer) consumes those gradients to update the
//! parameters.

use crate::init;
use crate::kernel::{self, PackedPanels, QuantizedPanels};
use crate::tensor::Matrix;
use rand::Rng;
use std::sync::OnceLock;

/// Activation functions supported by the substrate.
///
/// DeepMapping's published configuration only uses ReLU on hidden layers and a linear
/// output fed into softmax cross-entropy, but sigmoid/tanh are required by the LSTM
/// controller and are exposed here so every non-linearity lives in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    Linear,
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation element-wise, returning a new matrix.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.apply_in_place(&mut out);
        out
    }

    /// Applies the activation element-wise in place (the allocation-free form the
    /// inference hot path uses on matrices it already owns).
    pub fn apply_in_place(&self, out: &mut Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for v in out.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for v in out.as_mut_slice() {
                    *v = sigmoid(*v);
                }
            }
            Activation::Tanh => {
                for v in out.as_mut_slice() {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Given the activation *output* `y` and the gradient w.r.t. that output, returns
    /// the gradient w.r.t. the pre-activation input.
    pub fn backward(&self, y: &Matrix, grad_out: &Matrix) -> Matrix {
        let mut grad = grad_out.clone();
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    if o <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Sigmoid => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= o * (1.0 - o);
                }
            }
            Activation::Tanh => {
                for (g, &o) in grad.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *g *= 1.0 - o * o;
                }
            }
        }
        grad
    }

    /// Stable byte tag used by model serialization.
    pub fn tag(&self) -> u8 {
        match self {
            Activation::Linear => 0,
            Activation::Relu => 1,
            Activation::Sigmoid => 2,
            Activation::Tanh => 3,
        }
    }

    /// Inverse of [`Activation::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Activation::Linear),
            1 => Some(Activation::Relu),
            2 => Some(Activation::Sigmoid),
            3 => Some(Activation::Tanh),
            _ => None,
        }
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// A fully-connected layer `y = act(x · W + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    activation: Activation,
    /// Weight + bias repacked into lane-width panels for the SIMD kernels
    /// (packed on first use after every weight mutation; see `dm_nn::kernel`).
    panels: OnceLock<PackedPanels>,
    /// Int8 quantized panels when the layer runs the quantized inference path.
    /// When set, `weight` holds the **dequantized** weights (the exact matrix
    /// the backward kernels and re-serialization see), so a layer's in-memory
    /// state after [`Dense::quantize_int8`] equals its state after a snapshot
    /// reload.  Cleared by any weight mutation.
    quant: Option<QuantizedPanels>,
    // Cached forward state required by backward().
    last_input: Option<Matrix>,
    last_output: Option<Matrix>,
    // Gradients from the latest backward pass.
    grad_weight: Matrix,
    grad_bias: Matrix,
}

impl Dense {
    /// Creates a dense layer with activation-appropriate initialization: He/Kaiming
    /// uniform for ReLU layers (robust against dead-layer seeds), Xavier uniform for
    /// everything else.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize, activation: Activation) -> Self {
        let weight = match activation {
            Activation::Relu => init::he_uniform(rng, in_dim, out_dim),
            _ => init::xavier_uniform(rng, in_dim, out_dim),
        };
        Dense {
            weight,
            bias: init::zero_bias(out_dim),
            activation,
            panels: OnceLock::new(),
            quant: None,
            last_input: None,
            last_output: None,
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
        }
    }

    /// Rebuilds a layer from explicit parameters (used by deserialization).
    pub fn from_parameters(weight: Matrix, bias: Matrix, activation: Activation) -> crate::Result<Self> {
        if bias.rows() != 1 || bias.cols() != weight.cols() {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "dense from_parameters: weight is {}x{}, bias is {}x{}",
                    weight.rows(),
                    weight.cols(),
                    bias.rows(),
                    bias.cols()
                ),
            });
        }
        let (in_dim, out_dim) = (weight.rows(), weight.cols());
        // Deserialized layers are immutable until an optimizer touches them, so
        // repack eagerly: snapshot opens pay the (tiny) pack cost up front and
        // the first lookup batch runs on panels immediately.
        let panels = OnceLock::from(PackedPanels::pack(&weight, Some(&bias))?);
        Ok(Dense {
            weight,
            bias,
            activation,
            panels,
            quant: None,
            last_input: None,
            last_output: None,
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
        })
    }

    /// Rebuilds a **quantized** layer from the raw int8 weights and per-column
    /// scales a snapshot stores.  The reassembled panels are byte-identical to
    /// the ones [`Dense::quantize_int8`] produced at build time, and the
    /// layer's f32 view is the dequantized weight — exactly the build-time
    /// in-memory state, so serve-time predictions cannot drift.
    pub fn from_quantized_parameters(
        in_dim: usize,
        out_dim: usize,
        q: &[i8],
        scales: &[f32],
        bias: Matrix,
        activation: Activation,
    ) -> crate::Result<Self> {
        if bias.rows() != 1 || bias.cols() != out_dim {
            return Err(crate::NnError::ShapeMismatch {
                context: format!(
                    "dense from_quantized_parameters: weight is {in_dim}x{out_dim}, bias is {}x{}",
                    bias.rows(),
                    bias.cols()
                ),
            });
        }
        let quant = QuantizedPanels::from_parts(in_dim, out_dim, q, scales, Some(&bias))?;
        let weight = quant.dequantized_weight();
        let panels = OnceLock::from(PackedPanels::pack(&weight, Some(&bias))?);
        Ok(Dense {
            weight,
            bias,
            activation,
            panels,
            quant: Some(quant),
            last_input: None,
            last_output: None,
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
        })
    }

    /// Switches the layer onto the int8 quantized inference path: quantizes
    /// the current weights per output column, then replaces the f32 weights
    /// with their dequantized image (single rounding), so everything that
    /// reads `weight()` — backward kernels, serialization, re-quantization —
    /// sees exactly the arithmetic the quantized forward path encodes.
    pub fn quantize_int8(&mut self) -> crate::Result<()> {
        let quant = QuantizedPanels::quantize(&self.weight, Some(&self.bias))?;
        self.weight = quant.dequantized_weight();
        self.panels.take();
        self.quant = Some(quant);
        Ok(())
    }

    /// Whether the layer serves inference through int8 quantized panels.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The layer's quantized panels, when [`Dense::is_quantized`].
    pub fn quantized(&self) -> Option<&QuantizedPanels> {
        self.quant.as_ref()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable access to the weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutable access to the weight matrix.  Invalidates the packed panels
    /// (and any quantized panels), so the next forward/backward pass repacks
    /// the mutated weights in f32.
    pub fn weight_mut(&mut self) -> &mut Matrix {
        self.panels.take();
        self.quant = None;
        &mut self.weight
    }

    /// The weight/bias pair repacked into lane-width panels, packing on first
    /// use after a mutation.
    pub fn packed(&self) -> &PackedPanels {
        self.panels.get_or_init(|| {
            PackedPanels::pack(&self.weight, Some(&self.bias))
                .expect("weight/bias shapes are validated at construction")
        })
    }

    /// Immutable access to the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass that caches activations for a subsequent [`Dense::backward`].
    ///
    /// The cached input/output live in per-layer scratch matrices reused across
    /// steps (`Matrix::copy_from`), so steady-state training makes no activation
    /// allocations here — background retrains stop churning the allocator.
    pub fn forward_train(&mut self, x: &Matrix) -> crate::Result<Matrix> {
        let out = self.forward(x)?;
        match &mut self.last_input {
            Some(cache) => cache.copy_from(x),
            slot => *slot = Some(x.clone()),
        }
        match &mut self.last_output {
            Some(cache) => cache.copy_from(&out),
            slot => *slot = Some(out.clone()),
        }
        Ok(out)
    }

    /// Inference-only forward pass (no caching).
    pub fn forward(&self, x: &Matrix) -> crate::Result<Matrix> {
        self.forward_rows(x, 0, x.rows())
    }

    /// Inference-only forward pass over rows `[start, start + count)` of `x`,
    /// without materializing the input window: `y = act(x[rows] · W + b)`.  The
    /// chunked batch-inference path uses this so cache blocking costs no copies.
    ///
    /// Runs on the packed-panel SIMD kernel ([`kernel::forward_packed`]): one
    /// register-blocked FMA pass with the bias and activation fused into each
    /// output tile.
    pub fn forward_rows(&self, x: &Matrix, start: usize, count: usize) -> crate::Result<Matrix> {
        match &self.quant {
            Some(quant) => kernel::forward_quantized(x, start, count, quant, self.activation),
            None => kernel::forward_packed(x, start, count, self.packed(), self.activation),
        }
    }

    /// Inference-only forward over an input window the caller already
    /// quantized — the multi-task head path, where every head reads the same
    /// trunk output and shares one [`kernel::QuantizedRows`] instead of
    /// re-quantizing it per head.  Returns `None` when this layer serves f32
    /// weights (the caller falls back to [`forward`](Self::forward)).
    pub fn forward_prequantized(
        &self,
        qrows: &kernel::QuantizedRows,
    ) -> Option<crate::Result<Matrix>> {
        self.quant
            .as_ref()
            .map(|quant| kernel::forward_prequantized(qrows, quant, self.activation))
    }

    /// Backward pass.  `grad_out` is the loss gradient w.r.t. this layer's output;
    /// the return value is the gradient w.r.t. the layer's input.  Weight/bias
    /// gradients are accumulated internally (overwriting the previous ones).
    pub fn backward(&mut self, grad_out: &Matrix) -> crate::Result<Matrix> {
        let input = self.last_input.as_ref().ok_or_else(|| crate::NnError::InvalidConfig(
            "backward called before forward_train".to_string(),
        ))?;
        let output = self
            .last_output
            .as_ref()
            .expect("last_output always set together with last_input");
        let grad_pre = self.activation.backward(output, grad_out);
        self.grad_weight = input.transpose_matmul(&grad_pre)?;
        self.grad_bias = grad_pre.sum_rows();
        // `dy · Wᵀ` reuses the forward panels — the gradient pass gets the
        // packed layout for free (the optimizer has not touched W yet).
        kernel::matmul_transpose_packed(&grad_pre, self.packed())
    }

    /// Mutable (parameters, gradients) pairs for optimizers.  Handing out the
    /// mutable weight/bias invalidates the packed panels; the next pass
    /// repacks the updated parameters.
    pub fn parameters_and_grads(&mut self) -> Vec<(&mut Matrix, &Matrix)> {
        self.panels.take();
        self.quant = None;
        vec![
            (&mut self.weight, &self.grad_weight),
            (&mut self.bias, &self.grad_bias),
        ]
    }

    /// Drops cached activations (e.g. between epochs) to release memory.
    pub fn clear_cache(&mut self) {
        self.last_input = None;
        self.last_output = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn relu_zeroes_negatives() {
        let x = Matrix::row_vector(&[-1.0, 0.0, 2.0]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let x = Matrix::row_vector(&[-10.0, 0.0, 10.0]);
        let y = Activation::Sigmoid.forward(&x);
        assert!(y.as_slice()[0] < 0.01);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.99);
    }

    #[test]
    fn activation_tags_round_trip() {
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            assert_eq!(Activation::from_tag(act.tag()), Some(act));
        }
        assert_eq!(Activation::from_tag(200), None);
    }

    #[test]
    fn dense_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(&mut rng, 4, 3, Activation::Relu);
        let x = Matrix::zeros(5, 4);
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 3);
    }

    /// The activation caches behind `forward_train` are per-layer scratch: after
    /// the first step of a given shape, further steps must reuse the same
    /// allocations instead of cloning fresh matrices (ROADMAP carried-over slow
    /// path: background retrains were churning the allocator).
    #[test]
    fn forward_train_reuses_activation_caches_across_steps() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(&mut rng, 4, 3, Activation::Relu);
        let x = Matrix::filled(16, 4, 0.5);
        layer.forward_train(&x).unwrap();
        let input_ptr = layer.last_input.as_ref().unwrap().as_slice().as_ptr();
        let output_ptr = layer.last_output.as_ref().unwrap().as_slice().as_ptr();
        for _ in 0..3 {
            layer.forward_train(&x).unwrap();
            assert_eq!(layer.last_input.as_ref().unwrap().as_slice().as_ptr(), input_ptr);
            assert_eq!(layer.last_output.as_ref().unwrap().as_slice().as_ptr(), output_ptr);
        }
        // A smaller batch (e.g. the tail batch of an epoch) reuses capacity too.
        let tail = Matrix::filled(5, 4, 0.25);
        layer.forward_train(&tail).unwrap();
        assert_eq!(layer.last_input.as_ref().unwrap().as_slice().as_ptr(), input_ptr);
        assert_eq!(layer.last_input.as_ref().unwrap().rows(), 5);
    }

    #[test]
    fn dense_backward_requires_forward_train() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(&mut rng, 2, 2, Activation::Linear);
        let grad = Matrix::zeros(1, 2);
        assert!(layer.backward(&grad).is_err());
    }

    /// Numerical gradient check of a single dense layer against the analytic backward
    /// pass, using a scalar loss `L = sum(y)`.
    #[test]
    fn dense_gradients_match_numerical_estimate() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(&mut rng, 3, 2, Activation::Tanh);
        let x = Matrix::from_vec(2, 3, vec![0.2, -0.4, 0.7, 1.1, 0.05, -0.3]).unwrap();

        // Analytic gradients.
        let y = layer.forward_train(&x).unwrap();
        let grad_out = Matrix::filled(y.rows(), y.cols(), 1.0);
        let _ = layer.backward(&grad_out).unwrap();
        let analytic = layer.grad_weight.clone();

        // Numerical gradients via central differences.
        let eps = 1e-3f32;
        let mut numeric = Matrix::zeros(3, 2);
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.weight().get(r, c);
                layer.weight_mut().set(r, c, orig + eps);
                let plus: f32 = layer.forward(&x).unwrap().as_slice().iter().sum();
                layer.weight_mut().set(r, c, orig - eps);
                let minus: f32 = layer.forward(&x).unwrap().as_slice().iter().sum();
                layer.weight_mut().set(r, c, orig);
                numeric.set(r, c, (plus - minus) / (2.0 * eps));
            }
        }
        for (a, n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numeric {n}");
        }
    }

    /// A layer quantized in place and a layer rebuilt from its serialized
    /// parts (raw int8 weights + scales) must be in identical states: same
    /// dequantized f32 weights, same predictions bit for bit.
    #[test]
    fn quantized_layer_state_equals_its_reloaded_state() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = Dense::new(&mut rng, 7, 11, Activation::Relu);
        let x = {
            let mut m = Matrix::zeros(5, 7);
            for r in 0..5 {
                for c in 0..7 {
                    m.set(r, c, (r as f32 - 2.0) * 0.3 + c as f32 * 0.1);
                }
            }
            m
        };
        let f32_out = layer.forward(&x).unwrap();
        layer.quantize_int8().unwrap();
        assert!(layer.is_quantized());
        let q_out = layer.forward(&x).unwrap();
        // Quantized predictions approximate the f32 ones...
        for (&a, &b) in q_out.as_slice().iter().zip(f32_out.as_slice()) {
            assert!((a - b).abs() < 0.25, "{a} vs {b}");
        }
        // ...and are bit-identical after a parts round trip.
        let quant = layer.quantized().unwrap();
        let reloaded = Dense::from_quantized_parameters(
            7,
            11,
            &quant.weights_row_major(),
            quant.column_scales(),
            layer.bias().clone(),
            Activation::Relu,
        )
        .unwrap();
        assert_eq!(reloaded.weight(), layer.weight(), "dequantized weights");
        let r_out = reloaded.forward(&x).unwrap();
        let bits = |m: &Matrix| m.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&q_out), bits(&r_out));
        // Any weight mutation drops the layer back onto the f32 path.
        let mut mutated = reloaded.clone();
        mutated.weight_mut().set(0, 0, 42.0);
        assert!(!mutated.is_quantized());
    }

    #[test]
    fn from_parameters_validates_bias_shape() {
        let w = Matrix::zeros(3, 2);
        let bad_bias = Matrix::zeros(1, 3);
        assert!(Dense::from_parameters(w.clone(), bad_bias, Activation::Linear).is_err());
        let good_bias = Matrix::zeros(1, 2);
        assert!(Dense::from_parameters(w, good_bias, Activation::Linear).is_ok());
    }
}
