//! Weight initialization.
//!
//! DeepMapping trains small multi-layer perceptrons from scratch many times during the
//! MHAS search, so initialization quality matters for how much of the table a sampled
//! model can memorize within a fixed number of epochs.  Xavier/Glorot uniform is the
//! default for the dense trunk/head layers; the LSTM controller uses the paper's
//! `N(0, 0.05^2)` initialization (Section V-A6).

use crate::tensor::Matrix;
use rand::Rng;

/// Deterministic Xavier/Glorot uniform initialization for a `fan_in × fan_out` weight
/// matrix: samples from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-a..=a);
    }
    m
}

/// Deterministic He/Kaiming uniform initialization for a `fan_in × fan_out` weight
/// matrix feeding a ReLU: samples from `U(-a, a)` with `a = sqrt(6 / fan_in)`.
///
/// ReLU halves the variance of its input, so Xavier's `fan_in + fan_out` scaling
/// systematically under-scales deep ReLU stacks; with unlucky seeds whole layers die
/// (all-negative pre-activations) and training stalls at a high loss.  He scaling
/// compensates for the halving and makes convergence robust across seeds.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-a..=a);
    }
    m
}

/// Gaussian initialization `N(mean, std^2)` using the Box–Muller transform, so the
/// crate only needs `rand`'s uniform sampling (no `rand_distr` dependency).
pub fn gaussian<R: Rng>(rng: &mut R, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut iter = m.as_mut_slice().iter_mut();
    while let Some(a) = iter.next() {
        // Box–Muller produces two independent normals per pair of uniforms.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        *a = mean + std * r * theta.cos();
        if let Some(b) = iter.next() {
            *b = mean + std * r * theta.sin();
        }
    }
    m
}

/// Zero-initialized bias vector of width `cols`.
pub fn zero_bias(cols: usize) -> Matrix {
    Matrix::zeros(1, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_values_stay_within_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 50, 70);
        let a = (6.0f32 / 120.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v >= -a && v <= a));
        // Not all values identical (sanity that the RNG was used).
        let first = m.as_slice()[0];
        assert!(m.as_slice().iter().any(|&v| v != first));
    }

    #[test]
    fn gaussian_matches_requested_moments_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = gaussian(&mut rng, 100, 100, 0.5, 0.2);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
        assert!((var.sqrt() - 0.2).abs() < 0.01, "std was {}", var.sqrt());
    }

    #[test]
    fn gaussian_handles_odd_element_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = gaussian(&mut rng, 1, 3, 0.0, 1.0);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn same_seed_gives_same_weights() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(42), 10, 10);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(42), 10, 10);
        assert_eq!(a, b);
    }
}
