//! Softmax cross-entropy — the training loss used for every output head.
//!
//! The paper (Section IV-C2) trains sampled architectures with "standard cross
//! entropy"; each private head of the multi-task network classifies the key into one
//! of the distinct values of its target column.

use crate::tensor::Matrix;
use crate::NnError;

/// Numerically-stable row-wise softmax.
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Computes mean softmax cross-entropy loss and its gradient w.r.t. the logits.
///
/// `targets[i]` is the class index of row `i`.  Returns `(loss, grad)` where `grad`
/// has the same shape as `logits` and already includes the `1/batch` factor, so it can
/// be fed straight into the model's backward pass.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> crate::Result<(f32, Matrix)> {
    if targets.len() != logits.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "softmax_cross_entropy: {} logit rows but {} targets",
                logits.rows(),
                targets.len()
            ),
        });
    }
    let classes = logits.cols();
    for (i, &t) in targets.iter().enumerate() {
        if t >= classes {
            return Err(NnError::InvalidConfig(format!(
                "target {t} at row {i} is out of range for {classes} classes"
            )));
        }
    }
    let probs = softmax(logits);
    let batch = logits.rows().max(1) as f32;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (i, &t) in targets.iter().enumerate() {
        let p = probs.get(i, t).max(1e-12);
        loss -= p.ln();
        let g = grad.get(i, t);
        grad.set(i, t, g - 1.0);
    }
    grad.scale(1.0 / batch);
    Ok((loss / batch, grad))
}

/// Fraction of rows whose argmax prediction equals the target class.
pub fn accuracy(logits: &Matrix, targets: &[usize]) -> f32 {
    if targets.is_empty() {
        return 1.0;
    }
    let correct = targets
        .iter()
        .enumerate()
        .filter(|(i, &t)| logits.argmax_row(*i) == t)
        .count();
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let b = Matrix::row_vector(&[101.0, 102.0, 103.0]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_vec(2, 2, vec![20.0, -20.0, -20.0, 20.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn cross_entropy_gradient_matches_numerical_estimate() {
        let logits = Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.9, 1.5, 0.1, -0.4]).unwrap();
        let targets = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, logits.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, logits.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&plus, &targets).unwrap();
                let (lm, _) = softmax_cross_entropy(&minus, &targets).unwrap();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_targets() {
        let logits = Matrix::zeros(2, 2);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 5]).is_err());
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 1.0);
    }
}
