//! Feature and label encodings.
//!
//! DeepMapping feeds the key into the network and reads one categorical prediction per
//! value column (Section IV-A: "strings or categorical data are encoded as integers
//! using one-hot encoding before training and inference").  Two pieces live here:
//!
//! * [`KeyEncoder`] turns an integer key into the network's input features.  Keys are
//!   encoded as their binary digits (one feature per bit, in `{0, 1}`), which keeps the
//!   input width logarithmic in the key domain and lets the network pick up periodic
//!   key→value patterns (the high-correlation datasets of Section V-A1 are periodic
//!   along the key dimension).
//! * [`LabelCodec`] assigns a dense class index to every distinct value of a column and
//!   converts predictions back — this is the `fdecode` decoding map of Section IV-B1,
//!   whose serialized size participates in the Eq.-1 objective.

use crate::tensor::Matrix;
use std::collections::HashMap;
use std::hash::Hash;

/// Encodes integer keys as feature vectors: the key's binary digits, optionally
/// followed by one-hot residues modulo a few small primes.
///
/// The binary digits alone capture patterns aligned with powers of two (the synthetic
/// high-correlation datasets, the crop raster).  The residue features make patterns
/// that are periodic in small non-power-of-two periods (TPC-DS customer_demographics
/// cycles through domains of size 2, 5, 7, ...) linearly separable, which is what lets
/// a compact model memorize them — the paper reaches the same effect with larger
/// models and longer training than a laptop-scale reproduction can afford.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyEncoder {
    bits: usize,
    moduli: Vec<u64>,
    /// Scalar ramp periods: each `p` contributes one feature `(key % p) / p`.
    ramps: Vec<u64>,
}

/// The small prime periods used by [`KeyEncoder::with_periodic_features`].
pub const PERIODIC_MODULI: [u64; 4] = [2, 3, 5, 7];

impl KeyEncoder {
    /// Creates an encoder with an explicit number of bit features (no residues).
    pub fn with_bits(bits: usize) -> Self {
        KeyEncoder {
            bits: bits.max(1),
            moduli: Vec::new(),
            ramps: Vec::new(),
        }
    }

    /// Creates a binary-only encoder wide enough for every key in `0..=max_key`.
    pub fn for_max_key(max_key: u64) -> Self {
        KeyEncoder {
            bits: Self::bits_for(max_key),
            moduli: Vec::new(),
            ramps: Vec::new(),
        }
    }

    /// Creates an encoder with binary digits plus one-hot residues modulo
    /// [`PERIODIC_MODULI`] — the encoding DeepMapping's mapping models use.
    pub fn with_periodic_features(max_key: u64) -> Self {
        KeyEncoder {
            bits: Self::bits_for(max_key),
            moduli: PERIODIC_MODULI.to_vec(),
            ramps: Vec::new(),
        }
    }

    /// Returns the encoder extended with scalar ramp features `(key % p) / p`, one
    /// per period in `periods` (zeros and ones are dropped; duplicates collapse).
    ///
    /// A value column that is a long-period staircase of the key — e.g. TPC-DS
    /// customer_demographics' `(k / divisor) % card` cross-product columns — is nearly
    /// unlearnable from key bits alone at small widths, but becomes a simple
    /// threshold function of the matching ramp.  `MappingSchema::infer` (dm-core)
    /// detects such periods from the data and injects them here.
    pub fn with_ramp_periods(mut self, periods: &[u64]) -> Self {
        let mut ramps: Vec<u64> = periods.iter().copied().filter(|&p| p > 1).collect();
        ramps.sort_unstable();
        ramps.dedup();
        self.ramps = ramps;
        self
    }

    /// The scalar ramp periods this encoder emits features for.
    pub fn ramp_periods(&self) -> &[u64] {
        &self.ramps
    }

    /// The one-hot residue moduli this encoder emits features for.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Reassembles an encoder from its serialized components (bit width, residue
    /// moduli, ramp periods).  Inputs are normalized the same way the fluent
    /// constructors normalize them, so an encoder round-trips exactly through
    /// (`bits`, `moduli`, `ramp_periods`) → `from_parts`.
    pub fn from_parts(bits: usize, moduli: Vec<u64>, ramp_periods: &[u64]) -> Self {
        KeyEncoder {
            bits: bits.max(1),
            moduli,
            ramps: Vec::new(),
        }
        .with_ramp_periods(ramp_periods)
    }

    fn bits_for(max_key: u64) -> usize {
        if max_key == 0 {
            1
        } else {
            64 - max_key.leading_zeros() as usize
        }
    }

    /// Number of binary-digit features.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of input features produced per key.
    pub fn input_dim(&self) -> usize {
        self.bits + self.moduli.iter().map(|&m| m as usize).sum::<usize>() + self.ramps.len()
    }

    /// Encodes a single key into the provided feature slice (must be `input_dim` long).
    pub fn encode_into(&self, key: u64, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.input_dim());
        for (b, slot) in out[..self.bits].iter_mut().enumerate() {
            // Zero-centered bits condition the first layer much better than 0/1.
            *slot = if (key >> b) & 1 == 1 { 1.0 } else { -1.0 };
        }
        let mut offset = self.bits;
        for &m in &self.moduli {
            let residue = (key % m) as usize;
            for (i, slot) in out[offset..offset + m as usize].iter_mut().enumerate() {
                *slot = if i == residue { 1.0 } else { 0.0 };
            }
            offset += m as usize;
        }
        for (&p, slot) in self.ramps.iter().zip(out[offset..].iter_mut()) {
            *slot = (key % p) as f32 / p as f32;
        }
    }

    /// Encodes a batch of keys into a `len × input_dim` matrix.
    pub fn encode_batch(&self, keys: &[u64]) -> Matrix {
        let mut m = Matrix::zeros(keys.len(), self.input_dim());
        for (i, &k) in keys.iter().enumerate() {
            self.encode_into(k, m.row_mut(i));
        }
        m
    }

    /// Serialized size of the encoder metadata in bytes.
    pub fn size_bytes(&self) -> usize {
        8 + self.moduli.len() * 8 + self.ramps.len() * 8
    }
}

/// Bidirectional mapping between distinct column values and dense class indices.
///
/// The forward direction (`value → class`) is used to produce training targets; the
/// reverse direction (`class → value`) is the paper's `fdecode` map applied to model
/// predictions at query time.
#[derive(Debug, Clone)]
pub struct LabelCodec<T: Eq + Hash + Clone> {
    to_class: HashMap<T, usize>,
    to_value: Vec<T>,
}

impl<T: Eq + Hash + Clone> Default for LabelCodec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Eq + Hash + Clone> LabelCodec<T> {
    /// Creates an empty codec.
    pub fn new() -> Self {
        LabelCodec {
            to_class: HashMap::new(),
            to_value: Vec::new(),
        }
    }

    /// Builds a codec from an iterator of values, assigning classes in first-seen order.
    pub fn fit<I: IntoIterator<Item = T>>(values: I) -> Self {
        let mut codec = Self::new();
        for v in values {
            codec.encode_or_insert(v);
        }
        codec
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.to_value.len()
    }

    /// Returns the class of `value`, inserting a new class if unseen.
    pub fn encode_or_insert(&mut self, value: T) -> usize {
        if let Some(&c) = self.to_class.get(&value) {
            return c;
        }
        let c = self.to_value.len();
        self.to_class.insert(value.clone(), c);
        self.to_value.push(value);
        c
    }

    /// Returns the class of `value` if it has been seen.
    pub fn encode(&self, value: &T) -> Option<usize> {
        self.to_class.get(value).copied()
    }

    /// Decodes a class index back to the original value.
    pub fn decode(&self, class: usize) -> Option<&T> {
        self.to_value.get(class)
    }

    /// Iterates over `(class, value)` pairs in class order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.to_value.iter().enumerate()
    }
}

impl LabelCodec<u64> {
    /// Serialized size in bytes for integer-valued codecs (class table as u64s).
    pub fn size_bytes(&self) -> usize {
        8 + self.to_value.len() * 8
    }
}

impl LabelCodec<String> {
    /// Serialized size in bytes for string-valued codecs (length-prefixed UTF-8).
    pub fn size_bytes(&self) -> usize {
        8 + self
            .to_value
            .iter()
            .map(|s| 4 + s.len())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_encoder_width_covers_max_key() {
        assert_eq!(KeyEncoder::for_max_key(0).input_dim(), 1);
        assert_eq!(KeyEncoder::for_max_key(1).input_dim(), 1);
        assert_eq!(KeyEncoder::for_max_key(2).input_dim(), 2);
        assert_eq!(KeyEncoder::for_max_key(255).input_dim(), 8);
        assert_eq!(KeyEncoder::for_max_key(256).input_dim(), 9);
    }

    #[test]
    fn key_encoding_round_trips_through_bits() {
        let enc = KeyEncoder::for_max_key(1023);
        let keys = [0u64, 1, 2, 511, 1023, 777];
        let m = enc.encode_batch(&keys);
        for (i, &k) in keys.iter().enumerate() {
            let mut reconstructed = 0u64;
            for (b, &v) in m.row(i).iter().enumerate() {
                assert!(v == -1.0 || v == 1.0, "bit features are zero-centered");
                if v == 1.0 {
                    reconstructed |= 1 << b;
                }
            }
            assert_eq!(reconstructed, k);
        }
    }

    #[test]
    fn ramp_features_emit_scaled_residues() {
        let enc = KeyEncoder::with_periodic_features(255).with_ramp_periods(&[70, 10, 70, 0, 1]);
        // Zeros/ones dropped, duplicates collapsed, periods sorted.
        assert_eq!(enc.ramp_periods(), &[10, 70]);
        assert_eq!(enc.input_dim(), 8 + (2 + 3 + 5 + 7) + 2);
        let m = enc.encode_batch(&[93]);
        let row = m.row(0);
        let ramps = &row[row.len() - 2..];
        assert!((ramps[0] - (93 % 10) as f32 / 10.0).abs() < 1e-6);
        assert!((ramps[1] - (93 % 70) as f32 / 70.0).abs() < 1e-6);
    }

    #[test]
    fn encode_batch_shape() {
        let enc = KeyEncoder::with_bits(12);
        let m = enc.encode_batch(&[1, 2, 3]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 12);
    }

    #[test]
    fn periodic_features_one_hot_the_residues() {
        let enc = KeyEncoder::with_periodic_features(255);
        assert_eq!(enc.bits(), 8);
        assert_eq!(enc.input_dim(), 8 + 2 + 3 + 5 + 7);
        let m = enc.encode_batch(&[9]);
        let row = m.row(0);
        // Binary part (±1-centered) reconstructs the key.
        let mut reconstructed = 0u64;
        for (b, &v) in row[..8].iter().enumerate() {
            assert!(v == -1.0 || v == 1.0);
            if v == 1.0 {
                reconstructed |= 1 << b;
            }
        }
        assert_eq!(reconstructed, 9);
        // Residue one-hots: 9 % 2 = 1, 9 % 3 = 0, 9 % 5 = 4, 9 % 7 = 2.
        let mods = &row[8..];
        assert_eq!(mods[..2], [0.0, 1.0]);
        assert_eq!(mods[2..5], [1.0, 0.0, 0.0]);
        assert_eq!(mods[5..10], [0.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(mods[10..17], [0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        // Every row has exactly bits-set + 4 one-hot ones.
        let ones = row.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(ones, 2 + 4); // key 9 has two set bits plus one per modulus
    }

    #[test]
    fn label_codec_assigns_dense_classes_in_first_seen_order() {
        let codec = LabelCodec::fit(vec!["shipping", "pickup", "shipping", "return"]);
        assert_eq!(codec.num_classes(), 3);
        assert_eq!(codec.encode(&"shipping"), Some(0));
        assert_eq!(codec.encode(&"pickup"), Some(1));
        assert_eq!(codec.encode(&"return"), Some(2));
        assert_eq!(codec.encode(&"unknown"), None);
        assert_eq!(codec.decode(0), Some(&"shipping"));
        assert_eq!(codec.decode(3), None);
    }

    #[test]
    fn label_codec_encode_or_insert_is_idempotent() {
        let mut codec = LabelCodec::new();
        let a = codec.encode_or_insert(42u64);
        let b = codec.encode_or_insert(42u64);
        assert_eq!(a, b);
        assert_eq!(codec.num_classes(), 1);
    }

    #[test]
    fn codec_size_accounts_for_values() {
        let int_codec: LabelCodec<u64> = LabelCodec::fit(0..10u64);
        assert_eq!(int_codec.size_bytes(), 8 + 80);
        let str_codec: LabelCodec<String> =
            LabelCodec::fit(vec!["ab".to_string(), "cdef".to_string()]);
        assert_eq!(str_codec.size_bytes(), 8 + (4 + 2) + (4 + 4));
    }
}
