//! # dm-nn — neural-network substrate for DeepMapping
//!
//! DeepMapping (ICDE 2024) memorizes key → value mappings of relational tables with a
//! compact multi-task fully-connected network (Section IV-A of the paper) and searches
//! its architecture with an LSTM controller (Section IV-C).  The paper runs this on
//! PyTorch / ONNX; this crate is the from-scratch Rust substitute.
//!
//! The crate provides exactly what DeepMapping needs and nothing more:
//!
//! * [`tensor::Matrix`] — a row-major `f32` matrix with the handful of BLAS-like
//!   operations the forward/backward passes need,
//! * [`kernel`] — register-blocked, lane-vectorized micro-kernels over
//!   pre-packed weight panels (16-lane AVX-512 with an AVX2/FMA form and a
//!   bit-identical scalar fallback, selectable via `DM_NN_KERNEL`) plus an
//!   int8 quantized inference path (`vpmaddwd` widening with per-column
//!   symmetric scales, bit-identical across all kernels), the engine under
//!   every dense matmul,
//! * [`layer`] — dense layers and activations with explicit backward passes,
//! * [`loss`] — softmax cross-entropy (the paper's training loss),
//! * [`optimizer`] — SGD (with momentum and decay) and Adam,
//! * [`mlp`] — a plain sequential multi-layer perceptron,
//! * [`multitask`] — the shared-trunk / private-head model of Section IV-A,
//! * [`lstm`] — an LSTM cell + autoregressive sequence controller used by MHAS,
//! * [`encoding`] — binary key features and one-hot label encodings,
//! * [`serialize`] — byte-level model (de)serialization and size accounting, which
//!   feeds the Eq.-1 objective (`size(M)` term).
//!
//! Everything is deterministic given a seed, single-threaded and allocation-conscious;
//! batched inference is a sequence of matrix multiplications, mirroring what the ONNX
//! runtime would execute for the same graph.

pub mod encoding;
pub mod init;
pub mod kernel;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod multitask;
pub mod optimizer;
pub mod serialize;
pub mod tensor;

pub use encoding::{KeyEncoder, LabelCodec};
pub use kernel::{Kernel, PackedPanels, QuantizedPanels, QuantizedRows, LANES, QLANES};
pub use layer::{Activation, Dense};
pub use loss::softmax_cross_entropy;
pub use lstm::{LstmCell, SequenceController};
pub use mlp::{Mlp, MlpSpec};
pub use multitask::{
    MultiTaskModel, MultiTaskSpec, TaskHeadSpec, CACHE_CHUNK_ROWS, PARALLEL_ROW_CROSSOVER,
};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use tensor::Matrix;

/// Errors produced by the neural-network substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two operands had incompatible shapes (e.g. matmul of `m×k` with `j×n`, `k != j`).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
    },
    /// A serialized model buffer was malformed or truncated.
    Corrupt(String),
    /// A configuration value was invalid (e.g. zero-sized layer).
    InvalidConfig(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            NnError::Corrupt(msg) => write!(f, "corrupt model buffer: {msg}"),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
