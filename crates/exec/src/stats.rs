//! Runtime counters: how many tasks ran, how often workers stole, how long they
//! parked.  The cells are plain relaxed atomics — they are observability, not
//! synchronization — and a [`ExecStats`] snapshot is what `Metrics`-style consumers
//! (the query pipeline, the benchmark harness) record.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters owned by the pool.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    pub tasks_executed: AtomicU64,
    pub steals: AtomicU64,
    pub park_nanos: AtomicU64,
    pub panics_caught: AtomicU64,
}

impl StatsCells {
    pub(crate) fn snapshot(&self) -> ExecStats {
        ExecStats {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            park_nanos: self.park_nanos.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of a pool's lifetime counters.
///
/// Counters are cumulative since pool construction; use
/// [`delta_since`](ExecStats::delta_since) to attribute work to a region of
/// interest (e.g. one lookup batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tasks executed to completion (including tasks that panicked).
    pub tasks_executed: u64,
    /// Tasks a worker stole from another worker's deque (injector pops are not
    /// steals).
    pub steals: u64,
    /// Total time workers spent parked waiting for work, in nanoseconds.
    pub park_nanos: u64,
    /// Panics caught inside detached tasks (scope panics are propagated to the
    /// scope owner instead and are not counted here).
    pub panics_caught: u64,
}

impl ExecStats {
    /// Counter-wise difference against an earlier snapshot of the same pool.
    pub fn delta_since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            steals: self.steals.saturating_sub(earlier.steals),
            park_nanos: self.park_nanos.saturating_sub(earlier.park_nanos),
            panics_caught: self.panics_caught.saturating_sub(earlier.panics_caught),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counter_wise_and_saturates() {
        let earlier = ExecStats {
            tasks_executed: 10,
            steals: 2,
            park_nanos: 100,
            panics_caught: 1,
        };
        let later = ExecStats {
            tasks_executed: 25,
            steals: 2,
            park_nanos: 500,
            panics_caught: 1,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.tasks_executed, 15);
        assert_eq!(delta.steals, 0);
        assert_eq!(delta.park_nanos, 400);
        assert_eq!(delta.panics_caught, 0);
        // A stale "later" snapshot saturates instead of wrapping.
        assert_eq!(earlier.delta_since(&later).tasks_executed, 0);
    }
}
