//! # dm-exec — the workspace's offline work-stealing execution runtime
//!
//! The build environment has no registry access, so this crate is the vendored
//! stand-in for a rayon-style runtime: a fixed work-stealing [`ThreadPool`]
//! (per-worker deques + a global injector + condvar parking), structured
//! [`ThreadPool::scope`]s whose spawned tasks may borrow stack data,
//! [`ThreadPool::join`] / [`ThreadPool::parallel_chunks`] /
//! [`ThreadPool::parallel_chunks_mut`] convenience primitives, rayon-style panic
//! propagation, and [`ExecStats`] counters (tasks, steals, park time) that
//! `Metrics`-keeping consumers snapshot around parallel regions.
//!
//! Consumers in the workspace:
//!
//! * `dm_core::pipeline::QueryPipeline` shards stage 3 (independent auxiliary
//!   partition groups) across the pool,
//! * `dm_nn::MultiTaskModel::forward_batch_flat` splits large inference batches
//!   into row chunks (with a serial fallback below a crossover threshold),
//! * the stress/bench harnesses drive stores from many OS threads and rely on
//!   the pool plus the sharded single-flight `dm_storage::BufferPool` staying
//!   correct under that load.
//!
//! ## Sizing
//!
//! [`global()`] returns the shared process-wide pool, sized once from the
//! `DM_EXEC_THREADS` environment variable (default: the machine's available
//! parallelism).  `DM_EXEC_THREADS=1` is the fully serial debugging mode: no
//! worker threads exist and every task runs inline on the calling thread, in
//! submission order.  Stores that want an isolated pool (e.g. the
//! `DeepMappingBuilder::exec_threads` knob) hold an [`ExecHandle::with_threads`]
//! instead of the global.

mod pool;
mod scope;
mod stats;

pub use pool::{ThreadPool, MAX_THREADS};
pub use scope::Scope;
pub use stats::ExecStats;

use std::sync::{Arc, OnceLock};

/// The pool size `DM_EXEC_THREADS` requests, or the machine's available
/// parallelism when the variable is unset/unparsable.  Always at least 1 and at
/// most [`MAX_THREADS`].
pub fn threads_from_env() -> usize {
    parse_threads(std::env::var("DM_EXEC_THREADS").ok().as_deref())
}

fn parse_threads(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(MAX_THREADS),
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS),
    }
}

/// The shared process-wide pool, created on first use and never torn down.  Its
/// size is read from `DM_EXEC_THREADS` once, at creation.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::from_env)
}

/// A cloneable reference to an execution pool: either the shared [`global`] pool
/// or an owned pool with an explicit size.  This is what stores embed so "use
/// the process default" stays the zero-cost default while tests and latency
/// islands can pin their own pool.
#[derive(Debug, Clone, Default)]
pub enum ExecHandle {
    /// Use the shared process-wide pool.
    #[default]
    Global,
    /// Use a dedicated pool (dropped with the last handle).
    Owned(Arc<ThreadPool>),
}

impl ExecHandle {
    /// A handle to a dedicated pool of `threads` contexts (1 = fully serial).
    pub fn with_threads(threads: usize) -> Self {
        ExecHandle::Owned(Arc::new(ThreadPool::new(threads)))
    }

    /// The pool this handle designates.
    pub fn get(&self) -> &ThreadPool {
        match self {
            ExecHandle::Global => global(),
            ExecHandle::Owned(pool) => pool,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn parse_threads_handles_unset_garbage_and_bounds() {
        assert_eq!(parse_threads(Some("4")), 4);
        assert_eq!(parse_threads(Some(" 2 ")), 2);
        assert_eq!(parse_threads(Some("1")), 1);
        assert_eq!(parse_threads(Some("100000")), MAX_THREADS);
        let default = parse_threads(None);
        assert!(default >= 1);
        assert_eq!(parse_threads(Some("0")), default, "0 falls back to the default");
        assert_eq!(parse_threads(Some("banana")), default);
    }

    #[test]
    fn serial_pool_runs_inline_on_the_calling_thread() {
        let pool = ThreadPool::new(1);
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let mut observed = None;
        pool.scope(|s| {
            s.spawn(|| observed = Some(std::thread::current().id()));
            // Inline execution means the task already ran.
            assert_eq!(s.pending_tasks(), 0);
        });
        assert_eq!(observed, Some(caller));
        assert_eq!(pool.stats().tasks_executed, 1);
    }

    #[test]
    fn scope_tasks_borrow_and_all_complete() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let values: Vec<usize> = (0..100).collect();
        pool.scope(|s| {
            for &v in &values {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(v, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 99 * 100 / 2);
        assert!(pool.stats().tasks_executed >= 100);
    }

    #[test]
    fn zero_task_scope_returns_the_closure_value() {
        let pool = ThreadPool::new(2);
        let value = pool.scope(|_s| 42);
        assert_eq!(value, 42);
        let serial = ThreadPool::new(1);
        assert_eq!(serial.scope(|_s| "ok"), "ok");
    }

    #[test]
    fn nested_scopes_complete_inner_before_outer() {
        // More nested scopes than workers: waiting workers must help execute
        // queued tasks or this deadlocks.
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                    // Inner scope is done: its increments are visible here.
                    assert!(total.load(Ordering::SeqCst) >= 4);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panics_propagate_to_the_scope_owner_after_all_tasks_drain() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let completed = AtomicUsize::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..16 {
                        let completed = &completed;
                        s.spawn(move || {
                            if i == 3 {
                                panic!("boom {i}");
                            }
                            completed.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }));
            let payload = result.expect_err("task panic must surface at the scope");
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(message.contains("boom"), "unexpected payload {message:?}");
            // Structured lifetime: every non-panicking task still ran.
            assert_eq!(completed.load(Ordering::SeqCst), 15, "threads={threads}");
        }
    }

    #[test]
    fn panic_in_the_scope_closure_itself_still_waits_for_tasks() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    let completed = &completed;
                    s.spawn(move || {
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("owner panicked");
            })
        }));
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let data = [1u64, 2, 3, 4];
        let (a, b) = pool.join(
            || data.iter().sum::<u64>(),
            || data.iter().product::<u64>(),
        );
        assert_eq!(a, 10);
        assert_eq!(b, 24);
        let serial = ThreadPool::new(1);
        assert_eq!(serial.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn parallel_chunks_cover_every_element_once() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let items: Vec<u64> = (0..1_000).collect();
            let sum = Mutex::new(0u64);
            let seen_offsets = Mutex::new(Vec::new());
            pool.parallel_chunks(&items, 64, |offset, chunk| {
                assert_eq!(items[offset], chunk[0]);
                *sum.lock().unwrap() += chunk.iter().sum::<u64>();
                seen_offsets.lock().unwrap().push(offset);
            });
            assert_eq!(*sum.lock().unwrap(), 999 * 1_000 / 2);
            let mut offsets = seen_offsets.into_inner().unwrap();
            offsets.sort_unstable();
            assert_eq!(offsets, (0..16).map(|c| c * 64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_chunks_mut_writes_disjoint_chunks() {
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            let mut out = vec![0u64; 500];
            pool.parallel_chunks_mut(&mut out, 33, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (offset + i) as u64 * 2;
                }
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
        }
    }

    #[test]
    fn detached_spawn_catches_panics_and_counts_them() {
        let pool = ThreadPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.spawn(|| panic!("detached boom"));
        // Drain via a scope barrier: scope tasks queue behind the detached ones
        // only approximately, so poll the counters instead.
        for _ in 0..1_000 {
            let stats = pool.stats();
            if stats.panics_caught == 1 && done.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.stats().panics_caught, 1);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_report_parked_time_and_steal_accounting_is_sane() {
        let pool = ThreadPool::new(2);
        // Give workers longer than one park cycle (50 ms timeout) with nothing to
        // do, so at least one completed park is recorded.
        std::thread::sleep(std::time::Duration::from_millis(120));
        let stats = pool.stats();
        assert!(stats.park_nanos > 0, "idle workers must accumulate park time");
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    std::hint::black_box(17u64 * 3);
                });
            }
        });
        let stats = pool.stats();
        assert!(stats.tasks_executed >= 64);
        assert!(stats.steals <= stats.tasks_executed);
    }

    #[test]
    fn exec_handle_designates_global_or_owned_pools() {
        let global_handle = ExecHandle::Global;
        assert!(std::ptr::eq(global_handle.get(), global()));
        let owned = ExecHandle::with_threads(3);
        assert_eq!(owned.get().threads(), 3);
        let clone = owned.clone();
        assert!(std::ptr::eq(owned.get(), clone.get()));
    }

    #[test]
    fn dropping_a_pool_joins_workers_after_draining() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(4);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop without an explicit barrier: workers drain queues on shutdown.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }
}
