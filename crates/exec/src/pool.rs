//! The fixed work-stealing thread pool.
//!
//! Layout mirrors a minimal rayon: every worker owns a deque it pushes to and pops
//! from at the back (LIFO keeps the working set hot), external callers push into a
//! global injector, and an idle worker first drains its own deque, then the
//! injector, then steals from the *front* of sibling deques (FIFO stealing takes
//! the oldest — largest — tasks).  Workers with nothing to do park on a condvar
//! with a timeout; pushes notify it.  A pool built with `threads == 1` spawns no
//! workers at all and executes every task inline on the calling thread — the fully
//! serial debugging mode `DM_EXEC_THREADS=1` selects.

use crate::scope::{run_scope, Scope, ScopeState};
use crate::stats::{ExecStats, StatsCells};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Hard ceiling on pool size; guards against absurd `DM_EXEC_THREADS` values.
pub const MAX_THREADS: usize = 256;

pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool identity, worker index)` when the current thread is a pool worker.
    /// The identity is the address of the pool's shared state, which is stable for
    /// the pool's lifetime (workers hold an `Arc` to it).
    static CURRENT_WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// A fixed-size work-stealing thread pool.
///
/// Construct one directly ([`ThreadPool::new`]), from the environment
/// ([`ThreadPool::from_env`], honouring `DM_EXEC_THREADS`), or use the shared
/// process-wide pool via [`crate::global`].  Dropping a pool drains queued tasks
/// and joins its workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

pub(crate) struct Shared {
    /// External submissions land here.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; the owner pops at the back, thieves at the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed but not yet popped, across all queues.  Workers use it to
    /// decide whether parking is safe; it is advisory (the park has a timeout).
    pending: AtomicUsize,
    shutdown: AtomicBool,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    stats: StatsCells,
}

impl Shared {
    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Index of the current thread if it is a worker of *this* pool.
    fn current_worker_index(self: &Arc<Self>) -> Option<usize> {
        let id = self.identity();
        CURRENT_WORKER.with(|c| match c.get() {
            Some((pool, idx)) if pool == id => Some(idx),
            _ => None,
        })
    }

    /// Pops the next task: own deque (back), injector (front), then steals from
    /// sibling deques (front).  `idx` is the calling worker's index, or `None`
    /// for a non-worker helper (which only drains the injector and steals).
    pub(crate) fn find_task(&self, idx: Option<usize>) -> Option<Task> {
        if let Some(idx) = idx {
            if let Some(task) = self.deques[idx].lock().pop_back() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(task);
            }
        }
        if let Some(task) = self.injector.lock().pop_front() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
        let own = idx.unwrap_or(usize::MAX);
        for (victim, deque) in self.deques.iter().enumerate() {
            if victim == own {
                continue;
            }
            if let Some(task) = deque.lock().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    /// Runs one task, counting it.  Tasks are pre-wrapped with panic handling at
    /// push time, so execution itself never unwinds into the worker loop.
    pub(crate) fn execute(&self, task: Task) {
        self.stats.tasks_executed.fetch_add(1, Ordering::Relaxed);
        task();
    }

    fn push(self: &Arc<Self>, task: Task) {
        match self.current_worker_index() {
            Some(idx) => self.deques[idx].lock().push_back(task),
            None => self.injector.lock().push_back(task),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Taking the park lock orders this notify after any in-progress "queues
        // are empty, about to wait" check, so the wakeup cannot be lost.
        let _guard = self.park_lock.lock();
        self.park_cv.notify_one();
    }

    fn park(&self) {
        let start = Instant::now();
        let guard = self.park_lock.lock();
        if self.pending.load(Ordering::SeqCst) == 0 && !self.shutdown.load(Ordering::SeqCst) {
            // The timeout is a belt-and-braces bound, not the wakeup mechanism.
            let _ = self
                .park_cv
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
        }
        self.stats
            .park_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((shared.identity(), idx))));
    loop {
        if let Some(task) = shared.find_task(Some(idx)) {
            shared.execute(task);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.park();
    }
}

impl ThreadPool {
    /// Creates a pool of `threads` execution contexts.  `threads == 1` (or 0) is
    /// the fully serial mode: no worker threads are spawned and every task runs
    /// inline on the calling thread, in submission order.  `threads >= 2` spawns
    /// that many workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, MAX_THREADS);
        let worker_count = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..worker_count).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
            stats: StatsCells::default(),
        });
        let workers = (0..worker_count)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dm-exec-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .expect("spawn dm-exec worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Creates a pool sized from `DM_EXEC_THREADS` (default: the machine's
    /// available parallelism).
    pub fn from_env() -> Self {
        Self::new(crate::threads_from_env())
    }

    /// The configured number of execution contexts (1 means fully serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the pool executes everything inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.workers.is_empty()
    }

    /// A snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> ExecStats {
        self.shared.stats.snapshot()
    }

    /// Submits a detached fire-and-forget task.  Panics inside the task are
    /// caught and counted in [`ExecStats::panics_caught`].  On a serial pool the
    /// task runs inline before `spawn` returns.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        let shared = Arc::clone(&self.shared);
        let task: Task = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                shared.stats.panics_caught.fetch_add(1, Ordering::Relaxed);
            }
        });
        self.push_task(task);
    }

    /// Runs `f` with a [`Scope`] on which borrowing tasks can be spawned; returns
    /// only after every spawned task has finished.  A panic in any spawned task
    /// (or in `f` itself) is re-raised here after all tasks have completed, so
    /// borrowed data is never observed by a task after `scope` returns.
    pub fn scope<'pool, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool>) -> R,
    {
        run_scope(self, f)
    }

    /// Runs two closures, potentially in parallel (`a` inline on the calling
    /// thread, `b` on the pool), and returns both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        let b_slot: Mutex<Option<RB>> = Mutex::new(None);
        let ra = self.scope(|s| {
            s.spawn(|| {
                *b_slot.lock() = Some(b());
            });
            a()
        });
        let rb = b_slot
            .into_inner()
            .expect("scope waits for the spawned half of a join");
        (ra, rb)
    }

    /// Applies `f` to consecutive chunks of `items` (at most `chunk_size`
    /// elements each), potentially in parallel.  `f` receives the element offset
    /// of the chunk within `items` and the chunk itself.
    pub fn parallel_chunks<T, F>(&self, items: &[T], chunk_size: usize, f: F)
    where
        T: Sync,
        F: Fn(usize, &[T]) + Send + Sync,
    {
        let chunk_size = chunk_size.max(1);
        if self.is_serial() || items.len() <= chunk_size {
            for (ci, chunk) in items.chunks(chunk_size).enumerate() {
                f(ci * chunk_size, chunk);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for (ci, chunk) in items.chunks(chunk_size).enumerate() {
                s.spawn(move || f(ci * chunk_size, chunk));
            }
        });
    }

    /// Mutable-slice variant of [`parallel_chunks`](Self::parallel_chunks):
    /// disjoint `&mut` chunks are handed to `f`, potentially in parallel.
    pub fn parallel_chunks_mut<T, F>(&self, items: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Send + Sync,
    {
        let chunk_size = chunk_size.max(1);
        if self.is_serial() || items.len() <= chunk_size {
            for (ci, chunk) in items.chunks_mut(chunk_size).enumerate() {
                f(ci * chunk_size, chunk);
            }
            return;
        }
        let f = &f;
        self.scope(|s| {
            for (ci, chunk) in items.chunks_mut(chunk_size).enumerate() {
                s.spawn(move || f(ci * chunk_size, chunk));
            }
        });
    }

    /// Submits a pre-wrapped task (serial pools execute it inline).
    pub(crate) fn push_task(&self, task: Task) {
        if self.is_serial() {
            self.shared.execute(task);
        } else {
            self.shared.push(task);
        }
    }

    /// Blocks until `state.pending` reaches zero.  A worker of this pool helps by
    /// executing queued tasks while it waits (this is what makes nested scopes
    /// deadlock-free); any other thread parks on the scope's condvar.
    pub(crate) fn wait_for_scope(&self, state: &ScopeState) {
        if state.pending() == 0 {
            return;
        }
        match self.shared.current_worker_index() {
            Some(idx) => {
                let mut idle_spins = 0u32;
                while state.pending() > 0 {
                    if let Some(task) = self.shared.find_task(Some(idx)) {
                        self.shared.execute(task);
                        idle_spins = 0;
                    } else {
                        idle_spins += 1;
                        if idle_spins < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                }
            }
            None => state.wait_external(),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.park_lock.lock();
            self.shared.park_cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
