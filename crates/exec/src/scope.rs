//! Structured task scopes.
//!
//! [`ThreadPool::scope`] hands its closure a [`Scope`] on which tasks borrowing
//! stack data can be spawned.  The contract that makes the lifetime-erasure below
//! sound is the same one `std::thread::scope` and rayon rely on: `scope` does not
//! return — not even by panicking — until every spawned task has run to
//! completion, so nothing a task borrowed for `'scope` can be dropped while the
//! task can still observe it.
//!
//! Panics in spawned tasks are caught at the task boundary, the first payload is
//! stashed, and `scope` re-raises it on the owning thread after all tasks have
//! drained — rayon's propagation semantics.

use crate::pool::{Task, ThreadPool};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shared completion state of one scope: how many spawned tasks are still
/// outstanding, plus the first panic payload any of them produced.
pub(crate) struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    wait_lock: Mutex<()>,
    wait_cv: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            wait_lock: Mutex::new(()),
            wait_cv: Condvar::new(),
        }
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Taking the wait lock orders this notify after a waiter's
            // "pending > 0, about to wait" check, so the wakeup cannot be lost.
            let _guard = self.wait_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.wait_cv.notify_all();
        }
    }

    /// Parks the calling (non-worker) thread until every task has completed.
    pub(crate) fn wait_external(&self) {
        let mut guard = self.wait_lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.pending() > 0 {
            guard = self
                .wait_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// Handle for spawning borrowing tasks inside a [`ThreadPool::scope`] block.
///
/// The `'scope` lifetime is invariant (see the `PhantomData`), which is what
/// stops a `Scope` from being smuggled into a longer-lived context.
pub struct Scope<'scope> {
    pool: &'scope ThreadPool,
    state: Arc<ScopeState>,
    _invariant: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow anything outliving the scope.  The task
    /// runs on the pool (inline on a serial pool); `scope` will not return until
    /// it completes, and a panic inside it is re-raised by `scope`.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            state.complete_one();
        });
        // SAFETY: the task's borrows are valid for 'scope, and `run_scope` does
        // not return (even on panic) before `pending` reaches zero, i.e. before
        // this task has finished running.  Erasing the lifetime to 'static is
        // therefore unobservable.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task)
        };
        self.pool.push_task(task);
    }

    /// How many spawned tasks have not yet completed (0 on a serial pool, where
    /// tasks run inline inside `spawn`).
    pub fn pending_tasks(&self) -> usize {
        self.state.pending()
    }
}

pub(crate) fn run_scope<'pool, F, R>(pool: &'pool ThreadPool, f: F) -> R
where
    F: FnOnce(&Scope<'pool>) -> R,
{
    let state = Arc::new(ScopeState::new());
    let scope = Scope {
        pool,
        state: Arc::clone(&state),
        _invariant: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // The structured-lifetime guarantee: every spawned task finishes before we
    // return, whether `f` succeeded or panicked mid-spawn.
    pool.wait_for_scope(&state);
    if let Some(payload) = state.take_panic() {
        resume_unwind(payload);
    }
    match result {
        Ok(value) => value,
        Err(payload) => resume_unwind(payload),
    }
}
