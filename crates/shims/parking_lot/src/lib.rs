//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim provides the two
//! primitives the workspace uses — [`Mutex`] and [`RwLock`] — with `parking_lot`'s
//! poison-free API (`lock()`/`read()`/`write()` return guards directly), implemented
//! over `std::sync`.  A poisoned std lock (a panic while held) is recovered rather
//! than propagated, matching `parking_lot`'s behavior of not poisoning at all.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_exclusive_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut m = Mutex::new(5);
        *m.get_mut() = 6;
        assert_eq!(m.into_inner(), 6);
        let mut l = RwLock::new(7);
        *l.get_mut() = 8;
        assert_eq!(l.into_inner(), 8);
    }
}
