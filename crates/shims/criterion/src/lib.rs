//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so bench targets written against
//! the criterion API compile and run against this minimal harness instead.  It keeps
//! the API shape (`Criterion`, `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `criterion_group!`/`criterion_main!`) but replaces the statistics
//! engine with a plain calibrated-loop timer: each benchmark is warmed up, the
//! iteration count is scaled so one sample takes a measurable slice of the
//! measurement time, and the per-iteration mean / min / p50 / p95 / p99 across
//! samples is printed (percentiles are nearest-rank over the per-sample means, so
//! tail numbers stay honest about the sample count).
//! Good enough to compare order-of-magnitude behavior offline; swap in real criterion
//! when a registry is reachable.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter, `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Total time budget the samples of one benchmark aim to fill.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(self.sample_size, self.measurement_time, |b| f(b));
        print_result(&id.to_string(), &stats, None);
        self
    }
}

/// A group of benchmarks sharing throughput annotation and configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_bench(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        print_result(&format!("{}/{}", self.name, id), &stats, self.throughput);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_bench(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            |b| f(b),
        );
        print_result(&format!("{}/{}", self.name, id), &stats, self.throughput);
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct BenchStats {
    mean_ns: f64,
    min_ns: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
    samples: usize,
}

/// Nearest-rank percentile over an ascending-sorted slice (`p` in 0..=100).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) -> BenchStats {
    // Calibration: find an iteration count whose sample takes a measurable slice of
    // the measurement budget.
    let mut iters = 1u64;
    let per_sample = measurement_time.div_f64(sample_size as f64);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample.div_f64(4.0) || b.elapsed >= Duration::from_millis(250) {
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if per_iter > 0.0 {
                let target = per_sample.as_secs_f64() / per_iter;
                iters = (target.ceil() as u64).clamp(1, iters.saturating_mul(1_000));
            }
            break;
        }
        // A closure that never calls `b.iter` (e.g. an early return) leaves elapsed
        // at zero forever; bail out instead of calibrating indefinitely.
        if b.elapsed.is_zero() && iters >= 1 << 20 {
            iters = 1;
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut samples_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean_ns = samples_ns.iter().sum::<f64>() / sample_size as f64;
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    BenchStats {
        mean_ns,
        min_ns: samples_ns.first().copied().unwrap_or(0.0),
        p50_ns: percentile(&samples_ns, 50.0),
        p95_ns: percentile(&samples_ns, 95.0),
        p99_ns: percentile(&samples_ns, 99.0),
        samples: sample_size,
    }
}

fn print_result(id: &str, stats: &BenchStats, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            "  {:>12.0} elem/s",
            n as f64 / (stats.mean_ns / 1e9)
        ),
        Throughput::Bytes(n) => format!(
            "  {:>12.1} MiB/s",
            n as f64 / (1024.0 * 1024.0) / (stats.mean_ns / 1e9)
        ),
    });
    println!(
        "  {id:<40} mean {:>10} min {:>10} p50 {:>10} p95 {:>10} p99 {:>10} ({} samples){}",
        format_ns(stats.mean_ns),
        format_ns(stats.min_ns),
        format_ns(stats.p50_ns),
        format_ns(stats.p95_ns),
        format_ns(stats.p99_ns),
        stats.samples,
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Mirrors `criterion::black_box` (re-export of the std hint).
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            ran = true;
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn percentiles_use_nearest_rank_over_sorted_samples() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 50.0), 51.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn run_bench_orders_min_p50_p95_p99() {
        let stats = run_bench(5, Duration::from_millis(20), |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        assert!(stats.min_ns <= stats.p50_ns);
        assert!(stats.p50_ns <= stats.p95_ns);
        assert!(stats.p95_ns <= stats.p99_ns);
        assert_eq!(stats.samples, 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn macros_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
            targets = target
        }
        benches();
    }
}
