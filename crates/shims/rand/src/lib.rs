//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! small slice of the `rand` 0.8 API its code actually uses: [`rngs::StdRng`] with
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`seq::SliceRandom`] (`shuffle`, `choose`) and [`thread_rng`].
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically sound for the
//! data-generation / weight-initialization workloads here.  It is **not** the same
//! stream as the real `StdRng` (ChaCha12), so seeds produce different (but still
//! reproducible) sequences than upstream `rand` would.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from the standard (uniform) distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`high` exclusive).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from `[low, high]` (`high` inclusive).  Like `rand` 0.8, a
    /// degenerate range `x..=x` returns `x` rather than panicking.
    fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                // Widening-multiply range reduction (Lemire); bias is < 2^-64 per draw,
                // immaterial for the simulation workloads in this repo.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }

            fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with an empty range");
                // The +1 happens in 128-bit space, so `low..=<type>::MAX` keeps its
                // upper bound reachable instead of silently saturating.
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let unit = <$t>::sample_standard(rng);
                low + unit * (high - low)
            }

            fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with an empty range");
                if low == high {
                    return low;
                }
                // For floats the closed and half-open intervals are measure-identical;
                // sample [low, high) like upstream rand's UniformFloat.
                <$t>::sample_in(rng, low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_in_inclusive(rng, start, end)
    }
}

/// The user-facing generator extension trait, blanket-implemented for every
/// [`RngCore`] just like upstream `rand`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator, the workspace's stand-in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// The generator returned by [`crate::thread_rng`].
    pub type ThreadRng = StdRng;
}

/// Returns a generator seeded from the current time — the offline stand-in for
/// `rand::thread_rng` (used only by tests that want fresh fuzz inputs per run).
pub fn thread_rng() -> rngs::ThreadRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos ^ 0x9E3779B97F4A7C15)
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..5);
            assert!(v < 5);
            let w: u64 = rng.gen_range(1..=7u64);
            assert!((1..=7).contains(&w));
            let f: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let d: f64 = rng.gen_range(0.0..3.5);
            assert!((0.0..3.5).contains(&d));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_bounds() {
        let mut rng = StdRng::seed_from_u64(21);
        // Degenerate range returns the value (rand-0.8 behavior), no panic.
        assert_eq!(rng.gen_range(5..=5u32), 5);
        assert_eq!(rng.gen_range(1.5..=1.5f64), 1.5);
        // The inclusive upper bound is actually reachable — including type::MAX.
        let mut saw_max = false;
        let mut saw_min = false;
        for _ in 0..5_000 {
            let v: u8 = rng.gen_range(250..=u8::MAX);
            saw_max |= v == u8::MAX;
            saw_min |= v == 250;
            assert!(v >= 250);
        }
        assert!(saw_max, "u8::MAX never sampled from 250..=MAX");
        assert!(saw_min);
    }

    #[test]
    fn gen_range_covers_the_whole_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_returns_an_element() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
