//! Self-describing compressed frames with integrity checking.
//!
//! Partitions written to the simulated disk are wrapped in a frame that records which
//! codec produced them, the original length and an FNV-1a checksum of the compressed
//! payload.  This is what lets the buffer pool deserialize a partition without knowing
//! out-of-band how it was compressed, and what turns silent corruption into an error
//! instead of wrong query answers.
//!
//! Layout: `magic "DMFR" | codec tag u8 | varint record_width | varint original_len |
//! varint payload_len | u64 checksum | payload`.

use crate::codec::Codec;
use crate::varint;
use crate::{fnv1a64, CompressError};

const MAGIC: &[u8; 4] = b"DMFR";

/// Compresses `input` with `codec` and wraps it in a frame.
pub fn compress_frame(codec: &Codec, input: &[u8]) -> Vec<u8> {
    let payload = codec.compress(input);
    let record_width = match codec {
        Codec::Dictionary { record_width } => *record_width,
        _ => 0,
    };
    let mut out = Vec::with_capacity(payload.len() + 32);
    out.extend_from_slice(MAGIC);
    out.push(codec.tag());
    varint::write_u64(&mut out, record_width as u64);
    varint::write_u64(&mut out, input.len() as u64);
    varint::write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Unwraps and decompresses a frame produced by [`compress_frame`].
pub fn decompress_frame(frame: &[u8]) -> crate::Result<Vec<u8>> {
    if frame.len() < 5 || &frame[..4] != MAGIC {
        return Err(CompressError::Corrupt("bad frame magic".into()));
    }
    let tag = frame[4];
    let (record_width, pos) = varint::read_u64(frame, 5)?;
    let (original_len, pos) = varint::read_u64(frame, pos)?;
    let (payload_len, pos) = varint::read_u64(frame, pos)?;
    let payload_len = payload_len as usize;
    if frame.len() < pos + 8 + payload_len {
        return Err(CompressError::Corrupt("frame payload truncated".into()));
    }
    let checksum = u64::from_le_bytes(frame[pos..pos + 8].try_into().expect("8 bytes"));
    let payload = &frame[pos + 8..pos + 8 + payload_len];
    if fnv1a64(payload) != checksum {
        return Err(CompressError::Corrupt("frame checksum mismatch".into()));
    }
    let codec = Codec::from_tag(tag, record_width as usize)
        .ok_or_else(|| CompressError::Corrupt(format!("unknown codec tag {tag}")))?;
    let out = codec.decompress(payload)?;
    if out.len() != original_len as usize {
        return Err(CompressError::Corrupt(format!(
            "frame declared {original_len} bytes but decoded {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Reads only the header of a frame, returning `(codec, original_len, payload_len)`.
/// The buffer pool uses this to account for sizes without decompressing.
pub fn frame_info(frame: &[u8]) -> crate::Result<(Codec, usize, usize)> {
    if frame.len() < 5 || &frame[..4] != MAGIC {
        return Err(CompressError::Corrupt("bad frame magic".into()));
    }
    let tag = frame[4];
    let (record_width, pos) = varint::read_u64(frame, 5)?;
    let (original_len, pos) = varint::read_u64(frame, pos)?;
    let (payload_len, _) = varint::read_u64(frame, pos)?;
    let codec = Codec::from_tag(tag, record_width as usize)
        .ok_or_else(|| CompressError::Corrupt(format!("unknown codec tag {tag}")))?;
    Ok((codec, original_len as usize, payload_len as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_for_every_codec() {
        let data: Vec<u8> = (0..5000u32).flat_map(|i| [(i % 11) as u8, (i % 3) as u8]).collect();
        for codec in Codec::paper_sweep(2) {
            let frame = compress_frame(&codec, &data);
            let restored = decompress_frame(&frame).unwrap();
            assert_eq!(restored, data, "codec {codec:?}");
            let (decoded_codec, original, payload) = frame_info(&frame).unwrap();
            assert_eq!(decoded_codec.tag(), codec.tag());
            assert_eq!(original, data.len());
            assert!(payload <= frame.len());
        }
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let data = vec![3u8; 4096];
        let mut frame = compress_frame(&Codec::Lz, &data);
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        let err = decompress_frame(&frame).unwrap_err();
        assert!(matches!(err, CompressError::Corrupt(_)));
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let data = vec![1u8; 100];
        let frame = compress_frame(&Codec::None, &data);
        assert!(decompress_frame(&frame[..10]).is_err());
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(decompress_frame(&bad).is_err());
        assert!(frame_info(&bad).is_err());
        assert!(decompress_frame(&[]).is_err());
    }

    #[test]
    fn empty_input_frames_round_trip() {
        for codec in Codec::paper_sweep(8) {
            let frame = compress_frame(&codec, &[]);
            assert_eq!(decompress_frame(&frame).unwrap(), Vec::<u8>::new());
        }
    }
}
