//! LZSS compression with hash-chain match search.
//!
//! This is the dictionary-window stage behind three of the codecs:
//!
//! * [`Codec::Lz`](crate::Codec::Lz) — this stage alone with a shallow match search
//!   (fast; the Z-Standard stand-in),
//! * [`Codec::Deflate`](crate::Codec::Deflate) — this stage with a 32 KiB window plus a
//!   Huffman entropy stage (the gzip stand-in),
//! * [`Codec::LzHuff`](crate::Codec::LzHuff) — this stage with a 1 MiB window, deeper
//!   match search and the Huffman stage (the LZMA stand-in: slowest, best ratio).
//!
//! The token format is byte-aligned for decoding speed: a control byte carries eight
//! literal/match flags, literals are raw bytes, and matches are `(distance, length)`
//! pairs encoded as varints.

use crate::varint;
use crate::CompressError;

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 262;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Tuning parameters for the match search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzConfig {
    /// Sliding-window size in bytes; matches can only reference this far back.
    pub window: usize,
    /// Maximum number of hash-chain candidates examined per position.
    pub max_chain: usize,
    /// Stop searching once a match at least this long is found.
    pub good_enough: usize,
}

impl LzConfig {
    /// Fast profile (Z-Standard stand-in): 64 KiB window, shallow chains.
    pub fn fast() -> Self {
        LzConfig {
            window: 64 * 1024,
            max_chain: 16,
            good_enough: 64,
        }
    }

    /// Balanced profile (gzip stand-in): 32 KiB window, moderate chains.
    pub fn balanced() -> Self {
        LzConfig {
            window: 32 * 1024,
            max_chain: 64,
            good_enough: 128,
        }
    }

    /// Thorough profile (LZMA stand-in): 1 MiB window, deep chains.
    pub fn thorough() -> Self {
        LzConfig {
            window: 1024 * 1024,
            max_chain: 256,
            good_enough: MAX_MATCH,
        }
    }
}

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` with the given configuration.
///
/// Layout: `varint original_len | blocks`, where each block starts with a control byte
/// whose bits (LSB first) say literal (0) or match (1) for the next eight tokens.
pub fn compress(input: &[u8], config: &LzConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::write_u64(&mut out, input.len() as u64);
    if input.is_empty() {
        return out;
    }
    // Hash chains: head[h] is the most recent position with hash h, prev[i % window]
    // links to the previous position with the same hash.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let window = config.window.max(1024);
    let mut prev = vec![usize::MAX; window];

    let mut pos = 0usize;
    let mut control_pos = out.len();
    out.push(0u8);
    let mut control_bit = 0u32;
    let mut control: u8 = 0;

    macro_rules! flush_control {
        () => {
            if control_bit == 8 {
                out[control_pos] = control;
                control_pos = out.len();
                out.push(0u8);
                control = 0;
                control_bit = 0;
            }
        };
    }

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(input, pos);
            let mut candidate = head[h];
            let mut chain = 0usize;
            let window_start = pos.saturating_sub(window);
            while candidate != usize::MAX
                && candidate >= window_start
                && candidate < pos
                && chain < config.max_chain
            {
                // Compare.
                let max_len = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0usize;
                while len < max_len && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - candidate;
                    if len >= config.good_enough {
                        break;
                    }
                }
                candidate = prev[candidate % window];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            // Emit a match token.
            control |= 1 << control_bit;
            control_bit += 1;
            varint::write_u64(&mut out, best_dist as u64);
            varint::write_u64(&mut out, (best_len - MIN_MATCH) as u64);
            // Insert hash entries for the matched region (sparsely, every position,
            // capped to keep compression O(n)).
            let end = (pos + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut p = pos;
            while p < end {
                let h = hash4(input, p);
                prev[p % window] = head[h];
                head[h] = p;
                p += 1;
            }
            pos += best_len;
        } else {
            // Literal.
            control_bit += 1;
            out.push(input[pos]);
            if pos + MIN_MATCH <= input.len() {
                let h = hash4(input, pos);
                prev[pos % window] = head[h];
                head[h] = pos;
            }
            pos += 1;
        }
        flush_control!();
    }
    out[control_pos] = control;
    // If the final control byte slot was allocated but no tokens were written into it,
    // it is harmless: the decoder stops at original_len.
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> crate::Result<Vec<u8>> {
    let (original_len, mut pos) = varint::read_u64(input, 0)?;
    let original_len = original_len as usize;
    let mut out = Vec::with_capacity(original_len);
    if original_len == 0 {
        return Ok(out);
    }
    let mut control: u8 = 0;
    let mut control_bit = 8u32;
    while out.len() < original_len {
        if control_bit == 8 {
            control = *input
                .get(pos)
                .ok_or_else(|| CompressError::Corrupt("missing control byte".into()))?;
            pos += 1;
            control_bit = 0;
        }
        let is_match = (control >> control_bit) & 1 == 1;
        control_bit += 1;
        if is_match {
            let (dist, next) = varint::read_u64(input, pos)?;
            pos = next;
            let (len_extra, next) = varint::read_u64(input, pos)?;
            pos = next;
            let dist = dist as usize;
            let len = len_extra as usize + MIN_MATCH;
            if dist == 0 || dist > out.len() {
                return Err(CompressError::Corrupt(format!(
                    "match distance {dist} exceeds output length {}",
                    out.len()
                )));
            }
            if out.len() + len > original_len {
                return Err(CompressError::Corrupt("match overflows declared length".into()));
            }
            let start = out.len() - dist;
            // Overlapping copies are the point of LZ: copy byte by byte.
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        } else {
            let b = *input
                .get(pos)
                .ok_or_else(|| CompressError::Corrupt("missing literal byte".into()))?;
            pos += 1;
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_with(data: &[u8], config: &LzConfig) {
        let compressed = compress(data, config);
        let restored = decompress(&compressed).unwrap();
        assert_eq!(restored, data, "{} bytes, config {config:?}", data.len());
    }

    fn round_trip(data: &[u8]) {
        for config in [LzConfig::fast(), LzConfig::balanced(), LzConfig::thorough()] {
            round_trip_with(data, &config);
        }
    }

    #[test]
    fn round_trips_varied_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcabcabcabcabcabcabc");
        round_trip(&vec![7u8; 10_000]);
        round_trip(b"the quick brown fox jumps over the lazy dog. the quick brown fox!");
        let structured: Vec<u8> = (0..30_000u32)
            .flat_map(|i| ((i % 100) as u16).to_le_bytes())
            .collect();
        round_trip(&structured);
    }

    #[test]
    fn repetitive_data_compresses_strongly() {
        let data = b"ORDER|SHIPPING|IN PROCESS|".repeat(2000);
        let compressed = compress(&data, &LzConfig::fast());
        assert!(
            compressed.len() < data.len() / 10,
            "{} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn thorough_profile_compresses_at_least_as_well_as_fast() {
        // Structured tabular-like data with long-range repetition.
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(format!("row-{}|status-{}|", i % 37, i % 5).as_bytes());
        }
        let fast = compress(&data, &LzConfig::fast());
        let thorough = compress(&data, &LzConfig::thorough());
        assert!(thorough.len() <= fast.len() + 16, "fast {} thorough {}", fast.len(), thorough.len());
    }

    #[test]
    fn random_data_does_not_explode() {
        use rand::Rng;
        let mut rng = rand::thread_rng();
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let compressed = compress(&data, &LzConfig::fast());
        // One control bit per literal: overhead bounded by ~1/8 plus the header.
        assert!(compressed.len() < data.len() + data.len() / 7 + 32);
        round_trip_with(&data, &LzConfig::fast());
    }

    #[test]
    fn overlapping_match_is_handled() {
        // "aaaa..." generates matches with distance 1 and long lengths.
        let data = vec![b'a'; 1000];
        round_trip(&data);
    }

    #[test]
    fn corrupt_buffers_rejected() {
        let data = b"abcdabcdabcdabcd-abcdabcdabcdabcd".repeat(20);
        let compressed = compress(&data, &LzConfig::fast());
        assert!(decompress(&compressed[..compressed.len() / 3]).is_err());
        assert!(decompress(&[]).is_err());
        // A match distance that points before the start of output.
        let mut bad = Vec::new();
        varint::write_u64(&mut bad, 10);
        bad.push(0b0000_0001); // first token is a match
        varint::write_u64(&mut bad, 5); // distance 5 with empty output
        varint::write_u64(&mut bad, 0);
        assert!(decompress(&bad).is_err());
    }
}
