//! The codec registry: one enum that names every compression algorithm used anywhere
//! in the workspace, with uniform `compress`/`decompress` entry points.
//!
//! The paper's baseline matrix is built by crossing storage layouts (array, hash) with
//! codecs (none, Dictionary, Gzip, Z-Standard, LZMA); DeepMapping itself compresses
//! auxiliary-table partitions with the "Z" and "L" codecs.  Benchmarks sweep over this
//! enum, so it is the single place where codec naming matches the paper's labels.

use crate::{dictionary, huffman, lz, rle};

/// Every codec available to partitions and auxiliary structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression (the paper's AB / HB baselines).
    None,
    /// Record-level dictionary encoding ("D", ABC-D).
    Dictionary {
        /// Fixed record width in bytes used to segment the buffer.
        record_width: usize,
    },
    /// Byte run-length encoding (building block; not a paper baseline by itself).
    Rle,
    /// LZSS with a fast, shallow match search — the Z-Standard stand-in ("Z").
    Lz,
    /// LZSS + Huffman with a 32 KiB window — the gzip stand-in ("G").
    Deflate,
    /// LZSS (deep search, large window) + Huffman — the LZMA stand-in ("L").
    LzHuff,
}

impl Codec {
    /// The suffix the paper uses for this codec in system names (e.g. `ABC-Z`).
    pub fn paper_suffix(&self) -> &'static str {
        match self {
            Codec::None => "",
            Codec::Dictionary { .. } => "D",
            Codec::Rle => "R",
            Codec::Lz => "Z",
            Codec::Deflate => "G",
            Codec::LzHuff => "L",
        }
    }

    /// Stable numeric tag for serialization in frames and partition headers.
    pub fn tag(&self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Dictionary { .. } => 1,
            Codec::Rle => 2,
            Codec::Lz => 3,
            Codec::Deflate => 4,
            Codec::LzHuff => 5,
        }
    }

    /// Inverse of [`Codec::tag`] (dictionary record width must be supplied separately).
    pub fn from_tag(tag: u8, record_width: usize) -> Option<Self> {
        match tag {
            0 => Some(Codec::None),
            1 => Some(Codec::Dictionary { record_width }),
            2 => Some(Codec::Rle),
            3 => Some(Codec::Lz),
            4 => Some(Codec::Deflate),
            5 => Some(Codec::LzHuff),
            _ => None,
        }
    }

    /// Compresses a buffer.
    pub fn compress(&self, input: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => input.to_vec(),
            Codec::Dictionary { record_width } => dictionary::compress(input, *record_width),
            Codec::Rle => rle::compress(input),
            Codec::Lz => lz::compress(input, &lz::LzConfig::fast()),
            Codec::Deflate => {
                let stage1 = lz::compress(input, &lz::LzConfig::balanced());
                huffman::compress(&stage1)
            }
            Codec::LzHuff => {
                let stage1 = lz::compress(input, &lz::LzConfig::thorough());
                huffman::compress(&stage1)
            }
        }
    }

    /// Decompresses a buffer produced by [`Codec::compress`] with the same codec.
    pub fn decompress(&self, input: &[u8]) -> crate::Result<Vec<u8>> {
        match self {
            Codec::None => Ok(input.to_vec()),
            Codec::Dictionary { .. } => dictionary::decompress(input),
            Codec::Rle => rle::decompress(input),
            Codec::Lz => lz::decompress(input),
            Codec::Deflate | Codec::LzHuff => {
                let stage1 = huffman::decompress(input)?;
                lz::decompress(&stage1)
            }
        }
    }

    /// All codecs the paper's baseline sweep uses, with a record width for the
    /// dictionary codec.
    pub fn paper_sweep(record_width: usize) -> Vec<Codec> {
        vec![
            Codec::None,
            Codec::Dictionary { record_width },
            Codec::Deflate,
            Codec::Lz,
            Codec::LzHuff,
        ]
    }
}

/// Outcome of compressing a buffer, used by benchmarks and partition statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Measures the effect of `codec` on `input` without keeping the output.
    pub fn measure(codec: &Codec, input: &[u8]) -> Self {
        let compressed = codec.compress(input);
        CompressionStats {
            original_bytes: input.len(),
            compressed_bytes: compressed.len(),
        }
    }

    /// Compression ratio as `compressed / original` (1.0 for empty input), matching
    /// the paper's convention where lower is better and uncompressed data sits at 1.0.
    pub fn ratio(&self) -> f64 {
        if self.original_bytes == 0 {
            return 1.0;
        }
        self.compressed_bytes as f64 / self.original_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tabular_payload() -> Vec<u8> {
        // Looks like a serialized categorical partition: repeated small records.
        (0..20_000u32)
            .flat_map(|i| {
                let status = (i % 3) as u8;
                let typ = (i % 5) as u8;
                [status, typ, 0, (i % 7) as u8]
            })
            .collect()
    }

    #[test]
    fn all_codecs_round_trip() {
        let data = tabular_payload();
        for codec in Codec::paper_sweep(4).into_iter().chain([Codec::Rle]) {
            let compressed = codec.compress(&data);
            let restored = codec.decompress(&compressed).unwrap();
            assert_eq!(restored, data, "codec {codec:?}");
        }
    }

    #[test]
    fn empty_input_round_trips_for_all_codecs() {
        for codec in Codec::paper_sweep(8).into_iter().chain([Codec::Rle]) {
            let compressed = codec.compress(&[]);
            assert_eq!(codec.decompress(&compressed).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn codec_ordering_matches_paper_positioning() {
        // On structured tabular data: LzHuff ("L") compresses at least as well as Lz
        // ("Z"), and both beat no compression.  This relative ordering is what the
        // paper's tables rely on.
        let data = tabular_payload();
        let none = CompressionStats::measure(&Codec::None, &data).ratio();
        let z = CompressionStats::measure(&Codec::Lz, &data).ratio();
        let l = CompressionStats::measure(&Codec::LzHuff, &data).ratio();
        let g = CompressionStats::measure(&Codec::Deflate, &data).ratio();
        assert!((none - 1.0).abs() < 1e-9);
        assert!(z < 0.7, "Lz ratio {z}");
        assert!(l <= z + 0.01, "LzHuff {l} should be <= Lz {z}");
        assert!(g <= none, "Deflate {g}");
    }

    #[test]
    fn tags_round_trip() {
        for codec in [
            Codec::None,
            Codec::Dictionary { record_width: 16 },
            Codec::Rle,
            Codec::Lz,
            Codec::Deflate,
            Codec::LzHuff,
        ] {
            assert_eq!(Codec::from_tag(codec.tag(), 16), Some(codec));
        }
        assert_eq!(Codec::from_tag(77, 1), None);
    }

    #[test]
    fn ratio_of_empty_input_is_one() {
        let stats = CompressionStats {
            original_bytes: 0,
            compressed_bytes: 0,
        };
        assert_eq!(stats.ratio(), 1.0);
    }
}
