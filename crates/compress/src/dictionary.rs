//! Dictionary encoding (the ABC-D baseline codec).
//!
//! Byte-Dictionary Encoding in the paper replaces repeated cell values with small
//! integer codes.  Operating at the byte-string level here: the buffer is split into
//! fixed-size records (the caller supplies the record width, typically the serialized
//! tuple width), distinct records become dictionary entries, and the payload stores
//! one bit-packed code per record.  Buffers that are not an exact multiple of the
//! record width keep the remainder as a verbatim tail.
//!
//! If the dictionary would not pay for itself (too many distinct records) the encoder
//! falls back to storing the input verbatim — mirroring how dictionary encoding
//! degrades on high-cardinality columns, which is exactly the behaviour the TPC-DS
//! experiments of the paper rely on.

use crate::bitpack;
use crate::varint;
use crate::CompressError;
use std::collections::HashMap;

const MODE_VERBATIM: u8 = 0;
const MODE_DICT: u8 = 1;

/// Encodes `input` with a record-level dictionary.  `record_width` is the fixed record
/// size in bytes used to segment the buffer; callers typically pass the serialized row
/// width of the partition being compressed.
pub fn compress(input: &[u8], record_width: usize) -> Vec<u8> {
    let width = record_width.max(1);
    let records = input.len() / width;
    let tail_start = records * width;

    // Build the dictionary.
    let mut dict: HashMap<&[u8], u64> = HashMap::new();
    let mut entries: Vec<&[u8]> = Vec::new();
    let mut codes = Vec::with_capacity(records);
    for r in 0..records {
        let rec = &input[r * width..(r + 1) * width];
        let next_code = entries.len() as u64;
        let code = *dict.entry(rec).or_insert_with(|| {
            entries.push(rec);
            next_code
        });
        codes.push(code);
    }

    // Estimate whether the dictionary pays off.
    let bits = bitpack::bits_for(entries.len().saturating_sub(1) as u64);
    let dict_bytes = entries.len() * width;
    let payload_bits = records * bits as usize;
    let estimated = 16 + dict_bytes + payload_bits / 8 + (input.len() - tail_start);
    if entries.is_empty() || estimated >= input.len() + 8 {
        let mut out = Vec::with_capacity(input.len() + 8);
        out.push(MODE_VERBATIM);
        varint::write_u64(&mut out, input.len() as u64);
        out.extend_from_slice(input);
        return out;
    }

    let mut out = Vec::with_capacity(estimated + 32);
    out.push(MODE_DICT);
    varint::write_u64(&mut out, input.len() as u64);
    varint::write_u64(&mut out, width as u64);
    varint::write_u64(&mut out, entries.len() as u64);
    for rec in &entries {
        out.extend_from_slice(rec);
    }
    let packed = bitpack::pack(&codes, bits).expect("codes fit the computed width");
    varint::write_u64(&mut out, packed.len() as u64);
    out.extend_from_slice(&packed);
    out.extend_from_slice(&input[tail_start..]);
    out
}

/// Decodes a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> crate::Result<Vec<u8>> {
    let mode = *input
        .first()
        .ok_or_else(|| CompressError::Corrupt("empty dictionary buffer".into()))?;
    match mode {
        MODE_VERBATIM => {
            let (len, pos) = varint::read_u64(input, 1)?;
            let len = len as usize;
            if input.len() < pos + len {
                return Err(CompressError::Corrupt("verbatim payload truncated".into()));
            }
            Ok(input[pos..pos + len].to_vec())
        }
        MODE_DICT => {
            let (total_len, pos) = varint::read_u64(input, 1)?;
            let (width, pos) = varint::read_u64(input, pos)?;
            let (n_entries, mut pos) = varint::read_u64(input, pos)?;
            let total_len = total_len as usize;
            let width = width as usize;
            let n_entries = n_entries as usize;
            if width == 0 {
                return Err(CompressError::Corrupt("zero record width".into()));
            }
            let dict_bytes = n_entries
                .checked_mul(width)
                .ok_or_else(|| CompressError::Corrupt("dictionary size overflow".into()))?;
            if input.len() < pos + dict_bytes {
                return Err(CompressError::Corrupt("dictionary entries truncated".into()));
            }
            let dict = &input[pos..pos + dict_bytes];
            pos += dict_bytes;
            let (packed_len, pos) = varint::read_u64(input, pos)?;
            let packed_len = packed_len as usize;
            if input.len() < pos + packed_len {
                return Err(CompressError::Corrupt("code payload truncated".into()));
            }
            let codes = bitpack::unpack(&input[pos..pos + packed_len])?;
            let tail = &input[pos + packed_len..];
            let mut out = Vec::with_capacity(total_len);
            for &code in &codes {
                let code = code as usize;
                if code >= n_entries {
                    return Err(CompressError::Corrupt(format!(
                        "code {code} out of range for {n_entries} dictionary entries"
                    )));
                }
                out.extend_from_slice(&dict[code * width..(code + 1) * width]);
            }
            out.extend_from_slice(tail);
            if out.len() != total_len {
                return Err(CompressError::Corrupt(format!(
                    "dictionary decode produced {} bytes, expected {total_len}",
                    out.len()
                )));
            }
            Ok(out)
        }
        other => Err(CompressError::Corrupt(format!("unknown dictionary mode {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], width: usize) {
        let compressed = compress(data, width);
        let restored = decompress(&compressed).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn round_trips_varied_inputs() {
        round_trip(b"", 4);
        round_trip(b"abc", 4); // shorter than a record: verbatim tail only
        round_trip(b"aaaabbbbaaaabbbbaaaa", 4);
        round_trip(&vec![1u8; 1000], 8);
        let rows: Vec<u8> = (0..500u32).flat_map(|i| [(i % 3) as u8, 0, (i % 2) as u8, 7]).collect();
        round_trip(&rows, 4);
        // Tail not a multiple of the record width.
        let mut with_tail = rows.clone();
        with_tail.extend_from_slice(&[9, 9, 9]);
        round_trip(&with_tail, 4);
    }

    #[test]
    fn low_cardinality_records_compress_well() {
        // 10_000 records of width 8 drawn from only 4 distinct values.
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| {
                let v = (i % 4) as u8;
                [v, v, v, v, v, v, v, v]
            })
            .collect();
        let compressed = compress(&data, 8);
        assert!(
            compressed.len() < data.len() / 10,
            "{} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn high_cardinality_falls_back_to_verbatim() {
        let data: Vec<u8> = (0..40_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let compressed = compress(&data, 4);
        assert_eq!(compressed[0], MODE_VERBATIM);
        assert!(compressed.len() <= data.len() + 16);
        round_trip(&data, 4);
    }

    #[test]
    fn corrupt_buffers_rejected() {
        let data: Vec<u8> = (0..100u8).flat_map(|i| [i % 5, i % 3]).collect();
        let compressed = compress(&data, 2);
        assert!(decompress(&compressed[..compressed.len() / 2]).is_err());
        assert!(decompress(&[]).is_err());
        let mut bad = compressed.clone();
        bad[0] = 9;
        assert!(decompress(&bad).is_err());
    }
}
