//! Byte-level run-length encoding.
//!
//! Columnar partitions of low-cardinality categorical data contain long runs of the
//! same byte once dictionary-encoded, so RLE is used both as a standalone cheap codec
//! and as a pre-pass inside the dictionary codec.  The format alternates
//! `(varint run_length, byte)` pairs for runs of length ≥ 4 and literal segments
//! prefixed by their length; a 1-byte tag distinguishes the two.

use crate::varint;
use crate::CompressError;

const TAG_RUN: u8 = 0;
const TAG_LITERAL: u8 = 1;
const MIN_RUN: usize = 4;

/// Run-length encodes a byte buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    varint::write_u64(&mut out, input.len() as u64);
    let mut i = 0usize;
    let mut literal_start = 0usize;
    while i < input.len() {
        // Measure the run starting at i.
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= MIN_RUN {
            // Flush pending literals.
            if literal_start < i {
                let lit = &input[literal_start..i];
                out.push(TAG_LITERAL);
                varint::write_u64(&mut out, lit.len() as u64);
                out.extend_from_slice(lit);
            }
            out.push(TAG_RUN);
            varint::write_u64(&mut out, run as u64);
            out.push(b);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    if literal_start < input.len() {
        let lit = &input[literal_start..];
        out.push(TAG_LITERAL);
        varint::write_u64(&mut out, lit.len() as u64);
        out.extend_from_slice(lit);
    }
    out
}

/// Decodes a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> crate::Result<Vec<u8>> {
    let (expected_len, mut pos) = varint::read_u64(input, 0)?;
    let expected_len = expected_len as usize;
    let mut out = Vec::with_capacity(expected_len);
    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        match tag {
            TAG_RUN => {
                let (run, next) = varint::read_u64(input, pos)?;
                pos = next;
                let byte = *input
                    .get(pos)
                    .ok_or_else(|| CompressError::Corrupt("run byte missing".into()))?;
                pos += 1;
                if out.len() + run as usize > expected_len {
                    return Err(CompressError::Corrupt("run overflows declared length".into()));
                }
                out.resize(out.len() + run as usize, byte);
            }
            TAG_LITERAL => {
                let (len, next) = varint::read_u64(input, pos)?;
                pos = next;
                let len = len as usize;
                if pos + len > input.len() {
                    return Err(CompressError::Corrupt("literal segment truncated".into()));
                }
                if out.len() + len > expected_len {
                    return Err(CompressError::Corrupt(
                        "literal overflows declared length".into(),
                    ));
                }
                out.extend_from_slice(&input[pos..pos + len]);
                pos += len;
            }
            other => {
                return Err(CompressError::Corrupt(format!("unknown RLE tag {other}")));
            }
        }
    }
    if out.len() != expected_len {
        return Err(CompressError::Corrupt(format!(
            "RLE produced {} bytes but header declared {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let restored = decompress(&compressed).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn round_trips_varied_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(&[0u8; 1000]);
        round_trip(b"aaaabbbbccccabcabcabc");
        let mixed: Vec<u8> = (0..500).map(|i| if i % 7 < 5 { 9 } else { (i % 256) as u8 }).collect();
        round_trip(&mixed);
    }

    #[test]
    fn long_runs_compress_well() {
        let data = vec![42u8; 100_000];
        let compressed = compress(&data);
        assert!(compressed.len() < 20, "compressed to {} bytes", compressed.len());
    }

    #[test]
    fn incompressible_data_does_not_explode() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) % 251) as u8)
            .collect();
        let compressed = compress(&data);
        // Worst case adds only the header and a handful of literal tags.
        assert!(compressed.len() < data.len() + 64);
    }

    #[test]
    fn corrupt_buffers_rejected() {
        let data = vec![7u8; 100];
        let mut compressed = compress(&data);
        // Truncate.
        assert!(decompress(&compressed[..compressed.len() - 1]).is_err());
        // Unknown tag.
        let header_len = {
            let mut v = Vec::new();
            varint::write_u64(&mut v, 100);
            v.len()
        };
        compressed[header_len] = 99;
        assert!(decompress(&compressed).is_err());
        // Empty input is corrupt (missing header).
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn declared_length_is_enforced() {
        // Build a buffer that claims 4 bytes but encodes a run of 8.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 4);
        buf.push(TAG_RUN);
        varint::write_u64(&mut buf, 8);
        buf.push(1);
        assert!(decompress(&buf).is_err());
    }
}
