//! LEB128-style variable-length integer encoding.
//!
//! Varints are the workhorse of the partition and auxiliary-table formats: keys are
//! delta-encoded and lengths/counts are small, so most integers fit in one or two
//! bytes.  Encoding is the standard 7-bits-per-byte little-endian scheme with the high
//! bit as a continuation flag; signed values use ZigZag.

use crate::CompressError;

/// Appends an unsigned varint to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned varint from `buf` starting at `pos`, returning the value and the
/// new position.
pub fn read_u64(buf: &[u8], mut pos: usize) -> crate::Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(pos)
            .ok_or_else(|| CompressError::Corrupt("varint ran past end of buffer".into()))?;
        pos += 1;
        if shift >= 64 {
            return Err(CompressError::Corrupt("varint longer than 10 bytes".into()));
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
}

/// ZigZag-encodes a signed integer so that small magnitudes (positive or negative)
/// produce small unsigned values.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends a signed varint (ZigZag + LEB128).
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Reads a signed varint.
pub fn read_i64(buf: &[u8], pos: usize) -> crate::Result<(i64, usize)> {
    let (raw, pos) = read_u64(buf, pos)?;
    Ok((zigzag_decode(raw), pos))
}

/// Delta-encodes a sorted (or nearly sorted) sequence of u64s as signed varint deltas
/// prefixed by the element count.
pub fn write_delta_sequence(out: &mut Vec<u8>, values: &[u64]) {
    write_u64(out, values.len() as u64);
    let mut prev = 0i64;
    for &v in values {
        let cur = v as i64;
        write_i64(out, cur - prev);
        prev = cur;
    }
}

/// Inverse of [`write_delta_sequence`].
pub fn read_delta_sequence(buf: &[u8], pos: usize) -> crate::Result<(Vec<u64>, usize)> {
    let (count, mut pos) = read_u64(buf, pos)?;
    if count > buf.len() as u64 * 10 {
        return Err(CompressError::Corrupt(format!(
            "delta sequence claims {count} elements in a {}-byte buffer",
            buf.len()
        )));
    }
    let mut values = Vec::with_capacity(count as usize);
    let mut prev = 0i64;
    for _ in 0..count {
        let (delta, next) = read_i64(buf, pos)?;
        pos = next;
        prev = prev.wrapping_add(delta);
        values.push(prev as u64);
    }
    Ok((values, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_across_magnitudes() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (back, pos) = read_u64(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_use_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 200);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-1000i64, -1, 0, 1, 1000, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, -5, 5, i64::MIN, i64::MAX, -123456789] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (back, _) = read_i64(&buf, 0).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert!(read_u64(&buf[..buf.len() - 1], 0).is_err());
        assert!(read_u64(&[], 0).is_err());
    }

    #[test]
    fn overlong_varint_is_an_error() {
        let buf = vec![0x80u8; 11];
        assert!(read_u64(&buf, 0).is_err());
    }

    #[test]
    fn delta_sequence_round_trip_sorted_and_unsorted() {
        for values in [
            vec![],
            vec![42u64],
            vec![1, 2, 3, 10, 11, 1000],
            vec![5, 3, 9, 1, 7],
            (0..1000u64).map(|v| v * 7 + 3).collect(),
        ] {
            let mut buf = Vec::new();
            write_delta_sequence(&mut buf, &values);
            let (back, pos) = read_delta_sequence(&buf, 0).unwrap();
            assert_eq!(back, values);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn sorted_deltas_are_compact() {
        let values: Vec<u64> = (1_000_000..1_001_000u64).collect();
        let mut buf = Vec::new();
        write_delta_sequence(&mut buf, &values);
        // 1000 consecutive values: ~1 byte per delta plus the first value and count.
        assert!(buf.len() < 1100, "delta sequence took {} bytes", buf.len());
    }
}
