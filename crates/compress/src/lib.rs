//! # dm-compress — compression codecs for DeepMapping and its baselines
//!
//! The DeepMapping evaluation (Section V of the paper) compresses partitions with
//! Z-Standard, LZMA, Gzip and Dictionary Encoding and compares storage/latency against
//! DeepMapping, whose auxiliary table is itself compressed with the same codecs.
//! This crate provides self-contained Rust equivalents so the whole pipeline runs
//! without native libraries:
//!
//! | Paper codec      | This crate          | Positioning preserved                      |
//! |------------------|---------------------|--------------------------------------------|
//! | Z-Standard ("Z") | [`codec::Codec::Lz`]        | fast compress/decompress, medium ratio     |
//! | LZMA ("L")       | [`codec::Codec::LzHuff`]    | slower, best ratio                         |
//! | Gzip ("G")       | [`codec::Codec::Deflate`]   | between the two                            |
//! | Dictionary ("D") | [`codec::Codec::Dictionary`]| cheapest, lowest ratio, no match search    |
//!
//! Lower-level building blocks ([`varint`], [`rle`], [`bitpack`], [`huffman`],
//! [`lz`]) are public because the storage layer and the auxiliary-table format reuse
//! them directly.

pub mod bitpack;
pub mod codec;
pub mod dictionary;
pub mod frame;
pub mod huffman;
pub mod lz;
pub mod rle;
pub mod varint;

pub use codec::{Codec, CompressionStats};
pub use frame::{compress_frame, decompress_frame};

/// Errors produced while compressing or decompressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The compressed buffer is malformed, truncated or fails its checksum.
    Corrupt(String),
    /// The requested codec or parameter is not supported.
    Unsupported(String),
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Corrupt(msg) => write!(f, "corrupt compressed data: {msg}"),
            CompressError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CompressError>;

/// A 64-bit FNV-1a checksum used by the frame format to detect corruption.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The standard CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used by the
/// snapshot/WAL persistence formats to checksum sections and records.  Unlike
/// [`fnv1a64`] (an internal hash), this matches the ubiquitous zlib/`cksum -o3`
/// definition so snapshot files can be validated by external tooling.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_eq!(fnv1a64(b"deepmapping"), fnv1a64(b"deepmapping"));
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vectors() {
        // Reference values from the zlib documentation / RFC 3720 appendix.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
