//! Fixed-width bit packing for small integers.
//!
//! Dictionary-encoded columns hold class codes in `0..cardinality`; packing them at
//! `ceil(log2(cardinality))` bits per code is what gives the "Dictionary Encoding"
//! baseline (ABC-D in the paper) its compression.  Also reused by the existence bit
//! vector serialization.

use crate::varint;
use crate::CompressError;

/// Number of bits needed to represent `max_value` (at least 1).
pub fn bits_for(max_value: u64) -> u32 {
    if max_value == 0 {
        1
    } else {
        64 - max_value.leading_zeros()
    }
}

/// Packs `values` at `bits` bits each (LSB-first within a little-endian bit stream).
/// The header stores the element count and width so [`unpack`] is self-describing.
pub fn pack(values: &[u64], bits: u32) -> crate::Result<Vec<u8>> {
    if bits == 0 || bits > 64 {
        return Err(CompressError::Unsupported(format!(
            "bit width {bits} out of range 1..=64"
        )));
    }
    let limit = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut out = Vec::with_capacity(8 + (values.len() * bits as usize).div_ceil(8));
    varint::write_u64(&mut out, values.len() as u64);
    out.push(bits as u8);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        if v > limit {
            return Err(CompressError::Unsupported(format!(
                "value {v} does not fit in {bits} bits"
            )));
        }
        acc |= v << acc_bits;
        let consumed = (64 - acc_bits).min(bits);
        acc_bits += bits;
        if acc_bits >= 64 {
            out.extend_from_slice(&acc.to_le_bytes());
            acc_bits -= 64;
            acc = if consumed < bits && consumed < 64 {
                v >> consumed
            } else {
                0
            };
        }
    }
    if acc_bits > 0 {
        let bytes = acc_bits.div_ceil(8) as usize;
        out.extend_from_slice(&acc.to_le_bytes()[..bytes]);
    }
    Ok(out)
}

/// Unpacks a buffer produced by [`pack`].
pub fn unpack(buf: &[u8]) -> crate::Result<Vec<u64>> {
    let (count, pos) = varint::read_u64(buf, 0)?;
    let count = count as usize;
    let bits = *buf
        .get(pos)
        .ok_or_else(|| CompressError::Corrupt("bit width byte missing".into()))? as u32;
    if bits == 0 || bits > 64 {
        return Err(CompressError::Corrupt(format!("invalid bit width {bits}")));
    }
    let data = &buf[pos + 1..];
    let needed_bits = count as u64 * bits as u64;
    if (data.len() as u64) * 8 < needed_bits {
        return Err(CompressError::Corrupt(format!(
            "bitpacked payload of {} bytes too small for {count} x {bits}-bit values",
            data.len()
        )));
    }
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let mut values = Vec::with_capacity(count);
    let mut bit_pos: u64 = 0;
    for _ in 0..count {
        let byte_idx = (bit_pos / 8) as usize;
        let bit_off = (bit_pos % 8) as u32;
        // Read up to 9 bytes that cover the value (bits <= 64 so 9 bytes always cover it).
        let mut chunk = [0u8; 16];
        let take = (data.len() - byte_idx).min(9);
        chunk[..take].copy_from_slice(&data[byte_idx..byte_idx + take]);
        let lo = u64::from_le_bytes(chunk[0..8].try_into().expect("slice of 8"));
        let hi = chunk[8] as u64;
        let value = if bit_off == 0 {
            lo & mask
        } else {
            ((lo >> bit_off) | (hi << (64 - bit_off))) & mask
        };
        values.push(value);
        bit_pos += bits as u64;
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn round_trip_various_widths() {
        for bits in [1u32, 3, 7, 8, 13, 16, 31, 32, 33, 63, 64] {
            let max = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let values: Vec<u64> = (0..200u64).map(|i| (i * 2654435761) % (max / 2 + 1)).collect();
            let packed = pack(&values, bits).unwrap();
            let unpacked = unpack(&packed).unwrap();
            assert_eq!(unpacked, values, "width {bits}");
        }
    }

    #[test]
    fn empty_input_round_trips() {
        let packed = pack(&[], 5).unwrap();
        assert_eq!(unpack(&packed).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn packed_size_is_near_theoretical_minimum() {
        let values: Vec<u64> = (0..1000u64).map(|i| i % 8).collect();
        let packed = pack(&values, 3).unwrap();
        // 1000 * 3 bits = 375 bytes plus a small header.
        assert!(packed.len() <= 375 + 8, "packed to {} bytes", packed.len());
    }

    #[test]
    fn values_exceeding_width_are_rejected() {
        assert!(pack(&[8], 3).is_err());
        assert!(pack(&[7], 3).is_ok());
    }

    #[test]
    fn invalid_widths_rejected() {
        assert!(pack(&[1], 0).is_err());
        assert!(pack(&[1], 65).is_err());
    }

    #[test]
    fn corrupt_buffers_rejected() {
        let packed = pack(&(0..100u64).collect::<Vec<_>>(), 7).unwrap();
        assert!(unpack(&packed[..packed.len() - 1]).is_err());
        assert!(unpack(&[]).is_err());
        // Claim a zero bit width.
        let mut bad = packed.clone();
        let (_, pos) = varint::read_u64(&bad, 0).unwrap();
        bad[pos] = 0;
        assert!(unpack(&bad).is_err());
    }
}
