//! Canonical Huffman coding over the byte alphabet.
//!
//! Used as the entropy stage behind the LZ match search for the `Deflate` (gzip
//! stand-in) and `LzHuff` (LZMA stand-in) codecs.  The encoder emits a compact header
//! (code length per symbol, run-length encoded) followed by the bit stream; canonical
//! code assignment means the decoder can rebuild the exact codes from lengths alone.

use crate::varint;
use crate::CompressError;

const MAX_CODE_LEN: u32 = 15;
const ALPHABET: usize = 256;

/// A bit-level writer (LSB-first within each byte).
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    bits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `value`.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 57, "bit writer chunk too large");
        self.acc |= value << self.bits;
        self.bits += count;
        while self.bits >= 8 {
            self.buf.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.bits -= 8;
        }
    }

    /// Flushes any partial byte and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.bits > 0 {
            self.buf.push((self.acc & 0xff) as u8);
        }
        self.buf
    }
}

/// A bit-level reader matching [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    bits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            pos: 0,
            acc: 0,
            bits: 0,
        }
    }

    /// Reads `count` bits; returns an error if the stream is exhausted.
    pub fn read_bits(&mut self, count: u32) -> crate::Result<u64> {
        debug_assert!(count <= 57);
        while self.bits < count {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| CompressError::Corrupt("bit stream exhausted".into()))?;
            self.acc |= (byte as u64) << self.bits;
            self.bits += 8;
            self.pos += 1;
        }
        let value = self.acc & ((1u64 << count) - 1);
        self.acc >>= count;
        self.bits -= count;
        Ok(value)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> crate::Result<u64> {
        self.read_bits(1)
    }
}

/// Canonical Huffman code table: per-symbol code length and code bits.
#[derive(Debug, Clone)]
pub struct HuffmanTable {
    lengths: Vec<u32>,
    codes: Vec<u32>,
}

impl HuffmanTable {
    /// Builds a length-limited table from symbol frequencies (one entry per byte value).
    pub fn from_frequencies(freqs: &[u64; ALPHABET]) -> Self {
        let lengths = build_code_lengths(freqs);
        let codes = canonical_codes(&lengths);
        HuffmanTable { lengths, codes }
    }

    /// Rebuilds a table from code lengths (decoder side).
    pub fn from_lengths(lengths: Vec<u32>) -> crate::Result<Self> {
        if lengths.len() != ALPHABET {
            return Err(CompressError::Corrupt(format!(
                "expected {ALPHABET} code lengths, got {}",
                lengths.len()
            )));
        }
        if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
            return Err(CompressError::Corrupt("code length exceeds limit".into()));
        }
        // Kraft inequality check: sum of 2^-len must not exceed 1 for a prefix code.
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_CODE_LEN - l))
            .sum();
        if kraft > 1u64 << MAX_CODE_LEN {
            return Err(CompressError::Corrupt("code lengths violate Kraft inequality".into()));
        }
        let codes = canonical_codes(&lengths);
        Ok(HuffmanTable { lengths, codes })
    }

    /// Per-symbol code lengths.
    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    fn encode_symbol(&self, writer: &mut BitWriter, symbol: u8) {
        let s = symbol as usize;
        writer.write_bits(self.codes[s] as u64, self.lengths[s]);
    }
}

/// Assigns code lengths with a simple package-merge-free heuristic: build a Huffman
/// tree from frequencies, then clamp lengths to `MAX_CODE_LEN` and repair with the
/// canonical "rebalance" pass (move long codes up until the Kraft sum fits).
fn build_code_lengths(freqs: &[u64; ALPHABET]) -> Vec<u32> {
    #[derive(Clone)]
    struct Node {
        left: Option<usize>,
        right: Option<usize>,
        symbol: Option<usize>,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    for (s, &f) in freqs.iter().enumerate() {
        if f > 0 {
            let idx = nodes.len();
            nodes.push(Node {
                left: None,
                right: None,
                symbol: Some(s),
            });
            heap.push(std::cmp::Reverse((f, idx)));
        }
    }
    let mut lengths = vec![0u32; ALPHABET];
    match heap.len() {
        0 => return lengths,
        1 => {
            // A single distinct symbol still needs a 1-bit code.
            let std::cmp::Reverse((_, idx)) = heap.pop().expect("one element");
            lengths[nodes[idx].symbol.expect("leaf")] = 1;
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((fb, b)) = heap.pop().expect("len > 1");
        let idx = nodes.len();
        nodes.push(Node {
            left: Some(a),
            right: Some(b),
            symbol: None,
        });
        heap.push(std::cmp::Reverse((fa + fb, idx)));
    }
    let std::cmp::Reverse((_, root)) = heap.pop().expect("root");
    // Iterative depth-first traversal to assign depths.
    let mut stack = vec![(root, 0u32)];
    while let Some((idx, depth)) = stack.pop() {
        let node = &nodes[idx];
        if let Some(s) = node.symbol {
            lengths[s] = depth.max(1);
        } else {
            if let Some(l) = node.left {
                stack.push((l, depth + 1));
            }
            if let Some(r) = node.right {
                stack.push((r, depth + 1));
            }
        }
    }
    // Clamp overly long codes and repair the Kraft sum.
    let mut overflow = false;
    for l in lengths.iter_mut() {
        if *l > MAX_CODE_LEN {
            *l = MAX_CODE_LEN;
            overflow = true;
        }
    }
    if overflow {
        // Repair: repeatedly shorten the Kraft sum by lengthening the shortest codes'
        // companions; the classic zlib-style fix is to demote nodes until it fits.
        loop {
            let kraft: u64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 1u64 << (MAX_CODE_LEN - l))
                .sum();
            if kraft <= 1u64 << MAX_CODE_LEN {
                break;
            }
            // Find a symbol with length < MAX and increase it (reduces its Kraft share).
            let candidate = lengths
                .iter()
                .enumerate()
                .filter(|(_, &l)| l > 0 && l < MAX_CODE_LEN)
                .max_by_key(|(_, &l)| l)
                .map(|(s, _)| s);
            match candidate {
                Some(s) => lengths[s] += 1,
                None => break,
            }
        }
    }
    lengths
}

/// Assigns canonical codes from lengths (symbols sorted by (length, symbol value)).
fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
    symbols.sort_by_key(|&s| (lengths[s], s));
    let mut codes = vec![0u32; lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u32;
    for &s in &symbols {
        let len = lengths[s];
        code <<= len - prev_len;
        // Store the code bit-reversed so it can be written LSB-first and decoded by
        // walking bits in stream order.
        codes[s] = reverse_bits(code, len);
        code += 1;
        prev_len = len;
    }
    codes
}

fn reverse_bits(value: u32, bits: u32) -> u32 {
    let mut v = value;
    let mut out = 0u32;
    for _ in 0..bits {
        out = (out << 1) | (v & 1);
        v >>= 1;
    }
    out
}

/// Decoding structure: a flat (length, symbol) list ordered canonically, decoded bit
/// by bit.  Simple and fast enough for the partition sizes DeepMapping uses.
#[derive(Debug)]
struct Decoder {
    // first_code[len], first_index[len], and the canonical symbol order.
    first_code: Vec<u32>,
    first_index: Vec<usize>,
    symbols: Vec<u8>,
    max_len: u32,
}

impl Decoder {
    fn new(table: &HuffmanTable) -> Self {
        let lengths = &table.lengths;
        let mut symbols: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        symbols.sort_by_key(|&s| (lengths[s], s));
        let max_len = lengths.iter().cloned().max().unwrap_or(0);
        let mut count_per_len = vec![0u32; (max_len + 1) as usize];
        for &s in &symbols {
            count_per_len[lengths[s] as usize] += 1;
        }
        let mut first_code = vec![0u32; (max_len + 2) as usize];
        let mut first_index = vec![0usize; (max_len + 2) as usize];
        let mut code = 0u32;
        let mut index = 0usize;
        for len in 1..=max_len {
            code <<= 1;
            first_code[len as usize] = code;
            first_index[len as usize] = index;
            code += count_per_len[len as usize];
            index += count_per_len[len as usize] as usize;
        }
        Decoder {
            first_code,
            first_index,
            symbols: symbols.iter().map(|&s| s as u8).collect(),
            max_len,
        }
    }

    fn decode_symbol(&self, reader: &mut BitReader<'_>) -> crate::Result<u8> {
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | reader.read_bit()? as u32;
            let lens = len as usize;
            let next_index = if lens < self.max_len as usize {
                self.first_index[lens + 1]
            } else {
                self.symbols.len()
            };
            let count_at_len = next_index - self.first_index[lens];
            if count_at_len > 0 {
                let offset = code.wrapping_sub(self.first_code[lens]);
                if (offset as usize) < count_at_len {
                    return Ok(self.symbols[self.first_index[lens] + offset as usize]);
                }
            }
        }
        Err(CompressError::Corrupt("invalid Huffman code in stream".into()))
    }
}

/// Compresses a byte buffer with a one-shot canonical Huffman code.
///
/// Layout: `varint original_len | code lengths (RLE of 256 nibble-packed lengths) |
/// bit stream`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; ALPHABET];
    for &b in input {
        freqs[b as usize] += 1;
    }
    let table = HuffmanTable::from_frequencies(&freqs);
    let mut out = Vec::with_capacity(input.len() / 2 + 64);
    varint::write_u64(&mut out, input.len() as u64);
    // Header: 256 lengths, each 0..=15, packed two per byte.
    for pair in table.lengths.chunks(2) {
        let lo = pair[0] as u8;
        let hi = if pair.len() > 1 { pair[1] as u8 } else { 0 };
        out.push(lo | (hi << 4));
    }
    let mut writer = BitWriter::new();
    for &b in input {
        table.encode_symbol(&mut writer, b);
    }
    out.extend_from_slice(&writer.finish());
    out
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> crate::Result<Vec<u8>> {
    let (original_len, pos) = varint::read_u64(input, 0)?;
    let original_len = original_len as usize;
    let header_bytes = ALPHABET / 2;
    if input.len() < pos + header_bytes {
        return Err(CompressError::Corrupt("Huffman length header truncated".into()));
    }
    let mut lengths = Vec::with_capacity(ALPHABET);
    for &b in &input[pos..pos + header_bytes] {
        lengths.push((b & 0x0f) as u32);
        lengths.push((b >> 4) as u32);
    }
    let table = HuffmanTable::from_lengths(lengths)?;
    if original_len == 0 {
        return Ok(Vec::new());
    }
    let decoder = Decoder::new(&table);
    let mut reader = BitReader::new(&input[pos + header_bytes..]);
    let mut out = Vec::with_capacity(original_len);
    for _ in 0..original_len {
        out.push(decoder.decode_symbol(&mut reader)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let restored = decompress(&compressed).unwrap();
        assert_eq!(restored, data, "input of {} bytes", data.len());
    }

    #[test]
    fn bit_io_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11111111111, 11);
        w.write_bits(0, 1);
        w.write_bits(0x1234, 16);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(11).unwrap(), 0b11111111111);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(16).unwrap(), 0x1234);
        assert!(r.read_bits(8).is_err());
    }

    #[test]
    fn round_trips_varied_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"aaaaaaaaaaaaaaa");
        round_trip(b"hello huffman, hello entropy coding");
        round_trip(&(0..=255u8).collect::<Vec<_>>());
        let skewed: Vec<u8> = (0..5000).map(|i| if i % 17 == 0 { (i % 256) as u8 } else { b'x' }).collect();
        round_trip(&skewed);
    }

    #[test]
    fn skewed_distributions_compress_below_one_byte_per_symbol() {
        // 90% of symbols are 'a': entropy well under 1 bit/symbol for that portion.
        let data: Vec<u8> = (0..20_000).map(|i| if i % 10 == 0 { b'b' } else { b'a' }).collect();
        let compressed = compress(&data);
        assert!(
            compressed.len() < data.len() / 4,
            "compressed {} -> {}",
            data.len(),
            compressed.len()
        );
    }

    #[test]
    fn single_symbol_input_round_trips() {
        let data = vec![99u8; 10_000];
        round_trip(&data);
        let compressed = compress(&data);
        assert!(compressed.len() < 1500);
    }

    #[test]
    fn corrupt_streams_rejected() {
        let data = b"some reasonably sized test payload for huffman".repeat(10);
        let compressed = compress(&data);
        assert!(decompress(&compressed[..compressed.len() / 2]).is_err());
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn table_from_lengths_validates() {
        assert!(HuffmanTable::from_lengths(vec![1; 10]).is_err());
        // All symbols length 1 violates Kraft for 256 symbols.
        assert!(HuffmanTable::from_lengths(vec![1; 256]).is_err());
        let mut ok = vec![8u32; 256];
        ok[0] = 8;
        assert!(HuffmanTable::from_lengths(ok).is_ok());
    }
}
