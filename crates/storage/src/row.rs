//! The shared row model and the [`KeyValueStore`] trait.
//!
//! Every store in the workspace — DeepMapping and all baselines — answers the same
//! query: given an integer key, return the tuple's value columns as dense integer
//! codes (decoding back to strings via `fdecode` happens above this layer).  Keeping
//! the model numeric mirrors the paper's preprocessing (categorical values are
//! one-hot/integer encoded before anything touches the network or the partitions) and
//! lets the benchmark harness sweep stores uniformly through one trait.

use crate::Result;

/// A single tuple: an integer key plus one encoded code per value column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row {
    /// The lookup key.
    pub key: u64,
    /// One dense code per value column, in schema order.
    pub values: Vec<u32>,
}

impl Row {
    /// Creates a row.
    pub fn new(key: u64, values: Vec<u32>) -> Self {
        Row { key, values }
    }

    /// Serialized width in bytes when stored with a fixed-width layout
    /// (8-byte key + 4 bytes per value column).
    pub fn fixed_width(num_value_columns: usize) -> usize {
        8 + 4 * num_value_columns
    }
}

/// Summary statistics every store can report, used for the storage-size columns of the
/// paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Total bytes the store occupies on (simulated) disk.
    pub disk_bytes: usize,
    /// Bytes the store pins in memory independently of the buffer pool
    /// (e.g. DeepMapping's model + existence vector, a hash store's directory).
    pub resident_bytes: usize,
    /// Number of tuples currently represented.
    pub tuple_count: usize,
    /// Number of partitions the store is divided into.
    pub partition_count: usize,
}

/// The uniform interface the benchmark harness (and the examples) use to compare
/// DeepMapping against the array- and hash-based baselines.
pub trait KeyValueStore {
    /// A short, table-friendly name (e.g. `"DM-Z"`, `"ABC-L"`, `"HB"`).
    fn name(&self) -> String;

    /// Looks up a batch of keys.  The result has one entry per query key, in query
    /// order: `Some(values)` when the key exists, `None` otherwise.
    fn lookup_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u32>>>>;

    /// Inserts new rows (keys may be previously unseen).
    fn insert(&mut self, rows: &[Row]) -> Result<()>;

    /// Deletes keys; deleting a non-existing key is a no-op.
    fn delete(&mut self, keys: &[u64]) -> Result<()>;

    /// Updates the values of existing keys (rows whose keys do not exist are ignored).
    fn update(&mut self, rows: &[Row]) -> Result<()>;

    /// Storage-size statistics.
    fn stats(&self) -> StoreStats;

    /// Convenience single-key lookup.
    fn lookup(&mut self, key: u64) -> Result<Option<Vec<u32>>> {
        Ok(self.lookup_batch(&[key])?.pop().flatten())
    }

    /// Optional maintenance hook run off the query path (e.g. during off-peak hours).
    /// DeepMapping retrains its model and compacts the auxiliary structures here; the
    /// partitioned baselines have nothing to do and keep the default no-op.
    fn maintenance(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A trivially correct reference store backed by a `BTreeMap`, used by tests and
/// property tests as the ground truth all other stores are compared against.
#[derive(Debug, Default, Clone)]
pub struct ReferenceStore {
    map: std::collections::BTreeMap<u64, Vec<u32>>,
}

impl ReferenceStore {
    /// Creates an empty reference store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a reference store from rows.
    pub fn from_rows(rows: &[Row]) -> Self {
        let mut store = Self::new();
        for row in rows {
            store.map.insert(row.key, row.values.clone());
        }
        store
    }

    /// Iterates over all rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.map
            .iter()
            .map(|(&key, values)| Row::new(key, values.clone()))
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl KeyValueStore for ReferenceStore {
    fn name(&self) -> String {
        "REF".to_string()
    }

    fn lookup_batch(&mut self, keys: &[u64]) -> Result<Vec<Option<Vec<u32>>>> {
        Ok(keys.iter().map(|k| self.map.get(k).cloned()).collect())
    }

    fn insert(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            self.map.insert(row.key, row.values.clone());
        }
        Ok(())
    }

    fn delete(&mut self, keys: &[u64]) -> Result<()> {
        for k in keys {
            self.map.remove(k);
        }
        Ok(())
    }

    fn update(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            if let Some(slot) = self.map.get_mut(&row.key) {
                *slot = row.values.clone();
            }
        }
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let tuple_count = self.map.len();
        let value_cols = self.map.values().next().map(Vec::len).unwrap_or(0);
        StoreStats {
            disk_bytes: tuple_count * Row::fixed_width(value_cols),
            resident_bytes: tuple_count * Row::fixed_width(value_cols),
            tuple_count,
            partition_count: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_accounts_for_key_and_columns() {
        assert_eq!(Row::fixed_width(0), 8);
        assert_eq!(Row::fixed_width(3), 20);
    }

    #[test]
    fn reference_store_supports_full_lifecycle() {
        let mut store = ReferenceStore::new();
        store
            .insert(&[Row::new(1, vec![10, 20]), Row::new(5, vec![11, 21])])
            .unwrap();
        assert_eq!(store.lookup(1).unwrap(), Some(vec![10, 20]));
        assert_eq!(store.lookup(2).unwrap(), None);

        store.update(&[Row::new(1, vec![99, 98]), Row::new(7, vec![0, 0])]).unwrap();
        assert_eq!(store.lookup(1).unwrap(), Some(vec![99, 98]));
        // Updating a missing key does not insert it.
        assert_eq!(store.lookup(7).unwrap(), None);

        store.delete(&[1, 100]).unwrap();
        assert_eq!(store.lookup(1).unwrap(), None);
        assert_eq!(store.len(), 1);

        let stats = store.stats();
        assert_eq!(stats.tuple_count, 1);
        assert!(stats.disk_bytes > 0);
    }

    #[test]
    fn batch_lookup_preserves_query_order() {
        let mut store = ReferenceStore::from_rows(&[
            Row::new(3, vec![3]),
            Row::new(1, vec![1]),
            Row::new(2, vec![2]),
        ]);
        let result = store.lookup_batch(&[2, 99, 1]).unwrap();
        assert_eq!(result, vec![Some(vec![2]), None, Some(vec![1])]);
    }
}
