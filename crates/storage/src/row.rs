//! The shared row model and the reference store.
//!
//! Every store in the workspace — DeepMapping and all baselines — answers the same
//! query: given an integer key, return the tuple's value columns as dense integer
//! codes (decoding back to strings via `fdecode` happens above this layer).  Keeping
//! the model numeric mirrors the paper's preprocessing (categorical values are
//! one-hot/integer encoded before anything touches the network or the partitions) and
//! lets the benchmark harness sweep stores uniformly through the
//! [`crate::TupleStore`] / [`crate::MutableStore`] traits defined in [`crate::store`].

use crate::store::{LookupBuffer, MutableStore, TupleStore};
use crate::Result;

/// A single tuple: an integer key plus one encoded code per value column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row {
    /// The lookup key.
    pub key: u64,
    /// One dense code per value column, in schema order.
    pub values: Vec<u32>,
}

impl Row {
    /// Creates a row.
    pub fn new(key: u64, values: Vec<u32>) -> Self {
        Row { key, values }
    }

    /// Serialized width in bytes when stored with a fixed-width layout
    /// (8-byte key + 4 bytes per value column).
    pub fn fixed_width(num_value_columns: usize) -> usize {
        8 + 4 * num_value_columns
    }
}

/// Summary statistics every store can report, used for the storage-size columns of the
/// paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Total bytes the store occupies on (simulated) disk.
    pub disk_bytes: usize,
    /// Bytes the store pins in memory independently of the buffer pool
    /// (e.g. DeepMapping's model + existence vector, a hash store's directory).
    pub resident_bytes: usize,
    /// Number of tuples currently represented.
    pub tuple_count: usize,
    /// Number of partitions the store is divided into.
    pub partition_count: usize,
}

/// A trivially correct reference store backed by a `BTreeMap`, used by tests and
/// property tests as the ground truth all other stores are compared against.
#[derive(Debug, Default, Clone)]
pub struct ReferenceStore {
    map: std::collections::BTreeMap<u64, Vec<u32>>,
}

impl ReferenceStore {
    /// Creates an empty reference store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a reference store from rows.
    pub fn from_rows(rows: &[Row]) -> Self {
        let mut store = Self::new();
        for row in rows {
            store.map.insert(row.key, row.values.clone());
        }
        store
    }

    /// Iterates over all rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.map
            .iter()
            .map(|(&key, values)| Row::new(key, values.clone()))
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl TupleStore for ReferenceStore {
    fn name(&self) -> &str {
        "REF"
    }

    fn lookup_batch_into(&self, keys: &[u64], out: &mut LookupBuffer) -> Result<()> {
        out.reset(keys);
        for (i, key) in keys.iter().enumerate() {
            if let Some(values) = self.map.get(key) {
                out.set_hit(i, values);
            }
        }
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let tuple_count = self.map.len();
        let value_cols = self.map.values().next().map(Vec::len).unwrap_or(0);
        StoreStats {
            disk_bytes: tuple_count * Row::fixed_width(value_cols),
            resident_bytes: tuple_count * Row::fixed_width(value_cols),
            tuple_count,
            partition_count: 1,
        }
    }

    fn scan_range(&self, lo: u64, hi: u64) -> Result<Vec<Row>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        Ok(self
            .map
            .range(lo..=hi)
            .map(|(&key, values)| Row::new(key, values.clone()))
            .collect())
    }
}

impl MutableStore for ReferenceStore {
    fn insert(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            self.map.insert(row.key, row.values.clone());
        }
        Ok(())
    }

    fn delete(&mut self, keys: &[u64]) -> Result<()> {
        for k in keys {
            self.map.remove(k);
        }
        Ok(())
    }

    fn update(&mut self, rows: &[Row]) -> Result<()> {
        for row in rows {
            if let Some(slot) = self.map.get_mut(&row.key) {
                *slot = row.values.clone();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_width_accounts_for_key_and_columns() {
        assert_eq!(Row::fixed_width(0), 8);
        assert_eq!(Row::fixed_width(3), 20);
    }

    #[test]
    fn reference_store_supports_full_lifecycle() {
        let mut store = ReferenceStore::new();
        store
            .insert(&[Row::new(1, vec![10, 20]), Row::new(5, vec![11, 21])])
            .unwrap();
        assert_eq!(store.get(1).unwrap(), Some(vec![10, 20]));
        assert_eq!(store.get(2).unwrap(), None);

        store.update(&[Row::new(1, vec![99, 98]), Row::new(7, vec![0, 0])]).unwrap();
        assert_eq!(store.get(1).unwrap(), Some(vec![99, 98]));
        // Updating a missing key does not insert it.
        assert_eq!(store.get(7).unwrap(), None);

        store.delete(&[1, 100]).unwrap();
        assert_eq!(store.get(1).unwrap(), None);
        assert_eq!(store.len(), 1);

        let stats = store.stats();
        assert_eq!(stats.tuple_count, 1);
        assert!(stats.disk_bytes > 0);
        assert_eq!(store.name(), "REF");
    }

    #[test]
    fn batch_lookup_preserves_query_order() {
        let store = ReferenceStore::from_rows(&[
            Row::new(3, vec![3]),
            Row::new(1, vec![1]),
            Row::new(2, vec![2]),
        ]);
        let result = store.lookup_batch(&[2, 99, 1]).unwrap();
        assert_eq!(result, vec![Some(vec![2]), None, Some(vec![1])]);

        let mut buffer = LookupBuffer::new();
        store.lookup_batch_into(&[2, 99, 1], &mut buffer).unwrap();
        assert_eq!(buffer.to_options(), result);
        assert_eq!(buffer.hit_count(), 2);
    }

    #[test]
    fn scan_range_returns_key_ordered_rows() {
        let store = ReferenceStore::from_rows(&[
            Row::new(5, vec![5]),
            Row::new(1, vec![1]),
            Row::new(3, vec![3]),
        ]);
        assert_eq!(
            store.scan_range(2, 5).unwrap(),
            vec![Row::new(3, vec![3]), Row::new(5, vec![5])]
        );
        assert!(store.scan_range(6, 2).unwrap().is_empty());
    }
}
