//! The cross-backend store API: [`TupleStore`] (shared, allocation-aware reads) and
//! [`MutableStore`] (modifications), plus the reusable [`LookupBuffer`] arena batch
//! lookups write into.
//!
//! The read trait is deliberately `&self`-based: DeepMapping's Algorithm 1 only ever
//! *reads* the model, existence vector and auxiliary partitions, and every shared
//! component (buffer pool, simulated disk, metrics) already sits behind interior
//! mutability, so one store instance can serve lookups from many threads at once.
//! Requiring `Send + Sync` on the trait makes that contract explicit — an
//! `Arc<impl TupleStore>` is a valid concurrent query server.
//!
//! The allocation story: the old interface returned `Vec<Option<Vec<u32>>>`, one heap
//! allocation per hit per batch.  [`TupleStore::lookup_batch_into`] instead appends
//! every hit's values to one flat arena inside a caller-owned [`LookupBuffer`] and
//! records a per-key span, so a steady-state workload that reuses its buffer performs
//! zero per-key allocations — the arena and span table are cleared, not freed, between
//! batches.  [`TupleStore::lookup_batch`] keeps the old materialized shape as a
//! convenience built on top.

use crate::row::{Row, StoreStats};
use crate::{Result, StorageError};

/// Span of one key's values inside the [`LookupBuffer`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Span {
    start: u32,
    len: u32,
}

/// Sentinel span marking a key with no result (a miss).
const MISS: Span = Span {
    start: u32::MAX,
    len: 0,
};

/// Sentinel span marking a key whose probe *failed*: the store could not
/// determine this key's answer (e.g. its auxiliary partition would not load),
/// which is a different statement than "this key does not exist".  Failed
/// keys carry a typed [`StorageError`] in a side table; see
/// [`LookupBuffer::set_failed`].
const FAILED: Span = Span {
    start: u32::MAX,
    len: u32::MAX,
};

/// A borrowed view of one tuple inside a [`LookupBuffer`]: the query key plus a slice
/// of its value codes in the buffer's arena.  No allocation, valid until the buffer is
/// next reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleRef<'a> {
    /// The query key this tuple answers.
    pub key: u64,
    /// The tuple's value codes, in schema order.
    pub values: &'a [u32],
}

impl TupleRef<'_> {
    /// Materializes the view into an owned [`Row`].
    pub fn to_row(&self) -> Row {
        Row::new(self.key, self.values.to_vec())
    }
}

/// A reusable result arena for batch lookups.
///
/// One buffer holds one batch's results: the queried keys, a flat `u32` arena with
/// every hit's values, and a per-key span/miss table.  Resetting for the next batch
/// clears the contents but keeps the allocations, so repeated batches of similar shape
/// reach a steady state with **zero** per-key heap allocations (asserted by the
/// workspace's capacity-stability test).
#[derive(Debug, Default, Clone)]
pub struct LookupBuffer {
    keys: Vec<u64>,
    spans: Vec<Span>,
    values: Vec<u32>,
    hits: usize,
    /// Per-key probe failures, sparse: `(query index, error)` pairs in query
    /// order.  Failures are rare (a partition that would not load), so a
    /// linear side table beats widening every span.  Cleared, not freed, by
    /// [`reset`](Self::reset).
    errors: Vec<(u32, StorageError)>,
    /// Detachable scratch arena stores may borrow to stage flat intermediate results
    /// (e.g. a model's row-major predictions) without allocating per batch.
    scratch: Vec<u32>,
}

impl LookupBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer pre-sized for `keys` queries with about `values_per_key`
    /// value columns each.
    pub fn with_capacity(keys: usize, values_per_key: usize) -> Self {
        LookupBuffer {
            keys: Vec::with_capacity(keys),
            spans: Vec::with_capacity(keys),
            values: Vec::with_capacity(keys * values_per_key),
            hits: 0,
            errors: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Clears the buffer and re-seeds it with a new query batch: every key starts as
    /// a miss.  Existing allocations are reused.
    pub fn reset(&mut self, keys: &[u64]) {
        self.keys.clear();
        self.keys.extend_from_slice(keys);
        self.spans.clear();
        self.spans.resize(keys.len(), MISS);
        self.values.clear();
        self.hits = 0;
        self.errors.clear();
    }

    /// Records a hit for query position `index`, appending `values` to the arena.
    /// Overwriting an earlier hit for the same position is allowed (the newest values
    /// win); the superseded arena bytes are reclaimed at the next [`reset`](Self::reset).
    ///
    /// # Panics
    /// Panics if `index` is out of bounds or the arena would exceed `u32::MAX` values.
    pub fn set_hit(&mut self, index: usize, values: &[u32]) {
        let start = u32::try_from(self.values.len()).expect("lookup arena exceeds u32 span space");
        let len = u32::try_from(values.len()).expect("tuple wider than u32 span space");
        self.values.extend_from_slice(values);
        match self.spans[index] {
            MISS => self.hits += 1,
            FAILED => {
                // A hit supersedes an earlier failure for the position.
                self.hits += 1;
                self.errors.retain(|(i, _)| *i != index as u32);
            }
            _ => {}
        }
        self.spans[index] = Span { start, len };
    }

    /// Marks query position `index` as *failed*: the store could not answer
    /// this key (its partition would not load after retries, say).  A failed
    /// key is neither a hit nor a miss — [`get`](Self::get) returns `None`
    /// like a miss, but [`error`](Self::error) carries the typed cause and
    /// [`first_error`](Self::first_error) lets whole-batch callers keep their
    /// fail-on-any-error contract.  This is the degraded-serving primitive:
    /// stores mark only the keys a fault actually touched and answer the rest
    /// byte-identically to a fault-free run.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn set_failed(&mut self, index: usize, error: StorageError) {
        match self.spans[index] {
            FAILED => {
                self.errors.retain(|(i, _)| *i != index as u32);
            }
            MISS => {}
            _ => self.hits -= 1,
        }
        self.spans[index] = FAILED;
        self.errors.push((index as u32, error));
    }

    /// Overwrites this buffer with the results for the contiguous key range
    /// `[start, start + len)` of `src` — the demultiplex primitive a batching
    /// front-end uses to hand each coalesced sub-request its own slice of a
    /// merged batch's results.  Hits keep their values (copied into this
    /// buffer's arena), misses stay misses, and like [`reset`](Self::reset) the
    /// existing allocations are reused, so steady-state demuxing allocates
    /// nothing.
    ///
    /// # Panics
    /// Panics if `start + len` exceeds `src.len()`.
    pub fn copy_range_from(&mut self, src: &LookupBuffer, start: usize, len: usize) {
        assert!(
            start + len <= src.len(),
            "copy_range_from range {}..{} out of bounds for batch of {}",
            start,
            start + len,
            src.len()
        );
        self.keys.clear();
        self.keys.extend_from_slice(&src.keys[start..start + len]);
        self.spans.clear();
        self.values.clear();
        self.hits = 0;
        self.errors.clear();
        for i in start..start + len {
            let span = src.spans[i];
            if span == MISS {
                self.spans.push(MISS);
            } else if span == FAILED {
                self.spans.push(FAILED);
                if let Some((_, err)) = src.errors.iter().find(|(at, _)| *at as usize == i) {
                    self.errors.push(((i - start) as u32, err.clone()));
                }
            } else {
                let at = u32::try_from(self.values.len())
                    .expect("lookup arena exceeds u32 span space");
                self.values
                    .extend_from_slice(&src.values[span.start as usize..(span.start + span.len) as usize]);
                self.spans.push(Span { start: at, len: span.len });
                self.hits += 1;
            }
        }
    }

    /// Number of keys in the current batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the current batch is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of keys answered with a hit.
    pub fn hit_count(&self) -> usize {
        self.hits
    }

    /// The query key at `index`.
    pub fn key(&self, index: usize) -> u64 {
        self.keys[index]
    }

    /// Whether query position `index` was answered with a hit.
    pub fn is_hit(&self, index: usize) -> bool {
        self.spans[index] != MISS && self.spans[index] != FAILED
    }

    /// Whether the probe for query position `index` failed (see
    /// [`set_failed`](Self::set_failed)).
    pub fn is_failed(&self, index: usize) -> bool {
        self.spans[index] == FAILED
    }

    /// Number of keys whose probe failed.
    pub fn failed_count(&self) -> usize {
        self.spans.iter().filter(|s| **s == FAILED).count()
    }

    /// The typed failure recorded for query position `index`, if any.
    pub fn error(&self, index: usize) -> Option<&StorageError> {
        if self.spans[index] != FAILED {
            return None;
        }
        self.errors
            .iter()
            .find(|(at, _)| *at as usize == index)
            .map(|(_, err)| err)
    }

    /// The first per-key failure in query order, if any — the error a
    /// whole-batch caller surfaces to keep the historical
    /// fail-on-any-error contract of [`TupleStore::lookup_batch`].
    pub fn first_error(&self) -> Option<&StorageError> {
        self.spans
            .iter()
            .position(|s| *s == FAILED)
            .and_then(|i| self.error(i))
    }

    /// The values for query position `index`, or `None` on a miss or a failed
    /// probe (disambiguate with [`is_failed`](Self::is_failed)).
    pub fn get(&self, index: usize) -> Option<&[u32]> {
        let span = self.spans[index];
        (span != MISS && span != FAILED)
            .then(|| &self.values[span.start as usize..(span.start + span.len) as usize])
    }

    /// A [`TupleRef`] view of query position `index`, or `None` on a miss.
    pub fn tuple(&self, index: usize) -> Option<TupleRef<'_>> {
        self.get(index).map(|values| TupleRef {
            key: self.keys[index],
            values,
        })
    }

    /// Iterates the batch in query order as `(key, Some(values) | None)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Option<&[u32]>)> + '_ {
        (0..self.len()).map(|i| (self.keys[i], self.get(i)))
    }

    /// Iterates only the hits, in query order, as [`TupleRef`] views.
    pub fn tuples(&self) -> impl Iterator<Item = TupleRef<'_>> + '_ {
        (0..self.len()).filter_map(|i| self.tuple(i))
    }

    /// Materializes the batch into the legacy `Vec<Option<Vec<u32>>>` shape (one
    /// allocation per hit) — the compatibility path behind
    /// [`TupleStore::lookup_batch`].
    pub fn to_options(&self) -> Vec<Option<Vec<u32>>> {
        (0..self.len()).map(|i| self.get(i).map(<[u32]>::to_vec)).collect()
    }

    /// Detaches the buffer's scratch arena for a store to fill with flat
    /// intermediate results during one batch.  Contents are unspecified; hand it
    /// back with [`restore_scratch`](Self::restore_scratch) so the allocation is
    /// reused by later batches.
    pub fn take_scratch(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.scratch)
    }

    /// Returns a scratch arena previously obtained from
    /// [`take_scratch`](Self::take_scratch), keeping its allocation for reuse.
    pub fn restore_scratch(&mut self, scratch: Vec<u32>) {
        self.scratch = scratch;
    }

    /// Current capacity of the key/span tables (stable across same-shape batches).
    pub fn key_capacity(&self) -> usize {
        self.keys.capacity().min(self.spans.capacity())
    }

    /// Current capacity of the flat value arena (stable across same-shape batches).
    pub fn value_capacity(&self) -> usize {
        self.values.capacity()
    }
}

/// The shared read interface every store in the workspace serves queries through.
///
/// All methods take `&self`: implementors keep their query-path state (buffer pools,
/// metrics, simulated disks) behind interior mutability so a single store can be
/// probed concurrently from many threads (`Send + Sync` is part of the contract).
pub trait TupleStore: Send + Sync {
    /// A short, table-friendly system name (e.g. `"DM-Z"`, `"ABC-L"`, `"HB"`).
    /// Borrowed from the store — computed once at build time, never per call.
    fn name(&self) -> &str;

    /// Looks up a batch of keys, writing results into `out` (which is reset to this
    /// batch first).  One span per query key, in query order; hits share `out`'s flat
    /// value arena, so a reused buffer makes the steady state allocation-free.
    fn lookup_batch_into(&self, keys: &[u64], out: &mut LookupBuffer) -> Result<()>;

    /// Storage-size statistics.
    fn stats(&self) -> StoreStats;

    /// Convenience batch lookup materializing owned results: one entry per query key
    /// in query order, `Some(values)` on a hit, `None` otherwise.
    ///
    /// The materialized shape has no per-key error channel, so a batch with
    /// *any* failed probe surfaces the first per-key error as `Err` — the
    /// historical whole-batch contract.  Callers that want degraded
    /// per-key results use [`lookup_batch_into`](Self::lookup_batch_into)
    /// and inspect [`LookupBuffer::is_failed`] themselves.
    fn lookup_batch(&self, keys: &[u64]) -> Result<Vec<Option<Vec<u32>>>> {
        let mut buffer = LookupBuffer::with_capacity(keys.len(), 4);
        self.lookup_batch_into(keys, &mut buffer)?;
        if let Some(err) = buffer.first_error() {
            return Err(err.clone());
        }
        Ok(buffer.to_options())
    }

    /// Convenience single-key lookup (a batch of one).
    fn get(&self, key: u64) -> Result<Option<Vec<u32>>> {
        Ok(self.lookup_batch(std::slice::from_ref(&key))?.pop().flatten())
    }

    /// Returns every live row with key in `[lo, hi]`, in ascending key order.
    ///
    /// The default declines with [`StorageError::Unsupported`]; key-ordered backends
    /// (DeepMapping via its existence index, the array/hash partitioned baselines, the
    /// reference store) override it so range workloads can compare all backends.
    fn scan_range(&self, lo: u64, hi: u64) -> Result<Vec<Row>> {
        let _ = (lo, hi);
        Err(StorageError::Unsupported(format!(
            "{} does not support range scans",
            self.name()
        )))
    }

    /// Workload-health signals for the maintenance advisor (drift + pool
    /// pressure, see `dm_obs::StoreHealthSignals`).  The default reports
    /// none: baselines have no model to drift.  DeepMapping overrides it, and
    /// `dm-server` folds the result with per-tenant SLO signals into
    /// `dm_obs::advise` without widening this trait any further.
    fn health_signals(&self) -> Option<dm_obs::StoreHealthSignals> {
        None
    }

    /// Fault pressure observed while serving (retried cold loads, keys
    /// degraded by failed partition probes — see `dm_obs::FaultSignals`).
    /// The default reports none: baselines hold everything in memory and
    /// cannot fault.  DeepMapping overrides it from its store metrics so the
    /// advisor can flag storage trouble before it becomes an outage.
    fn fault_signals(&self) -> Option<dm_obs::FaultSignals> {
        None
    }
}

/// The write interface: batch modifications plus the off-peak maintenance hook.
/// Writes keep `&mut self` — exclusive access is the point at which the read
/// structures may be rebuilt.
pub trait MutableStore: TupleStore {
    /// Inserts new rows (keys may be previously unseen).
    fn insert(&mut self, rows: &[Row]) -> Result<()>;

    /// Deletes keys; deleting a non-existing key is a no-op.
    fn delete(&mut self, keys: &[u64]) -> Result<()>;

    /// Updates the values of existing keys (rows whose keys do not exist are ignored).
    fn update(&mut self, rows: &[Row]) -> Result<()>;

    /// Optional maintenance hook run off the query path (e.g. during off-peak hours).
    /// DeepMapping retrains its model and compacts the auxiliary structures here; the
    /// partitioned baselines have nothing to do and keep the default no-op.
    fn maintenance(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_starts_as_all_misses_and_records_hits() {
        let mut buffer = LookupBuffer::new();
        buffer.reset(&[10, 20, 30]);
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.hit_count(), 0);
        assert!(!buffer.is_hit(1));

        buffer.set_hit(1, &[7, 8]);
        buffer.set_hit(2, &[9]);
        assert_eq!(buffer.hit_count(), 2);
        assert_eq!(buffer.get(0), None);
        assert_eq!(buffer.get(1), Some(&[7u32, 8][..]));
        assert_eq!(buffer.get(2), Some(&[9u32][..]));
        assert_eq!(buffer.key(1), 20);

        let tuple = buffer.tuple(1).unwrap();
        assert_eq!(tuple.key, 20);
        assert_eq!(tuple.to_row(), Row::new(20, vec![7, 8]));
        assert!(buffer.tuple(0).is_none());

        let collected: Vec<(u64, Option<&[u32]>)> = buffer.iter().collect();
        assert_eq!(collected[0], (10, None));
        assert_eq!(collected[1], (20, Some(&[7u32, 8][..])));
        assert_eq!(buffer.tuples().count(), 2);
        assert_eq!(
            buffer.to_options(),
            vec![None, Some(vec![7, 8]), Some(vec![9])]
        );
    }

    #[test]
    fn overwriting_a_hit_keeps_the_newest_values_and_hit_count() {
        let mut buffer = LookupBuffer::new();
        buffer.reset(&[1]);
        buffer.set_hit(0, &[1, 2]);
        buffer.set_hit(0, &[3, 4, 5]);
        assert_eq!(buffer.hit_count(), 1);
        assert_eq!(buffer.get(0), Some(&[3u32, 4, 5][..]));
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut buffer = LookupBuffer::with_capacity(4, 2);
        for round in 0..5u32 {
            buffer.reset(&[1, 2, 3, 4]);
            for i in 0..4 {
                buffer.set_hit(i, &[round, i as u32]);
            }
        }
        let keys_cap = buffer.key_capacity();
        let values_cap = buffer.value_capacity();
        for round in 0..50u32 {
            buffer.reset(&[1, 2, 3, 4]);
            for i in 0..4 {
                buffer.set_hit(i, &[round, i as u32]);
            }
        }
        assert_eq!(buffer.key_capacity(), keys_cap);
        assert_eq!(buffer.value_capacity(), values_cap);
    }

    #[test]
    fn copy_range_from_demuxes_a_merged_batch() {
        let mut merged = LookupBuffer::new();
        merged.reset(&[10, 20, 30, 40, 50]);
        merged.set_hit(0, &[1]);
        merged.set_hit(2, &[3, 33]);
        merged.set_hit(4, &[5]);

        let mut part = LookupBuffer::new();
        part.copy_range_from(&merged, 1, 3);
        assert_eq!(part.len(), 3);
        assert_eq!(part.key(0), 20);
        assert_eq!(part.get(0), None);
        assert_eq!(part.get(1), Some(&[3u32, 33][..]));
        assert_eq!(part.get(2), None);
        assert_eq!(part.hit_count(), 1);

        // Steady-state demuxing reuses the destination's allocations.
        for _ in 0..20 {
            part.copy_range_from(&merged, 0, 5);
        }
        let keys_cap = part.key_capacity();
        let values_cap = part.value_capacity();
        for _ in 0..50 {
            part.copy_range_from(&merged, 0, 5);
        }
        assert_eq!(part.key_capacity(), keys_cap);
        assert_eq!(part.value_capacity(), values_cap);
        assert_eq!(part.hit_count(), 3);

        // Empty ranges and zero-width hits round-trip too.
        part.copy_range_from(&merged, 5, 0);
        assert!(part.is_empty());
        merged.reset(&[7]);
        merged.set_hit(0, &[]);
        part.copy_range_from(&merged, 0, 1);
        assert!(part.is_hit(0));
        assert_eq!(part.get(0), Some(&[][..]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_range_from_rejects_out_of_bounds_ranges() {
        let mut merged = LookupBuffer::new();
        merged.reset(&[1, 2]);
        let mut part = LookupBuffer::new();
        part.copy_range_from(&merged, 1, 2);
    }

    #[test]
    fn failed_spans_are_neither_hits_nor_misses_and_carry_their_error() {
        let mut buffer = LookupBuffer::new();
        buffer.reset(&[10, 20, 30]);
        buffer.set_hit(0, &[1]);
        buffer.set_failed(1, StorageError::Io("partition 3 unreadable".into()));
        assert_eq!(buffer.hit_count(), 1);
        assert_eq!(buffer.failed_count(), 1);
        assert!(buffer.is_failed(1));
        assert!(!buffer.is_hit(1));
        assert_eq!(buffer.get(1), None);
        assert!(matches!(buffer.error(1), Some(StorageError::Io(_))));
        assert!(buffer.error(0).is_none());
        assert!(matches!(buffer.first_error(), Some(StorageError::Io(_))));
        // A later hit supersedes the failure.
        buffer.set_hit(1, &[9]);
        assert!(!buffer.is_failed(1));
        assert_eq!(buffer.failed_count(), 0);
        assert!(buffer.first_error().is_none());
        assert_eq!(buffer.get(1), Some(&[9u32][..]));
        // And a failure supersedes a hit, keeping the hit count honest.
        buffer.set_failed(2, StorageError::Corrupt("crc".into()));
        buffer.set_failed(2, StorageError::Io("second opinion".into()));
        assert_eq!(buffer.failed_count(), 1);
        assert!(matches!(buffer.error(2), Some(StorageError::Io(_))));
        assert_eq!(buffer.hit_count(), 2);
        // Reset clears the side table.
        buffer.reset(&[1]);
        assert_eq!(buffer.failed_count(), 0);
        assert!(buffer.first_error().is_none());
    }

    #[test]
    fn copy_range_from_propagates_failed_spans_and_their_errors() {
        let mut merged = LookupBuffer::new();
        merged.reset(&[10, 20, 30, 40]);
        merged.set_hit(0, &[1]);
        merged.set_failed(2, StorageError::Io("flaky".into()));
        let mut part = LookupBuffer::new();
        part.copy_range_from(&merged, 1, 3);
        assert_eq!(part.len(), 3);
        assert_eq!(part.get(0), None);
        assert!(part.is_failed(1), "failure must survive the demux");
        assert!(matches!(part.error(1), Some(StorageError::Io(_))));
        assert_eq!(part.failed_count(), 1);
        assert_eq!(part.hit_count(), 0);
        // A sub-range that misses the failed key sees no error at all.
        part.copy_range_from(&merged, 0, 2);
        assert!(part.first_error().is_none());
        assert_eq!(part.hit_count(), 1);
    }

    #[test]
    fn empty_batches_are_fine() {
        let mut buffer = LookupBuffer::new();
        buffer.reset(&[]);
        assert!(buffer.is_empty());
        assert_eq!(buffer.to_options(), Vec::<Option<Vec<u32>>>::new());
        assert_eq!(buffer.iter().count(), 0);
    }

    #[test]
    fn zero_width_hits_are_distinct_from_misses() {
        let mut buffer = LookupBuffer::new();
        buffer.reset(&[5, 6]);
        buffer.set_hit(0, &[]);
        assert!(buffer.is_hit(0));
        assert_eq!(buffer.get(0), Some(&[][..]));
        assert_eq!(buffer.get(1), None);
        assert_eq!(buffer.to_options(), vec![Some(vec![]), None]);
    }
}
