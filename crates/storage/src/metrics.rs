//! Latency and I/O accounting.
//!
//! Figure 7 of the paper breaks end-to-end lookup latency into existence check, neural
//! network inference, auxiliary lookup, data loading + decompression, partition
//! location and "other".  Every store in this workspace charges its work to one of
//! those phases through a shared [`Metrics`] handle so the benchmark harness can print
//! the same breakdown.  Simulated I/O time (bytes ÷ modelled bandwidth) is recorded
//! separately from measured wall-clock time so reports can show either.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// The latency phases of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Checking the existence bit vector.
    ExistenceCheck,
    /// Neural network batch inference.
    NeuralNetwork,
    /// Searching the auxiliary table (or the baseline's partition lookup).
    AuxiliaryLookup,
    /// Loading partitions from disk and decompressing them (includes deserialization).
    LoadAndDecompress,
    /// Determining which partition holds a key.
    LocatePartition,
    /// Everything else (encoding, result assembly, ...).
    Other,
}

impl Phase {
    /// All phases in the order Figure 7 lists them.
    pub fn all() -> [Phase; 6] {
        [
            Phase::ExistenceCheck,
            Phase::NeuralNetwork,
            Phase::AuxiliaryLookup,
            Phase::LoadAndDecompress,
            Phase::LocatePartition,
            Phase::Other,
        ]
    }

    /// Human-readable label used by benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::ExistenceCheck => "existence check",
            Phase::NeuralNetwork => "neural network",
            Phase::AuxiliaryLookup => "lookup (auxiliary)",
            Phase::LoadAndDecompress => "data loading + decompression",
            Phase::LocatePartition => "locate partition",
            Phase::Other => "other",
        }
    }

    fn index(&self) -> usize {
        match self {
            Phase::ExistenceCheck => 0,
            Phase::NeuralNetwork => 1,
            Phase::AuxiliaryLookup => 2,
            Phase::LoadAndDecompress => 3,
            Phase::LocatePartition => 4,
            Phase::Other => 5,
        }
    }
}

/// Per-phase accumulated time plus I/O counters.
///
/// **Parallelism caveat:** phase time is accumulated wherever the work runs.
/// When a stage fans out across a `dm-exec` pool (e.g. the query pipeline's
/// sharded partition probes), concurrent tasks each charge their own time, so a
/// phase's figure is *CPU time summed across tasks* and can exceed the batch's
/// wall-clock; on a serial pool it is exact wall-clock.
/// [`total`](LatencyBreakdown::total) is therefore an upper bound on wall time
/// under parallelism — benchmark harnesses that need wall latency measure it
/// around the batch call (see `dm-bench`'s `measure_lookup`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time per phase, indexed in [`Phase::all`] order, in nanoseconds (see the
    /// struct-level parallelism caveat).
    pub phase_nanos: [u64; 6],
    /// Simulated I/O time (bytes ÷ modelled bandwidth), in nanoseconds.
    pub simulated_io_nanos: u64,
    /// Bytes read from the simulated disk.
    pub bytes_read: u64,
    /// Bytes written to the simulated disk.
    pub bytes_written: u64,
    /// Number of partition loads (disk → memory).
    pub partition_loads: u64,
    /// Number of partition decompressions.
    pub decompressions: u64,
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses.
    pub pool_misses: u64,
    /// Buffer-pool evictions.
    pub pool_evictions: u64,
    /// Buffer-pool lookups that blocked on another reader's in-flight load
    /// instead of duplicating it (single-flight cold loads).  Waits are counted
    /// separately from hits and misses: a wait is served by someone else's miss.
    pub pool_single_flight_waits: u64,
    /// Number of vectorized model forward passes (one per lookup batch when the
    /// query pipeline is doing its job — many per batch means per-key inference).
    pub inference_batches: u64,
    /// Total rows pushed through model inference.
    pub inference_rows: u64,
    /// Partition loads initiated as stage-2/3 overlap prefetch tasks: the
    /// partitions a lookup batch's probe plan named that were cold when
    /// inference started, so their load+decompress ran as `dm-exec` tasks
    /// concurrently with the model's forward pass.
    pub prefetch_tasks: u64,
    /// Prefetched partitions that were resident by the time stage 3 probed
    /// them (the prefetch fully hid that load behind inference).
    pub prefetch_hits: u64,
    /// Conservative estimate of partition-load time hidden behind stage-2
    /// inference, in nanoseconds: `min(prefetch load time, inference wall)`
    /// per batch.
    pub prefetch_overlap_nanos: u64,
    /// Tasks executed on the `dm-exec` runtime on behalf of this store's work
    /// (attribution is approximate when several stores share one pool).
    pub exec_tasks: u64,
    /// Work-stealing events among the runtime's workers during that work.
    pub exec_steals: u64,
    /// Time runtime workers spent parked during that work, in nanoseconds.
    pub exec_park_nanos: u64,
}

impl LatencyBreakdown {
    /// Time attributed to `phase`.
    pub fn phase(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.phase_nanos[phase.index()])
    }

    /// Sum of all measured phase times.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.phase_nanos.iter().sum())
    }

    /// Total including the simulated I/O component — what the paper's
    /// memory-constrained latency numbers correspond to.
    pub fn total_with_simulated_io(&self) -> Duration {
        Duration::from_nanos(self.phase_nanos.iter().sum::<u64>() + self.simulated_io_nanos)
    }
}

/// A cloneable handle to shared metrics.  Stores hold a handle and charge work to it;
/// the benchmark harness resets it before a run and reads the breakdown afterwards.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<LatencyBreakdown>>,
}

impl Metrics {
    /// Creates a fresh metrics handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = LatencyBreakdown::default();
    }

    /// Returns a snapshot of the current counters.
    pub fn snapshot(&self) -> LatencyBreakdown {
        *self.inner.lock()
    }

    /// Adds wall-clock time to a phase.
    pub fn add_time(&self, phase: Phase, duration: Duration) {
        self.inner.lock().phase_nanos[phase.index()] += duration.as_nanos() as u64;
    }

    /// Times a closure and charges it to a phase, returning its result.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let result = f();
        self.add_time(phase, start.elapsed());
        result
    }

    /// Records a simulated-disk read of `bytes` that the bandwidth model says takes
    /// `io_time`.
    pub fn add_read(&self, bytes: u64, io_time: Duration) {
        let mut inner = self.inner.lock();
        inner.bytes_read += bytes;
        inner.partition_loads += 1;
        inner.simulated_io_nanos += io_time.as_nanos() as u64;
    }

    /// Records a simulated-disk write of `bytes`.
    pub fn add_write(&self, bytes: u64) {
        self.inner.lock().bytes_written += bytes;
    }

    /// Records one decompression.
    pub fn add_decompression(&self) {
        self.inner.lock().decompressions += 1;
    }

    /// Records a buffer-pool hit.
    pub fn add_pool_hit(&self) {
        self.inner.lock().pool_hits += 1;
    }

    /// Records a buffer-pool miss.
    pub fn add_pool_miss(&self) {
        self.inner.lock().pool_misses += 1;
    }

    /// Records a buffer-pool eviction.
    pub fn add_pool_eviction(&self) {
        self.inner.lock().pool_evictions += 1;
    }

    /// Records a buffer-pool lookup that waited on another reader's in-flight
    /// single-flight load.
    pub fn add_pool_single_flight_wait(&self) {
        self.inner.lock().pool_single_flight_waits += 1;
    }

    /// Records one batch's stage-2/3 overlap: `tasks` prefetch loads spawned,
    /// `hits` of them resident by the time stage 3 probed, and the estimated
    /// load time hidden behind inference.
    pub fn add_prefetch(&self, tasks: u64, hits: u64, overlap_nanos: u64) {
        let mut inner = self.inner.lock();
        inner.prefetch_tasks += tasks;
        inner.prefetch_hits += hits;
        inner.prefetch_overlap_nanos += overlap_nanos;
    }

    /// Records execution-runtime activity (a `dm_exec::ExecStats` delta) observed
    /// while serving this store's work.
    pub fn add_exec(&self, tasks: u64, steals: u64, park_nanos: u64) {
        let mut inner = self.inner.lock();
        inner.exec_tasks += tasks;
        inner.exec_steals += steals;
        inner.exec_park_nanos += park_nanos;
    }

    /// Records one vectorized model forward pass over `rows` inputs.
    pub fn add_inference_batch(&self, rows: u64) {
        let mut inner = self.inner.lock();
        inner.inference_batches += 1;
        inner.inference_rows += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_figure_7_breakdown() {
        let phases = Phase::all();
        assert_eq!(phases.len(), 6);
        let labels: Vec<&str> = phases.iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"existence check"));
        assert!(labels.contains(&"neural network"));
        assert!(labels.contains(&"data loading + decompression"));
        // Indices are unique and dense.
        let mut idx: Vec<usize> = phases.iter().map(|p| p.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let metrics = Metrics::new();
        metrics.add_time(Phase::NeuralNetwork, Duration::from_millis(5));
        metrics.add_time(Phase::NeuralNetwork, Duration::from_millis(3));
        metrics.add_read(1024, Duration::from_millis(1));
        metrics.add_write(10);
        metrics.add_decompression();
        metrics.add_pool_hit();
        metrics.add_pool_miss();
        metrics.add_pool_eviction();
        metrics.add_pool_single_flight_wait();
        metrics.add_prefetch(4, 3, 2_500);
        metrics.add_exec(12, 3, 450);
        metrics.add_inference_batch(128);
        let snap = metrics.snapshot();
        assert_eq!(snap.phase(Phase::NeuralNetwork), Duration::from_millis(8));
        assert_eq!(snap.bytes_read, 1024);
        assert_eq!(snap.bytes_written, 10);
        assert_eq!(snap.partition_loads, 1);
        assert_eq!(snap.decompressions, 1);
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.pool_misses, 1);
        assert_eq!(snap.pool_evictions, 1);
        assert_eq!(snap.pool_single_flight_waits, 1);
        assert_eq!(snap.prefetch_tasks, 4);
        assert_eq!(snap.prefetch_hits, 3);
        assert_eq!(snap.prefetch_overlap_nanos, 2_500);
        assert_eq!(snap.exec_tasks, 12);
        assert_eq!(snap.exec_steals, 3);
        assert_eq!(snap.exec_park_nanos, 450);
        assert_eq!(snap.inference_batches, 1);
        assert_eq!(snap.inference_rows, 128);
        assert_eq!(snap.simulated_io_nanos, 1_000_000);
        assert_eq!(snap.total(), Duration::from_millis(8));
        assert_eq!(snap.total_with_simulated_io(), Duration::from_millis(9));

        metrics.reset();
        assert_eq!(metrics.snapshot(), LatencyBreakdown::default());
    }

    #[test]
    fn shared_handles_observe_the_same_counters() {
        let metrics = Metrics::new();
        let clone = metrics.clone();
        clone.add_time(Phase::Other, Duration::from_nanos(500));
        assert_eq!(metrics.snapshot().phase(Phase::Other), Duration::from_nanos(500));
    }

    #[test]
    fn time_closure_charges_the_phase() {
        let metrics = Metrics::new();
        let value = metrics.time(Phase::AuxiliaryLookup, || 21 * 2);
        assert_eq!(value, 42);
        assert!(metrics.snapshot().phase_nanos[Phase::AuxiliaryLookup.index()] > 0);
    }
}
