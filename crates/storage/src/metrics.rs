//! Latency and I/O accounting.
//!
//! Figure 7 of the paper breaks end-to-end lookup latency into existence check, neural
//! network inference, auxiliary lookup, data loading + decompression, partition
//! location and "other".  Every store in this workspace charges its work to one of
//! those phases through a shared [`Metrics`] handle so the benchmark harness can print
//! the same breakdown.  Simulated I/O time (bytes ÷ modelled bandwidth) is recorded
//! separately from measured wall-clock time so reports can show either.
//!
//! Recording is **lock-free**: every counter is a [`dm_obs::RelaxedCell`]
//! (one relaxed atomic add per bump), so concurrent pipeline stages, pool
//! shards and exec workers never serialize on a metrics mutex.  Relaxed adds
//! never lose increments; a [`snapshot`](Metrics::snapshot) taken while
//! writers are active may mix cells from slightly different instants (see the
//! `dm_obs` accuracy contract), which the quiescent read points used by tests
//! and benches make exact.

use dm_obs::RelaxedCell;
use std::sync::Arc;
use std::time::Duration;

/// The latency phases of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Checking the existence bit vector.
    ExistenceCheck,
    /// Neural network batch inference.
    NeuralNetwork,
    /// Searching the auxiliary table (or the baseline's partition lookup).
    AuxiliaryLookup,
    /// Loading partitions from disk and decompressing them (includes deserialization).
    LoadAndDecompress,
    /// Determining which partition holds a key.
    LocatePartition,
    /// Everything else (encoding, result assembly, ...).
    Other,
}

impl Phase {
    /// All phases in the order Figure 7 lists them.
    pub fn all() -> [Phase; 6] {
        [
            Phase::ExistenceCheck,
            Phase::NeuralNetwork,
            Phase::AuxiliaryLookup,
            Phase::LoadAndDecompress,
            Phase::LocatePartition,
            Phase::Other,
        ]
    }

    /// Human-readable label used by benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::ExistenceCheck => "existence check",
            Phase::NeuralNetwork => "neural network",
            Phase::AuxiliaryLookup => "lookup (auxiliary)",
            Phase::LoadAndDecompress => "data loading + decompression",
            Phase::LocatePartition => "locate partition",
            Phase::Other => "other",
        }
    }

    fn index(&self) -> usize {
        match self {
            Phase::ExistenceCheck => 0,
            Phase::NeuralNetwork => 1,
            Phase::AuxiliaryLookup => 2,
            Phase::LoadAndDecompress => 3,
            Phase::LocatePartition => 4,
            Phase::Other => 5,
        }
    }
}

/// Per-phase accumulated time plus I/O counters.
///
/// **Parallelism caveat:** phase time is accumulated wherever the work runs.
/// When a stage fans out across a `dm-exec` pool (e.g. the query pipeline's
/// sharded partition probes), concurrent tasks each charge their own time, so a
/// phase's figure is *CPU time summed across tasks* and can exceed the batch's
/// wall-clock; on a serial pool it is exact wall-clock.
/// [`total`](LatencyBreakdown::total) sums the phases and is therefore an
/// upper bound on wall time under parallelism — [`wall_nanos`](Self::wall_nanos)
/// is the actual caller-thread wall time measured around each batch, and the
/// two only coincide on a serial pool.  Harnesses should report both (as
/// `dm-bench` does) rather than treating the phase sum as latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time per phase, indexed in [`Phase::all`] order, in nanoseconds (see the
    /// struct-level parallelism caveat).
    pub phase_nanos: [u64; 6],
    /// Wall-clock time measured around each batch on the calling thread, in
    /// nanoseconds.  Unlike the phase sums this never double-counts parallel
    /// work: it is what a client actually waited, summed over batches.
    pub wall_nanos: u64,
    /// Simulated I/O time (bytes ÷ modelled bandwidth), in nanoseconds.
    pub simulated_io_nanos: u64,
    /// Bytes read from the simulated disk.
    pub bytes_read: u64,
    /// Bytes written to the simulated disk.
    pub bytes_written: u64,
    /// Number of partition loads (disk → memory).
    pub partition_loads: u64,
    /// Number of partition decompressions.
    pub decompressions: u64,
    /// Buffer-pool hits.
    pub pool_hits: u64,
    /// Buffer-pool misses.
    pub pool_misses: u64,
    /// Buffer-pool evictions.
    pub pool_evictions: u64,
    /// Buffer-pool lookups that blocked on another reader's in-flight load
    /// instead of duplicating it (single-flight cold loads).  Waits are counted
    /// separately from hits and misses: a wait is served by someone else's miss.
    pub pool_single_flight_waits: u64,
    /// Number of vectorized model forward passes (one per lookup batch when the
    /// query pipeline is doing its job — many per batch means per-key inference).
    pub inference_batches: u64,
    /// Total rows pushed through model inference.
    pub inference_rows: u64,
    /// Partition loads initiated as stage-2/3 overlap prefetch tasks: the
    /// partitions a lookup batch's probe plan named that were cold when
    /// inference started, so their load+decompress ran as `dm-exec` tasks
    /// concurrently with the model's forward pass.
    pub prefetch_tasks: u64,
    /// Prefetched partitions that were resident by the time stage 3 probed
    /// them (the prefetch fully hid that load behind inference).
    pub prefetch_hits: u64,
    /// Conservative estimate of partition-load time hidden behind stage-2
    /// inference, in nanoseconds: `min(prefetch load time, inference wall)`
    /// per batch.
    pub prefetch_overlap_nanos: u64,
    /// Tasks executed on the `dm-exec` runtime on behalf of this store's work
    /// (attribution is approximate when several stores share one pool).
    pub exec_tasks: u64,
    /// Work-stealing events among the runtime's workers during that work.
    pub exec_steals: u64,
    /// Time runtime workers spent parked during that work, in nanoseconds.
    pub exec_park_nanos: u64,
    /// Lookup hits answered by the model alone (prediction trusted — no aux
    /// overlay/partition hit overrode it).  With `aux_answered` this is the
    /// model-vs-aux answer mix drift detection watches: a drifting model
    /// shifts answers from this counter to the next one.
    pub model_answered: u64,
    /// Lookup hits answered by the auxiliary table (overlay or compressed
    /// partition probe).
    pub aux_answered: u64,
    /// Buffer-pool cold loads re-attempted after a transient I/O failure
    /// (one per extra loader invocation, successful or not).  Corruption is
    /// never retried, so this counts exactly the retry policy's work.
    pub load_retries: u64,
    /// Lookup keys whose partition probe failed after retries and were marked
    /// failed in the result buffer instead of failing the whole batch — the
    /// degraded-serving counter.
    pub degraded_keys: u64,
}

impl LatencyBreakdown {
    /// Time attributed to `phase`.
    pub fn phase(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.phase_nanos[phase.index()])
    }

    /// Sum of all measured phase times — CPU time across tasks, an upper
    /// bound on wall time under parallelism.  For what a caller actually
    /// waited, use [`wall`](Self::wall).
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.phase_nanos.iter().sum())
    }

    /// Caller-thread wall time summed over batches (never double-counts
    /// parallel work).
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_nanos)
    }

    /// Total including the simulated I/O component — what the paper's
    /// memory-constrained latency numbers correspond to.
    pub fn total_with_simulated_io(&self) -> Duration {
        Duration::from_nanos(self.phase_nanos.iter().sum::<u64>() + self.simulated_io_nanos)
    }
}

/// The lock-free counter cells behind a [`Metrics`] handle, mirroring
/// [`LatencyBreakdown`] field-for-field.
#[derive(Debug, Default)]
struct MetricCells {
    phase_nanos: [RelaxedCell; 6],
    wall_nanos: RelaxedCell,
    simulated_io_nanos: RelaxedCell,
    bytes_read: RelaxedCell,
    bytes_written: RelaxedCell,
    partition_loads: RelaxedCell,
    decompressions: RelaxedCell,
    pool_hits: RelaxedCell,
    pool_misses: RelaxedCell,
    pool_evictions: RelaxedCell,
    pool_single_flight_waits: RelaxedCell,
    inference_batches: RelaxedCell,
    inference_rows: RelaxedCell,
    prefetch_tasks: RelaxedCell,
    prefetch_hits: RelaxedCell,
    prefetch_overlap_nanos: RelaxedCell,
    exec_tasks: RelaxedCell,
    exec_steals: RelaxedCell,
    exec_park_nanos: RelaxedCell,
    model_answered: RelaxedCell,
    aux_answered: RelaxedCell,
    load_retries: RelaxedCell,
    degraded_keys: RelaxedCell,
}

impl MetricCells {
    fn for_each(&self, mut f: impl FnMut(&RelaxedCell)) {
        for phase in &self.phase_nanos {
            f(phase);
        }
        f(&self.wall_nanos);
        f(&self.simulated_io_nanos);
        f(&self.bytes_read);
        f(&self.bytes_written);
        f(&self.partition_loads);
        f(&self.decompressions);
        f(&self.pool_hits);
        f(&self.pool_misses);
        f(&self.pool_evictions);
        f(&self.pool_single_flight_waits);
        f(&self.inference_batches);
        f(&self.inference_rows);
        f(&self.prefetch_tasks);
        f(&self.prefetch_hits);
        f(&self.prefetch_overlap_nanos);
        f(&self.exec_tasks);
        f(&self.exec_steals);
        f(&self.exec_park_nanos);
        f(&self.model_answered);
        f(&self.aux_answered);
        f(&self.load_retries);
        f(&self.degraded_keys);
    }
}

/// A cloneable handle to shared metrics.  Stores hold a handle and charge work to it;
/// the benchmark harness resets it before a run and reads the breakdown afterwards.
///
/// Every `add_*` method is a few relaxed atomic adds — no mutex anywhere on
/// the record path, so concurrent stage-3 probe tasks (or whole concurrent
/// batches) never serialize here.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricCells>,
}

impl Metrics {
    /// Creates a fresh metrics handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all counters to zero.  Intended for quiescent points (between
    /// benchmark runs); concurrent recordings may land before or after the
    /// reset but never corrupt a cell.
    pub fn reset(&self) {
        self.inner.for_each(RelaxedCell::reset);
    }

    /// Returns a snapshot of the current counters.
    pub fn snapshot(&self) -> LatencyBreakdown {
        let cells = &*self.inner;
        let mut phase_nanos = [0u64; 6];
        for (out, cell) in phase_nanos.iter_mut().zip(cells.phase_nanos.iter()) {
            *out = cell.get();
        }
        LatencyBreakdown {
            phase_nanos,
            wall_nanos: cells.wall_nanos.get(),
            simulated_io_nanos: cells.simulated_io_nanos.get(),
            bytes_read: cells.bytes_read.get(),
            bytes_written: cells.bytes_written.get(),
            partition_loads: cells.partition_loads.get(),
            decompressions: cells.decompressions.get(),
            pool_hits: cells.pool_hits.get(),
            pool_misses: cells.pool_misses.get(),
            pool_evictions: cells.pool_evictions.get(),
            pool_single_flight_waits: cells.pool_single_flight_waits.get(),
            inference_batches: cells.inference_batches.get(),
            inference_rows: cells.inference_rows.get(),
            prefetch_tasks: cells.prefetch_tasks.get(),
            prefetch_hits: cells.prefetch_hits.get(),
            prefetch_overlap_nanos: cells.prefetch_overlap_nanos.get(),
            exec_tasks: cells.exec_tasks.get(),
            exec_steals: cells.exec_steals.get(),
            exec_park_nanos: cells.exec_park_nanos.get(),
            model_answered: cells.model_answered.get(),
            aux_answered: cells.aux_answered.get(),
            load_retries: cells.load_retries.get(),
            degraded_keys: cells.degraded_keys.get(),
        }
    }

    /// Adds wall-clock time to a phase.
    pub fn add_time(&self, phase: Phase, duration: Duration) {
        self.inner.phase_nanos[phase.index()].add(duration.as_nanos() as u64);
    }

    /// Times a closure and charges it to a phase, returning its result.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let result = f();
        self.add_time(phase, start.elapsed());
        result
    }

    /// Records one batch's caller-thread wall time (what the client waited,
    /// as opposed to the summed per-phase CPU time).
    pub fn add_wall(&self, duration: Duration) {
        self.inner.wall_nanos.add(duration.as_nanos() as u64);
    }

    /// Records a simulated-disk read of `bytes` that the bandwidth model says takes
    /// `io_time`.
    pub fn add_read(&self, bytes: u64, io_time: Duration) {
        self.inner.bytes_read.add(bytes);
        self.inner.partition_loads.add(1);
        self.inner.simulated_io_nanos.add(io_time.as_nanos() as u64);
    }

    /// Records a simulated-disk write of `bytes`.
    pub fn add_write(&self, bytes: u64) {
        self.inner.bytes_written.add(bytes);
    }

    /// Records one decompression.
    pub fn add_decompression(&self) {
        self.inner.decompressions.add(1);
    }

    /// Records a buffer-pool hit.
    pub fn add_pool_hit(&self) {
        self.inner.pool_hits.add(1);
    }

    /// Records a buffer-pool miss.
    pub fn add_pool_miss(&self) {
        self.inner.pool_misses.add(1);
    }

    /// Records a buffer-pool eviction.
    pub fn add_pool_eviction(&self) {
        self.inner.pool_evictions.add(1);
    }

    /// Records a buffer-pool lookup that waited on another reader's in-flight
    /// single-flight load.
    pub fn add_pool_single_flight_wait(&self) {
        self.inner.pool_single_flight_waits.add(1);
    }

    /// Records one batch's stage-2/3 overlap: `tasks` prefetch loads spawned,
    /// `hits` of them resident by the time stage 3 probed, and the estimated
    /// load time hidden behind inference.
    pub fn add_prefetch(&self, tasks: u64, hits: u64, overlap_nanos: u64) {
        self.inner.prefetch_tasks.add(tasks);
        self.inner.prefetch_hits.add(hits);
        self.inner.prefetch_overlap_nanos.add(overlap_nanos);
    }

    /// Records execution-runtime activity (a `dm_exec::ExecStats` delta) observed
    /// while serving this store's work.
    pub fn add_exec(&self, tasks: u64, steals: u64, park_nanos: u64) {
        self.inner.exec_tasks.add(tasks);
        self.inner.exec_steals.add(steals);
        self.inner.exec_park_nanos.add(park_nanos);
    }

    /// Records one vectorized model forward pass over `rows` inputs.
    pub fn add_inference_batch(&self, rows: u64) {
        self.inner.inference_batches.add(1);
        self.inner.inference_rows.add(rows);
    }

    /// Records one batch's answer mix: `model` hits served by the model's
    /// prediction alone, `aux` hits served by the auxiliary table.  Recorded
    /// unconditionally (like every `LatencyBreakdown` counter) — the
    /// `DM_OBS` kill switch gates tracing, never pipeline-work accounting.
    pub fn add_answer_mix(&self, model: u64, aux: u64) {
        self.inner.model_answered.add(model);
        self.inner.aux_answered.add(aux);
    }

    /// Records one extra cold-load attempt after a transient I/O failure.
    pub fn add_load_retry(&self) {
        self.inner.load_retries.add(1);
    }

    /// Records `keys` lookup keys answered with a per-key failure instead of
    /// failing their whole batch.
    pub fn add_degraded_keys(&self, keys: u64) {
        self.inner.degraded_keys.add(keys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_figure_7_breakdown() {
        let phases = Phase::all();
        assert_eq!(phases.len(), 6);
        let labels: Vec<&str> = phases.iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"existence check"));
        assert!(labels.contains(&"neural network"));
        assert!(labels.contains(&"data loading + decompression"));
        // Indices are unique and dense.
        let mut idx: Vec<usize> = phases.iter().map(|p| p.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn metrics_accumulate_and_reset() {
        let metrics = Metrics::new();
        metrics.add_time(Phase::NeuralNetwork, Duration::from_millis(5));
        metrics.add_time(Phase::NeuralNetwork, Duration::from_millis(3));
        metrics.add_wall(Duration::from_millis(11));
        metrics.add_read(1024, Duration::from_millis(1));
        metrics.add_write(10);
        metrics.add_decompression();
        metrics.add_pool_hit();
        metrics.add_pool_miss();
        metrics.add_pool_eviction();
        metrics.add_pool_single_flight_wait();
        metrics.add_prefetch(4, 3, 2_500);
        metrics.add_exec(12, 3, 450);
        metrics.add_inference_batch(128);
        metrics.add_answer_mix(90, 10);
        metrics.add_load_retry();
        metrics.add_degraded_keys(2);
        let snap = metrics.snapshot();
        assert_eq!(snap.phase(Phase::NeuralNetwork), Duration::from_millis(8));
        assert_eq!(snap.wall(), Duration::from_millis(11));
        assert_eq!(snap.bytes_read, 1024);
        assert_eq!(snap.bytes_written, 10);
        assert_eq!(snap.partition_loads, 1);
        assert_eq!(snap.decompressions, 1);
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.pool_misses, 1);
        assert_eq!(snap.pool_evictions, 1);
        assert_eq!(snap.pool_single_flight_waits, 1);
        assert_eq!(snap.prefetch_tasks, 4);
        assert_eq!(snap.prefetch_hits, 3);
        assert_eq!(snap.prefetch_overlap_nanos, 2_500);
        assert_eq!(snap.exec_tasks, 12);
        assert_eq!(snap.exec_steals, 3);
        assert_eq!(snap.exec_park_nanos, 450);
        assert_eq!(snap.inference_batches, 1);
        assert_eq!(snap.inference_rows, 128);
        assert_eq!(snap.model_answered, 90);
        assert_eq!(snap.aux_answered, 10);
        assert_eq!(snap.load_retries, 1);
        assert_eq!(snap.degraded_keys, 2);
        assert_eq!(snap.simulated_io_nanos, 1_000_000);
        assert_eq!(snap.total(), Duration::from_millis(8));
        assert_eq!(snap.total_with_simulated_io(), Duration::from_millis(9));

        metrics.reset();
        assert_eq!(metrics.snapshot(), LatencyBreakdown::default());
    }

    #[test]
    fn shared_handles_observe_the_same_counters() {
        let metrics = Metrics::new();
        let clone = metrics.clone();
        clone.add_time(Phase::Other, Duration::from_nanos(500));
        assert_eq!(metrics.snapshot().phase(Phase::Other), Duration::from_nanos(500));
    }

    #[test]
    fn time_closure_charges_the_phase() {
        let metrics = Metrics::new();
        let value = metrics.time(Phase::AuxiliaryLookup, || 21 * 2);
        assert_eq!(value, 42);
        assert!(metrics.snapshot().phase_nanos[Phase::AuxiliaryLookup.index()] > 0);
    }

    /// The concurrent-recording stress behind the "no mutex on the record
    /// path" guarantee: hammer every counter from many threads and assert no
    /// increment was lost (relaxed atomic adds are exact; a racy read-modify-
    /// write reimplementation would fail this immediately).
    #[test]
    fn concurrent_recording_loses_no_counts() {
        let metrics = Metrics::new();
        let threads = 8;
        let iters = 5_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..iters {
                        metrics.add_time(Phase::AuxiliaryLookup, Duration::from_nanos(3));
                        metrics.add_wall(Duration::from_nanos(7));
                        metrics.add_pool_hit();
                        metrics.add_pool_miss();
                        metrics.add_read(2, Duration::from_nanos(1));
                        metrics.add_prefetch(1, 1, 5);
                        metrics.add_exec(2, 1, 4);
                        metrics.add_inference_batch(16);
                    }
                });
            }
        });
        let snap = metrics.snapshot();
        let n = threads * iters;
        assert_eq!(snap.phase_nanos[Phase::AuxiliaryLookup.index()], 3 * n);
        assert_eq!(snap.wall_nanos, 7 * n);
        assert_eq!(snap.pool_hits, n);
        assert_eq!(snap.pool_misses, n);
        assert_eq!(snap.bytes_read, 2 * n);
        assert_eq!(snap.partition_loads, n);
        assert_eq!(snap.simulated_io_nanos, n);
        assert_eq!(snap.prefetch_tasks, n);
        assert_eq!(snap.prefetch_hits, n);
        assert_eq!(snap.prefetch_overlap_nanos, 5 * n);
        assert_eq!(snap.exec_tasks, 2 * n);
        assert_eq!(snap.exec_steals, n);
        assert_eq!(snap.exec_park_nanos, 4 * n);
        assert_eq!(snap.inference_batches, n);
        assert_eq!(snap.inference_rows, 16 * n);
    }
}
