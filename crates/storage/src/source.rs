//! The partition-source abstraction behind the buffer pool.
//!
//! PR 1–3 served every compressed auxiliary/baseline partition from the
//! [`SimulatedDisk`](crate::disk::SimulatedDisk) — an in-memory frame map with a
//! configurable bandwidth/latency *model*.  The persistence layer (`dm-persist`)
//! adds a second backing: partitions living as byte extents inside a single
//! snapshot file, read with real positional I/O.  [`PartitionSource`] is the seam
//! both implement, so the buffer pool, the auxiliary table and the baselines are
//! agnostic about whether a cold load pays simulated or real I/O:
//!
//! * [`SimulatedDisk`](crate::disk::SimulatedDisk) — writable, in-memory frames,
//!   simulated read costs (the build path and all pre-persistence workloads),
//! * [`FilePartitionSource`] — read-only extents of an open snapshot file, one
//!   `pread` per cold partition (fully parallel under `dm-exec`; no shared file
//!   cursor), CRC-checked so a flipped bit surfaces as a typed corruption error
//!   instead of garbage answers.

use crate::metrics::Metrics;
use crate::{Result, StorageError};
use std::collections::HashMap;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A read-only supplier of compressed partition frames, keyed by partition id.
///
/// Implementations charge the bytes and I/O time of every frame read to the
/// per-store [`Metrics`] so the Figure-7 latency breakdown and the cold-start
/// bench counters see real and simulated I/O through one accounting path.
pub trait PartitionSource: Send + Sync + std::fmt::Debug {
    /// Reads the raw compressed frame of partition `id` (no decompression).
    fn read_frame(&self, id: u64, metrics: &Metrics) -> Result<Arc<Vec<u8>>>;

    /// Reads and decompresses partition `id` in one step.
    fn read_partition(&self, id: u64, metrics: &Metrics) -> Result<Vec<u8>> {
        let frame = self.read_frame(id, metrics)?;
        metrics.add_decompression();
        dm_compress::decompress_frame(&frame).map_err(StorageError::from)
    }

    /// Compressed size of one partition in bytes.
    fn partition_bytes(&self, id: u64) -> Result<usize>;

    /// Number of partitions this source serves.
    fn partition_count(&self) -> usize;

    /// Total compressed bytes across all partitions.
    fn total_bytes(&self) -> usize;
}

/// One partition's byte extent inside a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileExtent {
    /// Absolute byte offset of the frame within the file.
    pub offset: u64,
    /// Frame length in bytes.
    pub len: u64,
    /// CRC-32 of the frame bytes, verified on every cold read.
    pub crc32: u32,
}

/// A read-only [`PartitionSource`] over byte extents of an open file — the lazy
/// serving half of the `dm-persist` snapshot format.
///
/// Each cold read is one positional read (`pread` on Unix) of exactly the frame's
/// extent, so concurrent loads of different partitions proceed fully in parallel
/// with no shared cursor, and the total [`bytes_read`](Self::bytes_read) counter
/// measures precisely how much of the snapshot a workload has touched.
#[derive(Debug)]
pub struct FilePartitionSource {
    file: File,
    extents: HashMap<u64, FileExtent>,
    total_bytes: usize,
    bytes_read: AtomicU64,
    /// Fallback for targets without positional reads: serialize seeks on the
    /// shared cursor.  Unused (and absent) on Unix.
    #[cfg(not(unix))]
    seek_guard: parking_lot::Mutex<()>,
}

impl FilePartitionSource {
    /// Wraps an open file and the extent of every partition id it serves.
    pub fn new(file: File, extents: HashMap<u64, FileExtent>) -> Self {
        let total_bytes = extents.values().map(|e| e.len as usize).sum();
        FilePartitionSource {
            file,
            extents,
            total_bytes,
            bytes_read: AtomicU64::new(0),
            #[cfg(not(unix))]
            seek_guard: parking_lot::Mutex::new(()),
        }
    }

    /// Total bytes this source has read from the file so far — the counter behind
    /// the cold-start bench's "bytes read vs. full snapshot size" claim.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    #[cfg(not(unix))]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let _guard = self.seek_guard.lock();
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

impl PartitionSource for FilePartitionSource {
    fn read_frame(&self, id: u64, metrics: &Metrics) -> Result<Arc<Vec<u8>>> {
        let extent = self
            .extents
            .get(&id)
            .copied()
            .ok_or(StorageError::MissingPartition(id))?;
        let start = Instant::now();
        let mut frame = vec![0u8; extent.len as usize];
        self.read_at(&mut frame, extent.offset).map_err(|err| {
            let detail = format!(
                "snapshot partition {id} unreadable at offset {} (+{} bytes): {err}",
                extent.offset, extent.len
            );
            // A short read means the file ends before the extent does — the
            // snapshot itself is damaged and no retry will grow it back.  Any
            // other failure is the device saying no; classify it transient so
            // the pool's retry policy gets a shot at it.
            if err.kind() == std::io::ErrorKind::UnexpectedEof {
                StorageError::Corrupt(detail)
            } else {
                StorageError::Io(detail)
            }
        })?;
        self.bytes_read.fetch_add(extent.len, Ordering::Relaxed);
        metrics.add_read(extent.len, start.elapsed());
        if dm_compress::crc32(&frame) != extent.crc32 {
            return Err(StorageError::Corrupt(format!(
                "snapshot partition {id} failed its CRC-32 check (bit rot or a torn write)"
            )));
        }
        Ok(Arc::new(frame))
    }

    fn partition_bytes(&self, id: u64) -> Result<usize> {
        self.extents
            .get(&id)
            .map(|e| e.len as usize)
            .ok_or(StorageError::MissingPartition(id))
    }

    fn partition_count(&self) -> usize {
        self.extents.len()
    }

    fn total_bytes(&self) -> usize {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_compress::Codec;
    use std::io::Write;

    fn write_frames(frames: &[Vec<u8>]) -> (tempfile::NamedTempPath, HashMap<u64, FileExtent>) {
        let path = tempfile::NamedTempPath::new("dm-storage-source-test");
        let mut file = File::create(&path.0).unwrap();
        let mut extents = HashMap::new();
        let mut offset = 0u64;
        for (id, frame) in frames.iter().enumerate() {
            file.write_all(frame).unwrap();
            extents.insert(
                id as u64,
                FileExtent {
                    offset,
                    len: frame.len() as u64,
                    crc32: dm_compress::crc32(frame),
                },
            );
            offset += frame.len() as u64;
        }
        file.sync_all().unwrap();
        (path, extents)
    }

    /// Minimal self-deleting temp path (no tempfile crate in the offline env).
    mod tempfile {
        pub struct NamedTempPath(pub std::path::PathBuf);
        impl NamedTempPath {
            pub fn new(tag: &str) -> Self {
                use std::sync::atomic::{AtomicU64, Ordering};
                static SEQ: AtomicU64 = AtomicU64::new(0);
                let unique = format!(
                    "{tag}-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                );
                NamedTempPath(std::env::temp_dir().join(unique))
            }
        }
        impl Drop for NamedTempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
    }

    #[test]
    fn file_source_round_trips_frames_and_counts_bytes() {
        let payloads: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 2000 + i as usize]).collect();
        let frames: Vec<Vec<u8>> = payloads
            .iter()
            .map(|p| dm_compress::compress_frame(&Codec::Lz, p))
            .collect();
        let (path, extents) = write_frames(&frames);
        let source = FilePartitionSource::new(File::open(&path.0).unwrap(), extents);
        assert_eq!(source.partition_count(), 3);
        assert_eq!(
            source.total_bytes(),
            frames.iter().map(|f| f.len()).sum::<usize>()
        );
        let metrics = Metrics::new();
        for (id, payload) in payloads.iter().enumerate() {
            let restored = source.read_partition(id as u64, &metrics).unwrap();
            assert_eq!(&restored, payload);
            assert_eq!(
                source.partition_bytes(id as u64).unwrap(),
                frames[id].len()
            );
        }
        assert_eq!(source.bytes_read() as usize, source.total_bytes());
        let snap = metrics.snapshot();
        assert_eq!(snap.partition_loads, 3);
        assert_eq!(snap.decompressions, 3);
        assert!(matches!(
            source.read_frame(99, &metrics),
            Err(StorageError::MissingPartition(99))
        ));
    }

    #[test]
    fn flipped_bytes_fail_the_extent_crc() {
        let frame = dm_compress::compress_frame(&Codec::Lz, &vec![7u8; 4096]);
        let (path, mut extents) = write_frames(std::slice::from_ref(&frame));
        // Lie about the CRC, as if the file had been flipped after manifest write.
        extents.get_mut(&0).unwrap().crc32 ^= 1;
        let source = FilePartitionSource::new(File::open(&path.0).unwrap(), extents);
        let err = source.read_frame(0, &Metrics::new()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(ref msg) if msg.contains("CRC")), "{err}");
    }

    #[test]
    fn extents_past_eof_error_instead_of_panicking() {
        let frame = dm_compress::compress_frame(&Codec::None, b"tiny");
        let (path, mut extents) = write_frames(std::slice::from_ref(&frame));
        extents.get_mut(&0).unwrap().len += 1_000;
        let source = FilePartitionSource::new(File::open(&path.0).unwrap(), extents);
        let err = source.read_frame(0, &Metrics::new()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(ref msg) if msg.contains("unreadable")), "{err}");
    }

    /// The simulated disk serves the same trait, so pools and tables can swap
    /// backings without caring which one they got.
    #[test]
    fn simulated_disk_is_a_partition_source() {
        let disk = crate::disk::SimulatedDisk::new(crate::disk::DiskProfile::free());
        let metrics = Metrics::new();
        let id = disk.write_partition(&Codec::Lz, &vec![5u8; 1000], &metrics);
        let source: &dyn PartitionSource = &disk;
        assert_eq!(source.read_partition(id, &metrics).unwrap(), vec![5u8; 1000]);
        assert_eq!(source.partition_count(), 1);
        assert!(source.total_bytes() > 0);
        assert_eq!(source.partition_bytes(id).unwrap(), source.total_bytes());
    }
}
